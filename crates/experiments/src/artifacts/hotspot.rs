//! Coffee-shop measurements (§4.1.1 "effect of background traffic"):
//! Figure 6 (download times on a loaded public hotspot), Figure 7 (cellular
//! share), Table 4 (path characteristics). Coupled and reno only — the
//! paper skipped olia here "for the sake of time".

use mpw_link::Carrier;
use mpw_metrics::{BoxPlot, Summary, Table};
use mpw_mptcp::Coupling;
use serde::Serialize;

use crate::artifacts::{Artifact, Check};
use crate::campaign::{group_by, run_campaign, Scale};
use crate::config::{sizes, FlowConfig, Scenario, WifiKind};
use crate::measure::Measurement;

const SIZES: [u64; 4] = [sizes::S8K, sizes::S64K, sizes::S512K, sizes::S4M];
const CUSTOMERS: u32 = 18; // "15 to 20 customers" on a Friday afternoon.

fn scenarios() -> Vec<Scenario> {
    let mut v = Vec::new();
    for &size in &SIZES {
        for flow in [
            FlowConfig::SpWifi,
            FlowConfig::SpCellular,
            FlowConfig::mp2(Coupling::Coupled),
            FlowConfig::mp2(Coupling::Reno),
        ] {
            v.push(Scenario {
                wifi: WifiKind::Hotspot(CUSTOMERS),
                carrier: Carrier::Att,
                flow,
                size,
                period: mpw_link::DayPeriod::Afternoon,
                warmup: true,
            });
        }
    }
    v
}

#[derive(Serialize)]
struct HotspotJson {
    download_time_rows: Vec<(String, String, BoxPlot)>,
    cellular_share_rows: Vec<(String, String, Summary)>,
    path_stats_rows: Vec<(String, String, Summary, Summary)>,
}

fn secs(ms: &[&Measurement]) -> Vec<f64> {
    ms.iter().filter_map(|m| m.download_time_s).collect()
}

/// Run the hotspot campaign and render fig6, fig7, tab4.
pub fn run(scale: Scale, seed: u64, workers: usize) -> Vec<Artifact> {
    let ms = run_campaign(&scenarios(), scale, seed, workers);
    let label = |m: &Measurement| m.scenario.flow.label(m.scenario.carrier);

    let mut fig6 = Table::new(
        "Figure 6 — Coffee-shop download time (s), public WiFi with ~18 customers",
        &["size", "config", "download time (s)", "n"],
    );
    let grouped = group_by(&ms, |m| (m.scenario.size, label(m)));
    let mut fig6_rows = Vec::new();
    for ((size, lbl), group) in &grouped {
        let b = BoxPlot::of(&secs(group));
        fig6.row(vec![sizes::label(*size), lbl.clone(), b.render(), b.n.to_string()]);
        fig6_rows.push((sizes::label(*size), lbl.clone(), b));
    }
    let median = |size: u64, lbl: &str| -> Option<f64> {
        grouped
            .get(&(size, lbl.to_string()))
            .map(|g| BoxPlot::of(&secs(g)).median)
    };
    let checks6 = vec![
        Check::new(
            "Loaded WiFi is no longer reliably best at 512 KB+",
            match (median(sizes::S4M, "SP-WiFi"), median(sizes::S4M, "SP-AT&T")) {
                (Some(w), Some(a)) => w > a * 0.8,
                _ => false,
            },
            format!(
                "4MB SP-WiFi {:?} vs SP-AT&T {:?}",
                median(sizes::S4M, "SP-WiFi"),
                median(sizes::S4M, "SP-AT&T")
            ),
        ),
        Check::new(
            "MPTCP performs close to the best available path (4 MB)",
            match (
                median(sizes::S4M, "MP-2 (coupled)"),
                median(sizes::S4M, "SP-WiFi"),
                median(sizes::S4M, "SP-AT&T"),
            ) {
                (Some(mp), Some(w), Some(a)) => mp <= w.min(a) * 1.5,
                _ => false,
            },
            format!(
                "MP {:?} vs best SP {:?}",
                median(sizes::S4M, "MP-2 (coupled)"),
                median(sizes::S4M, "SP-WiFi")
                    .zip(median(sizes::S4M, "SP-AT&T"))
                    .map(|(a, b)| a.min(b))
            ),
        ),
    ];

    let mut fig7 = Table::new(
        "Figure 7 — Coffee shop: fraction of traffic on the cellular path",
        &["size", "config", "cellular share", "n"],
    );
    let mut fig7_rows = Vec::new();
    for ((size, lbl), group) in &grouped {
        if !group[0].scenario.flow.is_mptcp() {
            continue;
        }
        let s = Summary::of(&group.iter().map(|m| m.cellular_share).collect::<Vec<_>>());
        fig7.row(vec![
            sizes::label(*size),
            lbl.clone(),
            format!("{:.3}±{:.3}", s.mean, s.std_err),
            s.n.to_string(),
        ]);
        fig7_rows.push((sizes::label(*size), lbl.clone(), s));
    }
    let share = |size: u64| -> f64 {
        grouped
            .get(&(size, "MP-2 (coupled)".to_string()))
            .map(|g| g.iter().map(|m| m.cellular_share).sum::<f64>() / g.len() as f64)
            .unwrap_or(0.0)
    };
    let checks7 = vec![Check::new(
        "Lossy public WiFi pushes more traffic to cellular than home WiFi",
        share(sizes::S4M) > 0.4,
        format!("4MB cellular share {:.2}", share(sizes::S4M)),
    )];

    let mut tab4 = Table::new(
        "Table 4 — Coffee-shop path characteristics (single-path): loss % and RTT ms",
        &["path", "size", "loss (%)", "RTT (ms)"],
    );
    let mut tab4_rows = Vec::new();
    for (name, flow) in [("WiFi", FlowConfig::SpWifi), ("AT&T", FlowConfig::SpCellular)] {
        for &size in &SIZES {
            let group: Vec<&Measurement> = ms
                .iter()
                .filter(|m| m.scenario.size == size && m.scenario.flow == flow)
                .collect();
            let losses: Vec<f64> = group
                .iter()
                .flat_map(|m| m.subflows.iter().map(|s| s.loss_pct()))
                .collect();
            let rtts: Vec<f64> = group
                .iter()
                .flat_map(|m| m.subflows.iter().filter_map(|s| s.mean_rtt_ms()))
                .collect();
            let ls = Summary::of(&losses);
            let rs = Summary::of(&rtts);
            tab4.row(vec![
                name.into(),
                sizes::label(size),
                ls.pm_or_tilde(0.03),
                rs.pm(),
            ]);
            tab4_rows.push((name.to_string(), sizes::label(size), ls, rs));
        }
    }
    let hotspot_loss = tab4_rows
        .iter()
        .filter(|(n, ..)| n == "WiFi")
        .map(|(_, _, l, _)| l.mean)
        .sum::<f64>()
        / SIZES.len() as f64;
    let checks_t4 = vec![Check::new(
        "Hotspot WiFi loss ~3-5% (vs ~1.6% at home)",
        hotspot_loss > 2.0,
        format!("mean hotspot WiFi loss {hotspot_loss:.2}%"),
    )];

    let json = mpw_metrics::to_json(&HotspotJson {
        download_time_rows: fig6_rows,
        cellular_share_rows: fig7_rows,
        path_stats_rows: tab4_rows,
    });

    vec![
        Artifact {
            id: "fig6",
            title: "Amherst coffee shop: public WiFi under heavy load".into(),
            text: fig6.render(),
            json: json.clone(),
            checks: checks6,
        },
        Artifact {
            id: "fig7",
            title: "Coffee shop: fraction of traffic carried by the cellular path".into(),
            text: fig7.render(),
            json: json.clone(),
            checks: checks7,
        },
        Artifact {
            id: "tab4",
            title: "Coffee-shop path characteristics".into(),
            text: tab4.render(),
            json,
            checks: checks_t4,
        },
    ]
}

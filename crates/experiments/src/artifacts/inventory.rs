//! Table 1: the device/carrier inventory, rendered from the preset
//! registry, plus the calibrated path parameters each preset models.

use mpw_link::Carrier;
use mpw_metrics::Table;
use serde::Serialize;

use crate::artifacts::{Artifact, Check};
use crate::campaign::Scale;

#[derive(Serialize)]
struct InventoryJson {
    carriers: Vec<(String, String, String, f64, f64)>,
}

/// Render tab1 from the preset registry.
pub fn run(_scale: Scale, _seed: u64, _workers: usize) -> Vec<Artifact> {
    let mut tab1 = Table::new(
        "Table 1 — Cellular devices used for each carrier (and modeled path parameters)",
        &["carrier", "device", "technology", "mean down (Mbps)", "base RTT (ms)"],
    );
    let mut rows = Vec::new();
    for c in Carrier::ALL {
        let spec = c.preset();
        let down_mbps = spec.down.rate.mean_rate() / 1e6;
        let base_rtt = spec.base_rtt(1452).as_millis_f64();
        tab1.row(vec![
            c.name().into(),
            c.device().into(),
            format!("{:?}", c.technology()),
            format!("{down_mbps:.1}"),
            format!("{base_rtt:.0}"),
        ]);
        rows.push((
            c.name().to_string(),
            c.device().to_string(),
            format!("{:?}", c.technology()),
            down_mbps,
            base_rtt,
        ));
    }
    let att = Carrier::Att.preset();
    let sprint = Carrier::Sprint.preset();
    let checks = vec![
        Check::new(
            "Technologies match Table 1 (two LTE, one EVDO)",
            Carrier::Att.technology() == mpw_link::Technology::Lte
                && Carrier::Verizon.technology() == mpw_link::Technology::Lte
                && Carrier::Sprint.technology() == mpw_link::Technology::Evdo,
            "AT&T/Verizon LTE, Sprint EVDO".to_string(),
        ),
        Check::new(
            "LTE an order of magnitude faster than 3G EVDO",
            att.down.rate.mean_rate() > 5.0 * sprint.down.rate.mean_rate(),
            format!(
                "AT&T {:.1} Mbps vs Sprint {:.1} Mbps",
                att.down.rate.mean_rate() / 1e6,
                sprint.down.rate.mean_rate() / 1e6
            ),
        ),
    ];
    let json = mpw_metrics::to_json(&InventoryJson { carriers: rows });
    vec![Artifact {
        id: "tab1",
        title: "Cellular devices used for each carrier".into(),
        text: tab1.render(),
        json,
        checks,
    }]
}

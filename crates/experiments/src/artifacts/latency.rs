//! Latency distributions (§5): Figure 12 (per-packet RTT CCDFs by carrier
//! and size), Figure 13 (out-of-order delay CCDFs), Table 6 (MPTCP RTT and
//! OFO-delay statistics). MP-2 coupled over each carrier.

use mpw_link::Carrier;
use mpw_metrics::{DistSummary, Summary, Table};
use mpw_mptcp::Coupling;
use serde::Serialize;

use crate::artifacts::{Artifact, Check};
use crate::campaign::{run_campaign, Scale};
use crate::config::{sizes, FlowConfig, Scenario, WifiKind};
use crate::measure::Measurement;

const SIZES: [u64; 4] = [sizes::S4M, sizes::S8M, sizes::S16M, sizes::S32M];

fn scenarios() -> Vec<Scenario> {
    let mut v = Vec::new();
    for carrier in Carrier::ALL {
        for &size in &SIZES {
            v.push(Scenario {
                wifi: WifiKind::Home,
                carrier,
                flow: FlowConfig::mp2(Coupling::Coupled),
                size,
                period: mpw_link::DayPeriod::Afternoon,
                warmup: true,
            });
        }
    }
    v
}

/// RTT summaries pooled per (carrier, interface) by merging the streaming
/// per-subflow summaries — no per-sample vectors are ever materialized.
fn pool_rtts(ms: &[Measurement], carrier: Carrier, if_index: u8) -> DistSummary {
    let mut pool = DistSummary::new();
    for m in ms.iter().filter(|m| m.scenario.carrier == carrier) {
        for s in m.subflows.iter().filter(|s| s.if_index == if_index) {
            pool.merge(&s.rtt);
        }
    }
    pool
}

#[derive(Serialize)]
struct LatencyJson {
    rtt_ccdf_series: Vec<(String, Vec<(f64, f64)>)>,
    ofo_ccdf_series: Vec<(String, Vec<(f64, f64)>)>,
    table6_rtt: Vec<(String, String, Summary)>,
    table6_ofo: Vec<(String, String, Summary)>,
}

/// Run the latency campaign and render fig12, fig13, tab6.
pub fn run(scale: Scale, seed: u64, workers: usize) -> Vec<Artifact> {
    let ms = run_campaign(&scenarios(), scale, seed, workers);

    // ---------------- fig12: packet RTT CCDFs ----------------
    let mut fig12 = Table::new(
        "Figure 12 — Packet RTT distributions of MPTCP subflows (ms)",
        &["path", "min", "p50", "p90", "p99", "max", "n"],
    );
    let mut rtt_series = Vec::new();
    let mut rtt_quantiles: std::collections::BTreeMap<String, DistSummary> = Default::default();
    for carrier in Carrier::ALL {
        for (if_index, name) in [(1u8, carrier.name().to_string()), (0u8, format!("WiFi (w/ {})", carrier.name()))] {
            let c = pool_rtts(&ms, carrier, if_index);
            if c.count() == 0 {
                continue;
            }
            fig12.row(vec![
                name.clone(),
                format!("{:.0}", c.min()),
                format!("{:.0}", c.quantile(0.5)),
                format!("{:.0}", c.quantile(0.9)),
                format!("{:.0}", c.quantile(0.99)),
                format!("{:.0}", c.max()),
                c.count().to_string(),
            ]);
            rtt_series.push((name.clone(), c.log_series(24, 1.0)));
            rtt_quantiles.insert(name, c);
        }
    }
    let q = |name: &str, p: f64| rtt_quantiles.get(name).map(|c| c.quantile(p)).unwrap_or(0.0);
    let checks12 = vec![
        Check::new(
            "WiFi RTTs low and tight (90% below ~50-80 ms)",
            q("WiFi (w/ AT&T)", 0.9) < 90.0,
            format!("WiFi p90 {:.0} ms", q("WiFi (w/ AT&T)", 0.9)),
        ),
        Check::new(
            "AT&T RTT mass between 50 and 200 ms",
            q("AT&T", 0.5) > 40.0 && q("AT&T", 0.9) < 320.0,
            format!("AT&T p50 {:.0} ms, p90 {:.0} ms", q("AT&T", 0.5), q("AT&T", 0.9)),
        ),
        Check::new(
            "Sprint 3G heavy tail: p99 near or above 1 s",
            q("Sprint", 0.99) > 600.0,
            format!("Sprint p99 {:.0} ms", q("Sprint", 0.99)),
        ),
        Check::new(
            "Verizon tail lies between AT&T and Sprint",
            q("Verizon", 0.99) > q("AT&T", 0.99) && q("Verizon", 0.95) < q("Sprint", 0.95) * 2.0,
            format!(
                "p99: AT&T {:.0}, Verizon {:.0}, Sprint {:.0} ms",
                q("AT&T", 0.99),
                q("Verizon", 0.99),
                q("Sprint", 0.99)
            ),
        ),
    ];

    // ---------------- fig13: out-of-order delay CCDFs ----------------
    let mut fig13 = Table::new(
        "Figure 13 — Out-of-order delay distributions at the MPTCP receive buffer (ms)",
        &["carrier", "size", "in-order frac", "p90", "p99", "max", "n"],
    );
    let mut ofo_series = Vec::new();
    let mut ofo_pools: std::collections::BTreeMap<String, DistSummary> = Default::default();
    for carrier in Carrier::ALL {
        for &size in &SIZES {
            let mut c = DistSummary::new();
            for m in ms
                .iter()
                .filter(|m| m.scenario.carrier == carrier && m.scenario.size == size)
            {
                c.merge(&m.ofo);
            }
            if c.count() == 0 {
                continue;
            }
            let in_order = c.frac_le(0.5);
            fig13.row(vec![
                carrier.name().into(),
                sizes::label(size),
                format!("{in_order:.2}"),
                format!("{:.0}", c.quantile(0.9)),
                format!("{:.0}", c.quantile(0.99)),
                format!("{:.0}", c.max()),
                c.count().to_string(),
            ]);
            ofo_series.push((
                format!("{}-{}", carrier.name(), sizes::label(size)),
                c.log_series(24, 0.01),
            ));
            ofo_pools
                .entry(carrier.name().to_string())
                .or_default()
                .merge(&c);
        }
    }
    let frac_above = |carrier: &str, thresh_ms: f64| -> f64 {
        ofo_pools
            .get(carrier)
            .map(|p| p.frac_above(thresh_ms))
            .unwrap_or(0.0)
    };
    let checks13 = vec![
        Check::new(
            "AT&T: most packets in order, small OFO delays",
            frac_above("AT&T", 150.0) < 0.15,
            format!("AT&T frac >150 ms = {:.3}", frac_above("AT&T", 150.0)),
        ),
        Check::new(
            "Sprint: substantial fraction above the 150 ms real-time budget",
            frac_above("Sprint", 150.0) > 0.05,
            format!("Sprint frac >150 ms = {:.3}", frac_above("Sprint", 150.0)),
        ),
        Check::new(
            "Ordering AT&T < Verizon < Sprint in OFO severity",
            frac_above("AT&T", 100.0) <= frac_above("Verizon", 100.0) + 0.02
                && frac_above("Verizon", 100.0) <= frac_above("Sprint", 100.0) + 0.02,
            format!(
                "frac >100 ms: AT&T {:.3}, Verizon {:.3}, Sprint {:.3}",
                frac_above("AT&T", 100.0),
                frac_above("Verizon", 100.0),
                frac_above("Sprint", 100.0)
            ),
        ),
    ];

    // ---------------- tab6: RTT and OFO statistics ----------------
    let mut tab6 = Table::new(
        "Table 6 — MPTCP RTT (per-flow mean±se) and out-of-order delay (per-connection mean±se), ms",
        &["metric", "path", "size", "mean±se"],
    );
    let mut t6_rtt = Vec::new();
    let mut t6_ofo = Vec::new();
    for carrier in Carrier::ALL {
        for &size in &SIZES {
            let rtt_means: Vec<f64> = ms
                .iter()
                .filter(|m| m.scenario.carrier == carrier && m.scenario.size == size)
                .flat_map(|m| {
                    m.subflows
                        .iter()
                        .filter(|s| s.if_index == 1)
                        .filter_map(|s| s.mean_rtt_ms())
                })
                .collect();
            let s = Summary::of(&rtt_means);
            tab6.row(vec![
                "RTT".into(),
                carrier.name().into(),
                sizes::label(size),
                s.pm(),
            ]);
            t6_rtt.push((carrier.name().to_string(), sizes::label(size), s));

            let ofo_means: Vec<f64> = ms
                .iter()
                .filter(|m| {
                    m.scenario.carrier == carrier
                        && m.scenario.size == size
                        && m.ofo.count() > 0
                })
                .map(|m| m.ofo.mean())
                .collect();
            let s = Summary::of(&ofo_means);
            tab6.row(vec![
                "OFO".into(),
                carrier.name().into(),
                sizes::label(size),
                s.pm(),
            ]);
            t6_ofo.push((carrier.name().to_string(), sizes::label(size), s));
        }
    }
    // WiFi RTT rows (as in the paper's Table 6).
    for &size in &SIZES {
        let rtt_means: Vec<f64> = ms
            .iter()
            .filter(|m| m.scenario.size == size)
            .flat_map(|m| {
                m.subflows
                    .iter()
                    .filter(|s| s.if_index == 0)
                    .filter_map(|s| s.mean_rtt_ms())
            })
            .collect();
        let s = Summary::of(&rtt_means);
        tab6.row(vec!["RTT".into(), "WiFi".into(), sizes::label(size), s.pm()]);
        t6_rtt.push(("WiFi".to_string(), sizes::label(size), s));
    }
    let mean_of = |rows: &[(String, String, Summary)], path: &str| -> f64 {
        let v: Vec<f64> = rows
            .iter()
            .filter(|(p, ..)| p == path)
            .map(|(.., s)| s.mean)
            .filter(|m| m.is_finite() && *m > 0.0)
            .collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let checks_t6 = vec![
        Check::new(
            "Mean OFO delay ordering: AT&T < Verizon < Sprint",
            mean_of(&t6_ofo, "AT&T") < mean_of(&t6_ofo, "Verizon")
                && mean_of(&t6_ofo, "Verizon") < mean_of(&t6_ofo, "Sprint"),
            format!(
                "AT&T {:.0}, Verizon {:.0}, Sprint {:.0} ms",
                mean_of(&t6_ofo, "AT&T"),
                mean_of(&t6_ofo, "Verizon"),
                mean_of(&t6_ofo, "Sprint")
            ),
        ),
        Check::new(
            "MPTCP WiFi-subflow RTT stays far below cellular RTTs",
            mean_of(&t6_rtt, "WiFi") * 2.0 < mean_of(&t6_rtt, "AT&T"),
            format!(
                "WiFi {:.0} ms vs AT&T {:.0} ms",
                mean_of(&t6_rtt, "WiFi"),
                mean_of(&t6_rtt, "AT&T")
            ),
        ),
    ];

    let json = mpw_metrics::to_json(&LatencyJson {
        rtt_ccdf_series: rtt_series,
        ofo_ccdf_series: ofo_series,
        table6_rtt: t6_rtt,
        table6_ofo: t6_ofo,
    });

    vec![
        Artifact {
            id: "fig12",
            title: "Packet RTT distributions of MPTCP connections per carrier".into(),
            text: fig12.render(),
            json: json.clone(),
            checks: checks12,
        },
        Artifact {
            id: "fig13",
            title: "Out-of-order delay distributions of MPTCP connections".into(),
            text: fig13.render(),
            json: json.clone(),
            checks: checks13,
        },
        Artifact {
            id: "tab6",
            title: "MPTCP RTT and out-of-order delay statistics".into(),
            text: tab6.render(),
            json,
            checks: checks_t6,
        },
    ]
}

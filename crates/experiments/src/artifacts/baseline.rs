//! Baseline measurements (§4): Figure 2 (download times across carriers),
//! Figure 3 (cellular traffic share), Table 2 (path characteristics).

use mpw_link::Carrier;
use mpw_metrics::{BoxPlot, Summary, Table};
use mpw_mptcp::Coupling;
use serde::Serialize;

use crate::artifacts::{Artifact, Check};
use crate::campaign::{group_by, run_campaign, Scale};
use crate::config::{sizes, FlowConfig, Scenario, WifiKind};
use crate::measure::Measurement;

const SIZES: [u64; 4] = [sizes::S64K, sizes::S512K, sizes::S2M, sizes::S16M];

fn scenarios() -> Vec<Scenario> {
    let mut v = Vec::new();
    // SP-WiFi once (carrier field unused on the WiFi path).
    for &size in &SIZES {
        v.push(Scenario {
            wifi: WifiKind::Home,
            carrier: Carrier::Att,
            flow: FlowConfig::SpWifi,
            size,
            period: mpw_link::DayPeriod::Afternoon,
            warmup: true,
        });
    }
    for carrier in Carrier::ALL {
        for &size in &SIZES {
            for flow in [FlowConfig::SpCellular, FlowConfig::mp2(Coupling::Coupled)] {
                v.push(Scenario {
                    wifi: WifiKind::Home,
                    carrier,
                    flow,
                    size,
                    period: mpw_link::DayPeriod::Afternoon,
                    warmup: true,
                });
            }
        }
    }
    v
}

fn config_label(m: &Measurement) -> String {
    m.scenario.flow.label(m.scenario.carrier)
}

fn label_rank(label: &str) -> u8 {
    // Paper's legend order: MP-ATT, MP-VZ, MP-Sprint, SP-WiFi, SP-ATT, ...
    match label {
        l if l.starts_with("MP-2") => 0,
        "SP-WiFi" => 10,
        "SP-AT&T" => 11,
        "SP-Verizon" => 12,
        "SP-Sprint" => 13,
        _ => 20,
    }
}

/// Group label for figure rows: MPTCP rows get the carrier appended.
fn row_label(m: &Measurement) -> String {
    if m.scenario.flow.is_mptcp() {
        format!("MP-{}", m.scenario.carrier.name())
    } else {
        config_label(m)
    }
}

#[derive(Serialize)]
struct BaselineJson {
    download_time_rows: Vec<(String, String, BoxPlot)>,
    cellular_share_rows: Vec<(String, String, Summary)>,
    path_stats_rows: Vec<(String, String, Summary, Summary)>,
}

fn secs(ms: &[&Measurement]) -> Vec<f64> {
    ms.iter().filter_map(|m| m.download_time_s).collect()
}

/// Run the baseline campaign and render fig2, fig3, tab2.
pub fn run(scale: Scale, seed: u64, workers: usize) -> Vec<Artifact> {
    let ms = run_campaign(&scenarios(), scale, seed, workers);

    // ---------------- fig2: download-time boxplots ----------------
    let mut fig2 = Table::new(
        "Figure 2 — Baseline download time (s): min [q1 |median| q3] max",
        &["size", "config", "download time (s)", "n"],
    );
    let mut fig2_rows = Vec::new();
    let grouped = group_by(&ms, |m| (m.scenario.size, label_rank(&row_label(m)), row_label(m)));
    for ((size, _, label), group) in &grouped {
        let b = BoxPlot::of(&secs(group));
        fig2.row(vec![
            sizes::label(*size),
            label.clone(),
            b.render(),
            b.n.to_string(),
        ]);
        fig2_rows.push((sizes::label(*size), label.clone(), b));
    }

    // fig2 checks.
    let mut checks2 = Vec::new();
    {
        // "MPTCP is robust in achieving performance at least close to the
        // best single path" — for every carrier & size, MP median ≤ 1.5 ×
        // best SP median.
        let median = |size: u64, label: &str| -> Option<f64> {
            grouped
                .iter()
                .find(|((s, _, l), _)| *s == size && l == label)
                .map(|(_, g)| BoxPlot::of(&secs(g)).median)
        };
        let mut ok = true;
        let mut detail = String::new();
        for carrier in Carrier::ALL {
            for &size in &SIZES {
                let mp = median(size, &format!("MP-{}", carrier.name()));
                let sp_wifi = median(size, "SP-WiFi");
                let sp_cell = median(size, &format!("SP-{}", carrier.name()));
                if let (Some(mp), Some(w), Some(c)) = (mp, sp_wifi, sp_cell) {
                    let best = w.min(c);
                    if mp > best * 1.6 + 0.05 {
                        ok = false;
                        detail.push_str(&format!(
                            "{}-{}: MP {:.2}s vs best SP {:.2}s; ",
                            carrier.name(),
                            sizes::label(size),
                            mp,
                            best
                        ));
                    }
                }
            }
        }
        if detail.is_empty() {
            detail = "MPTCP within 1.6× of best single path everywhere".into();
        }
        checks2.push(Check::new(
            "MPTCP ≈ best single path across carriers and sizes",
            ok,
            detail,
        ));

        // "For small flows single-path WiFi performs best."
        let w64 = median(sizes::S64K, "SP-WiFi");
        let mut ok_small = true;
        if let Some(w) = w64 {
            for carrier in Carrier::ALL {
                if let Some(c) = median(sizes::S64K, &format!("SP-{}", carrier.name())) {
                    if c < w {
                        ok_small = false;
                    }
                }
            }
        }
        checks2.push(Check::new(
            "64 KB: SP-WiFi beats every SP-cellular",
            ok_small,
            format!("SP-WiFi median {w64:?}s at 64 KB"),
        ));

        // "Sprint is the worst path at large sizes."
        let s16_sprint = median(sizes::S16M, "SP-Sprint");
        let s16_att = median(sizes::S16M, "SP-AT&T");
        let ok_sprint = match (s16_sprint, s16_att) {
            (Some(s), Some(a)) => s > 2.0 * a,
            _ => false,
        };
        checks2.push(Check::new(
            "16 MB: SP-Sprint ≫ SP-AT&T (3G vs LTE)",
            ok_sprint,
            format!("Sprint {s16_sprint:?}s vs AT&T {s16_att:?}s"),
        ));
    }

    // ---------------- fig3: cellular share ----------------
    let mut fig3 = Table::new(
        "Figure 3 — Fraction of MPTCP traffic carried by the cellular path",
        &["size", "carrier", "cellular share", "n"],
    );
    let mut fig3_rows = Vec::new();
    let mp_only: Vec<&Measurement> = ms.iter().filter(|m| m.scenario.flow.is_mptcp()).collect();
    let g3 = {
        let mut map: std::collections::BTreeMap<(u64, String), Vec<&Measurement>> =
            Default::default();
        for m in &mp_only {
            map.entry((m.scenario.size, m.scenario.carrier.name().to_string()))
                .or_default()
                .push(m);
        }
        map
    };
    for ((size, carrier), group) in &g3 {
        let shares: Vec<f64> = group.iter().map(|m| m.cellular_share).collect();
        let s = Summary::of(&shares);
        fig3.row(vec![
            sizes::label(*size),
            carrier.clone(),
            format!("{:.3}±{:.3}", s.mean, s.std_err),
            s.n.to_string(),
        ]);
        fig3_rows.push((sizes::label(*size), carrier.clone(), s));
    }
    let mut checks3 = Vec::new();
    {
        let share = |size: u64, carrier: &str| -> f64 {
            g3.iter()
                .find(|((s, c), _)| *s == size && c == carrier)
                .map(|(_, g)| {
                    g.iter().map(|m| m.cellular_share).sum::<f64>() / g.len() as f64
                })
                .unwrap_or(0.0)
        };
        checks3.push(Check::new(
            "Cellular share grows with file size (AT&T)",
            share(sizes::S16M, "AT&T") > share(sizes::S64K, "AT&T"),
            format!(
                "64KB {:.2} → 16MB {:.2}",
                share(sizes::S64K, "AT&T"),
                share(sizes::S16M, "AT&T")
            ),
        ));
        checks3.push(Check::new(
            "LTE offload exceeds Sprint 3G offload at 16 MB",
            share(sizes::S16M, "AT&T") > share(sizes::S16M, "Sprint"),
            format!(
                "AT&T {:.2} vs Sprint {:.2}",
                share(sizes::S16M, "AT&T"),
                share(sizes::S16M, "Sprint")
            ),
        ));
    }

    // ---------------- tab2: loss rates and RTTs ----------------
    let mut tab2 = Table::new(
        "Table 2 — Baseline path characteristics (single-path TCP): loss % and RTT ms (mean±se)",
        &["path", "size", "loss (%)", "RTT (ms)"],
    );
    let mut tab2_rows = Vec::new();
    let sp_only: Vec<&Measurement> = ms
        .iter()
        .filter(|m| !m.scenario.flow.is_mptcp())
        .collect();
    let g2 = {
        let mut map: std::collections::BTreeMap<(u8, String, u64), Vec<&Measurement>> =
            Default::default();
        for m in &sp_only {
            let name = match m.scenario.flow {
                FlowConfig::SpWifi => "Comcast".to_string(),
                _ => m.scenario.carrier.name().to_string(),
            };
            let rank = if name == "Comcast" { 3 } else { 0 };
            map.entry((rank, name, m.scenario.size)).or_default().push(m);
        }
        map
    };
    for ((_, name, size), group) in &g2 {
        let losses: Vec<f64> = group
            .iter()
            .flat_map(|m| m.subflows.iter().map(|s| s.loss_pct()))
            .collect();
        let rtts: Vec<f64> = group
            .iter()
            .flat_map(|m| m.subflows.iter().filter_map(|s| s.mean_rtt_ms()))
            .collect();
        let ls = Summary::of(&losses);
        let rs = Summary::of(&rtts);
        tab2.row(vec![
            name.clone(),
            sizes::label(*size),
            ls.pm_or_tilde(0.03),
            rs.pm(),
        ]);
        tab2_rows.push((name.clone(), sizes::label(*size), ls, rs));
    }
    let mut checks_t2 = Vec::new();
    {
        let mean_rtt = |name: &str, size: u64| -> f64 {
            g2.iter()
                .find(|((_, n, s), _)| n == name && *s == size)
                .map(|(_, g)| {
                    let v: Vec<f64> = g
                        .iter()
                        .flat_map(|m| m.subflows.iter().filter_map(|s| s.mean_rtt_ms()))
                        .collect();
                    Summary::of(&v).mean
                })
                .unwrap_or(0.0)
        };
        let mean_loss = |name: &str, size: u64| -> f64 {
            g2.iter()
                .find(|((_, n, s), _)| n == name && *s == size)
                .map(|(_, g)| {
                    let v: Vec<f64> = g
                        .iter()
                        .flat_map(|m| m.subflows.iter().map(|s| s.loss_pct()))
                        .collect();
                    Summary::of(&v).mean
                })
                .unwrap_or(0.0)
        };
        checks_t2.push(Check::new(
            "Cellular RTT grows with file size (bufferbloat)",
            mean_rtt("Verizon", sizes::S16M) > mean_rtt("Verizon", sizes::S64K) * 1.5,
            format!(
                "Verizon 64KB {:.0} ms → 16MB {:.0} ms",
                mean_rtt("Verizon", sizes::S64K),
                mean_rtt("Verizon", sizes::S16M)
            ),
        ));
        checks_t2.push(Check::new(
            "WiFi is lossy while LTE is ~loss-free",
            mean_loss("Comcast", sizes::S2M) > 0.3 && mean_loss("AT&T", sizes::S512K) < 0.5,
            format!(
                "Comcast 2MB loss {:.2}%, AT&T 512KB loss {:.2}%",
                mean_loss("Comcast", sizes::S2M),
                mean_loss("AT&T", sizes::S512K)
            ),
        ));
        checks_t2.push(Check::new(
            "Sprint 3G RTTs are an order above WiFi",
            mean_rtt("Sprint", sizes::S2M) > 6.0 * mean_rtt("Comcast", sizes::S2M),
            format!(
                "Sprint 2MB {:.0} ms vs Comcast 2MB {:.0} ms",
                mean_rtt("Sprint", sizes::S2M),
                mean_rtt("Comcast", sizes::S2M)
            ),
        ));
    }

    let json = mpw_metrics::to_json(&BaselineJson {
        download_time_rows: fig2_rows,
        cellular_share_rows: fig3_rows,
        path_stats_rows: tab2_rows,
    });

    vec![
        Artifact {
            id: "fig2",
            title: "Baseline download time: MPTCP and single-path TCP across carriers".into(),
            text: fig2.render(),
            json: json.clone(),
            checks: checks2,
        },
        Artifact {
            id: "fig3",
            title: "Baseline: fraction of traffic carried by each cellular carrier".into(),
            text: fig3.render(),
            json: json.clone(),
            checks: checks3,
        },
        Artifact {
            id: "tab2",
            title: "Baseline path characteristics: loss rates and RTTs".into(),
            text: tab2.render(),
            json,
            checks: checks_t2,
        },
    ]
}

//! Infinite-backlog transfers (§4.2, Figure 11): 512 MB downloads isolate
//! steady-state behaviour from slow-start effects; 4-path should still
//! slightly beat 2-path. The paper ran 10 iterations of coupled and
//! uncoupled reno.

use mpw_link::Carrier;
use mpw_metrics::{BoxPlot, Summary, Table};
use mpw_mptcp::Coupling;
use serde::Serialize;

use crate::artifacts::{Artifact, Check};
use crate::campaign::{group_by, run_campaign, Scale};
use crate::config::{sizes, FlowConfig, Scenario, WifiKind};
use crate::measure::Measurement;

/// Effective backlog size per scale: full scale uses the paper's 512 MB;
/// smaller scales shrink it (shape is rate-bound, not size-bound, once slow
/// start is negligible).
pub fn backlog_size(scale: Scale) -> u64 {
    match scale.runs_per_period {
        0..=1 => 32 << 20,
        2..=4 => 64 << 20,
        _ => sizes::S512M,
    }
}

fn scenarios(size: u64) -> Vec<Scenario> {
    let mut v = Vec::new();
    for coupling in [Coupling::Coupled, Coupling::Reno] {
        for flow in [
            FlowConfig::mp2(coupling),
            FlowConfig::mp4(coupling),
        ] {
            v.push(Scenario {
                wifi: WifiKind::Home,
                carrier: Carrier::Att,
                flow,
                size,
                period: mpw_link::DayPeriod::Afternoon,
                warmup: true,
            });
        }
    }
    v
}

#[derive(Serialize)]
struct BacklogJson {
    size_bytes: u64,
    rows: Vec<(String, BoxPlot, Summary)>,
}

/// Run the infinite-backlog campaign and render fig11.
pub fn run(scale: Scale, seed: u64, workers: usize) -> Vec<Artifact> {
    let size = backlog_size(scale);
    // The paper used 10 iterations for this experiment, independent of the
    // rest of the methodology; honor the scale but collapse periods.
    let scale = Scale {
        runs_per_period: scale.runs_per_period.max(2),
        all_periods: false,
    };
    let ms = run_campaign(&scenarios(size), scale, seed, workers);
    let label = |m: &Measurement| m.scenario.flow.label(m.scenario.carrier);

    let mut fig11 = Table::new(
        format!(
            "Figure 11 — Infinite-backlog download time (s), object = {}",
            sizes::label(size)
        ),
        &["config", "download time (s)", "mean±se", "n"],
    );
    let grouped = group_by(&ms, |m| label(m));
    let mut rows = Vec::new();
    for (lbl, group) in &grouped {
        let times: Vec<f64> = group.iter().filter_map(|m| m.download_time_s).collect();
        let b = BoxPlot::of(&times);
        let s = Summary::of(&times);
        fig11.row(vec![lbl.clone(), b.render(), s.pm(), s.n.to_string()]);
        rows.push((lbl.clone(), b, s));
    }
    let mean = |lbl: &str| -> Option<f64> {
        grouped.get(lbl).map(|g| {
            Summary::of(&g.iter().filter_map(|m| m.download_time_s).collect::<Vec<_>>()).mean
        })
    };

    let checks = vec![
        Check::new(
            "4-path slightly outperforms 2-path even without slow-start effects",
            match (mean("MP-4 (coupled)"), mean("MP-2 (coupled)")) {
                (Some(m4), Some(m2)) => m4 <= m2 * 1.05,
                _ => false,
            },
            format!(
                "coupled: MP-4 {:?}s vs MP-2 {:?}s",
                mean("MP-4 (coupled)"),
                mean("MP-2 (coupled)")
            ),
        ),
        Check::new(
            "All transfers complete (no stalls over the full backlog)",
            ms.iter().all(|m| m.download_time_s.is_some()),
            format!(
                "{}/{} completed",
                ms.iter().filter(|m| m.download_time_s.is_some()).count(),
                ms.len()
            ),
        ),
        Check::new(
            // Paper Fig. 10 reports 50-60% cellular; our coupled controller
            // suppresses the lossy WiFi path harder (see EXPERIMENTS.md), so
            // the check asserts both paths stay in real use, not the exact
            // split.
            "Steady-state aggregate uses both paths (cellular share 15-97%)",
            ms.iter()
                .filter(|m| m.scenario.flow == FlowConfig::mp2(Coupling::Coupled))
                .all(|m| (0.15..0.97).contains(&m.cellular_share)),
            format!(
                "per-run cellular shares of MP-2 (coupled): {:?}",
                ms.iter()
                    .filter(|m| m.scenario.flow == FlowConfig::mp2(Coupling::Coupled))
                    .map(|m| (m.cellular_share * 100.0).round() / 100.0)
                    .collect::<Vec<_>>()
            ),
        ),
    ];

    let json = mpw_metrics::to_json(&BacklogJson {
        size_bytes: size,
        rows,
    });

    vec![Artifact {
        id: "fig11",
        title: "Infinite-backlog download times (4/2 subflows, coupled vs reno)".into(),
        text: fig11.render(),
        json,
        checks,
    }]
}

//! Mobility/handover campaign (§7, DESIGN.md §5.11): scripted WiFi-fade →
//! LTE handovers against both lifecycle policies, with the full handover
//! metric harvest — recovery latency, application stalls, per-epoch traffic
//! shares, and the traffic-shift latency from fade onset.
//!
//! The headline claims this campaign defends:
//!
//! * a mid-download WiFi blackout never aborts the connection — the
//!   download always completes over the surviving cellular path,
//! * traffic shifts onto cellular within a couple of retransmission
//!   timeouts of the fade (faster under make-before-break, which demotes
//!   the fading path on the signal trigger before it dies),
//! * once the WiFi link returns, the lifecycle manager re-establishes a
//!   replacement subflow (capped exponential backoff) and WiFi carries
//!   bytes again,
//! * replaying a (spec, seed) pair reproduces every metric byte for byte.

use mpw_link::Carrier;
use mpw_metrics::Table;
use mpw_mptcp::HandoverPolicy;
use serde::Serialize;

use crate::artifacts::{Artifact, Check};
use crate::campaign::Scale;
use crate::config::sizes;
use crate::handover::{run_handover_campaign, HandoverMeasurement, HandoverSpec};

/// The sweep at a given scale. Quick scale keeps one cheap configuration
/// pair (both policies, AT&T, 8 MB); default and full add the 32 MB
/// acceptance transfer, a second carrier, and a late-fade variant.
fn specs(scale: Scale, seed: u64) -> Vec<HandoverSpec> {
    let full = scale.runs_per_period >= 3;
    let size = if full { sizes::S32M } else { sizes::S8M };
    // The outage must end while the transfer is still running, or there is
    // no recovery to observe: quick scale pairs its 8 MB transfer (~7 s on
    // cellular alone) with an early fade and a 2 s blackout.
    let fades: &[u64] = if full { &[3_000, 8_000] } else { &[1_000] };
    let outage_ms = if full { 8_000 } else { 2_000 };
    let carriers: &[Carrier] = if full {
        &[Carrier::Att, Carrier::Verizon]
    } else {
        &[Carrier::Att]
    };
    let mut out = Vec::new();
    for &carrier in carriers {
        for &fade_at_ms in fades {
            for policy in [HandoverPolicy::MakeBeforeBreak, HandoverPolicy::BreakBeforeMake] {
                let mut spec = HandoverSpec::wifi_fade(size, 0);
                spec.carrier = carrier;
                spec.fade_at_ms = fade_at_ms;
                spec.outage_ms = outage_ms;
                spec.policy = policy;
                spec.seed = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(out.len() as u64);
                out.push(spec);
            }
        }
    }
    out
}

#[derive(Serialize)]
struct HandoverJson {
    runs: Vec<HandoverMeasurement>,
    replay_identical: bool,
}

/// Run the handover campaign and render the `handover` artifact.
pub fn run(scale: Scale, seed: u64, workers: usize) -> Vec<Artifact> {
    let specs = specs(scale, seed);
    let runs = run_handover_campaign(&specs, workers);

    // Replay determinism: the first spec, run again in this process, must
    // reproduce its measurement byte for byte (serialized form).
    let replay = crate::handover::run_handover(&specs[0]);
    let replay_identical =
        mpw_metrics::to_json(&replay) == mpw_metrics::to_json(&runs[0]);

    let mut table = Table::new(
        "Handover — scripted WiFi fade → LTE, by lifecycle policy",
        &[
            "scenario",
            "size",
            "done",
            "time (s)",
            "shift (ms)",
            "reopens",
            "recovery (ms)",
            "stalls",
            "cell share (fade)",
            "wifi share (restored)",
        ],
    );
    for m in &runs {
        let fade_share = m.epoch("fade").map_or(0.0, |e| e.non_primary_share());
        let restored_wifi = m.epoch("restored").map_or(0.0, |e| e.share(0));
        table.row(vec![
            m.spec.label(),
            sizes::label(m.spec.size),
            if m.completed { "yes".into() } else { "NO".into() },
            m.download_time_s
                .map_or("-".into(), |t| format!("{t:.2}")),
            m.shift_ms.map_or("-".into(), |s| format!("{s:.0}")),
            format!("{}", m.report.reopen_launched),
            if m.report.recovery_ms.is_empty() {
                "-".into()
            } else {
                format!("{:.0}", m.report.recovery_ms.mean())
            },
            format!(
                "{}×/{:.0}ms",
                m.stalls.count(),
                m.stalls.longest.as_millis_f64()
            ),
            format!("{fade_share:.2}"),
            format!("{restored_wifi:.2}"),
        ]);
    }

    let aborted: Vec<&HandoverMeasurement> =
        runs.iter().filter(|m| m.aborted() || m.fell_back).collect();
    let worst_shift = runs
        .iter()
        .filter_map(|m| m.shift_ms)
        .fold(0.0f64, f64::max);
    let no_shift = runs.iter().filter(|m| m.shift_ms.is_none()).count();
    // 2 RTOs from fade onset: the 1.5 s signal-to-blackout ramp plus two
    // 1 s minimum retransmission timeouts.
    let shift_bound_ms = 3_500.0;
    let no_reopen = runs
        .iter()
        .filter(|m| m.report.reopen_launched == 0 || m.report.recoveries == 0)
        .count();
    let min_fade_share = runs
        .iter()
        .map(|m| m.epoch("fade").map_or(0.0, |e| e.non_primary_share()))
        .fold(1.0f64, f64::min);
    let wifi_back = runs
        .iter()
        .filter(|m| m.epoch("restored").is_some_and(|e| e.share(0) > 0.0))
        .count();
    let with_restored = runs
        .iter()
        .filter(|m| m.epoch("restored").is_some())
        .count();

    let checks = vec![
        Check::new(
            "A mid-download WiFi blackout never aborts the connection",
            aborted.is_empty(),
            format!("{}/{} runs completed without fallback", runs.len() - aborted.len(), runs.len()),
        ),
        Check::new(
            "Traffic shifts to cellular within 2 RTOs of fade onset",
            no_shift == 0 && worst_shift <= shift_bound_ms,
            format!("worst shift {worst_shift:.0} ms (bound {shift_bound_ms:.0} ms), {no_shift} runs never shifted"),
        ),
        Check::new(
            "The dead WiFi subflow re-establishes once the link returns",
            no_reopen == 0,
            format!("{no_reopen}/{} runs missing a reopen or recovery", runs.len()),
        ),
        Check::new(
            "Cellular carries the load during the fade/blackout epoch",
            min_fade_share > 0.7,
            format!("minimum fade-epoch cellular share {min_fade_share:.2}"),
        ),
        Check::new(
            "WiFi carries bytes again after the link is restored",
            with_restored > 0 && wifi_back == with_restored,
            format!("{wifi_back}/{with_restored} runs with post-restore WiFi bytes"),
        ),
        Check::new(
            "Replaying the same (spec, seed) reproduces identical metrics",
            replay_identical,
            "serialized measurement compared byte for byte".to_string(),
        ),
    ];

    let json = mpw_metrics::to_json(&HandoverJson { runs, replay_identical });

    vec![Artifact {
        id: "handover",
        title: "Scripted mobility: WiFi fade → LTE handover and recovery".into(),
        text: table.render(),
        json,
        checks,
    }]
}

//! Cross-check the in-stack measurement against the wire capture.
//!
//! The paper derived every headline figure from tcpdump traces analyzed
//! offline (§3.2); the simulator additionally has white-box counters inside
//! the stack. This module compares a [`Measurement`] (white box) against a
//! [`WireAnalysis`] (black box, reconstructed purely from captured bytes)
//! and reports where they diverge beyond tolerance.
//!
//! Tolerances (documented in DESIGN.md):
//!
//! - **Data segments / retransmissions**: exact. Both sides count server
//!   transmissions, and the server-side ingress tap sees every one.
//! - **RTT means**: relative difference < 0.2 per subflow. Both apply the
//!   tcptrace/Karn rule but at slightly different match points (the stack
//!   matches inside the socket, the wire at the link tap), so queueing at
//!   the host boundary can shift individual samples.
//! - **Out-of-order delay**: the fraction of delayed (>10 ms) samples must
//!   agree within 0.15, the shape metric §5.2 cares about. Segment-level
//!   granularity differs: the stack times SACK-held byte ranges, the wire
//!   times DSS mappings held in reassembly.
//! - **Cellular byte share**: absolute difference < 0.05. The wire
//!   attributes a connection-level byte to the subflow that delivered it
//!   *first*; the stack attributes by which subflow's receive path accepted
//!   it — redundant retransmissions across paths can split the credit.
//! - **Delivered bytes**: wire total must be within 2% of the stack's
//!   (HTTP response framing rides inside the payload stream on both sides,
//!   but the horizon can clip in-flight tail bytes differently).

use mpw_capture::{WireAnalysis, WireSubflow};
use serde::Serialize;

use crate::measure::{Measurement, SubflowMeasurement};

/// Tolerances used by [`crosscheck`]. The defaults are the documented ones.
#[derive(Clone, Debug, Serialize)]
pub struct Tolerances {
    /// Max relative difference of per-subflow RTT means.
    pub rtt_mean_rel: f64,
    /// Max absolute difference of the delayed (>10 ms) OFO sample fraction.
    pub ofo_delayed_frac: f64,
    /// Max absolute difference of the cellular byte share.
    pub cellular_share_abs: f64,
    /// Max relative difference of total delivered bytes.
    pub delivered_rel: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            rtt_mean_rel: 0.2,
            ofo_delayed_frac: 0.15,
            cellular_share_abs: 0.05,
            delivered_rel: 0.02,
        }
    }
}

/// One compared quantity.
#[derive(Clone, Debug, Serialize)]
pub struct Comparison {
    /// What was compared (e.g. `subflow0.rtt_mean_ms`).
    pub name: String,
    /// In-stack (white-box) value.
    pub stack: f64,
    /// Wire-derived (black-box) value.
    pub wire: f64,
    /// Whether the pair is within tolerance.
    pub pass: bool,
}

/// Result of one cross-check.
#[derive(Clone, Debug, Serialize)]
pub struct CrosscheckReport {
    /// Every quantity compared, in report order.
    pub comparisons: Vec<Comparison>,
    /// Human-readable descriptions of the failures only.
    pub failures: Vec<String>,
}

impl CrosscheckReport {
    /// Whether every comparison passed.
    pub fn pass(&self) -> bool {
        self.failures.is_empty()
    }

    /// Render a compact text table of all comparisons.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.comparisons {
            out.push_str(&format!(
                "[{}] {:<28} stack {:>12.3}  wire {:>12.3}\n",
                if c.pass { "ok" } else { "XX" },
                c.name,
                c.stack,
                c.wire
            ));
        }
        out
    }
}

fn delayed_frac(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&d| d > 10.0).count() as f64 / samples.len() as f64
}

/// Match a wire subflow to the stack subflow on the same client interface:
/// wire path indices come from capture interface names, which the testbed
/// assigns per client interface, so they align with `if_index`.
fn wire_for<'a>(wire: &'a [WireSubflow], stack: &SubflowMeasurement) -> Option<&'a WireSubflow> {
    wire.iter().find(|w| w.path == stack.if_index)
}

/// Compare the in-stack measurement of a single-download run against the
/// offline analysis of its capture.
pub fn crosscheck(m: &Measurement, wa: &WireAnalysis, tol: &Tolerances) -> CrosscheckReport {
    let mut comparisons = Vec::new();
    let mut failures = Vec::new();
    let mut check = |name: String, stack: f64, wire: f64, ok: bool| {
        if !ok {
            failures.push(format!("{name}: stack {stack:.3} vs wire {wire:.3}"));
        }
        comparisons.push(Comparison { name, stack, wire, pass: ok });
    };

    // Exactly one foreground connection is expected on the wire.
    check(
        "connections".into(),
        1.0,
        wa.connections.len() as f64,
        wa.connections.len() == 1,
    );
    let Some(conn) = wa.connections.first() else {
        return CrosscheckReport { comparisons, failures };
    };

    let stack_established = m.subflows.iter().filter(|s| s.established).count();
    let wire_established = conn.subflows.iter().filter(|s| s.established).count();
    check(
        "established_subflows".into(),
        stack_established as f64,
        wire_established as f64,
        stack_established == wire_established,
    );

    for (i, s) in m.subflows.iter().enumerate() {
        let Some(w) = wire_for(&conn.subflows, s) else {
            if s.data_segs_sent > 0 {
                check(format!("subflow{i}.present_on_wire"), 1.0, 0.0, false);
            }
            continue;
        };
        check(
            format!("subflow{i}.data_segs"),
            s.data_segs_sent as f64,
            w.data_segs as f64,
            s.data_segs_sent == w.data_segs,
        );
        check(
            format!("subflow{i}.rexmit_segs"),
            s.rexmit_segs as f64,
            w.rexmit_segs as f64,
            s.rexmit_segs == w.rexmit_segs,
        );
        if let Some(stack_mean) = s.mean_rtt_ms() {
            if w.rtt.count() > 0 {
                let wire_mean = w.rtt.mean();
                let rel = (wire_mean - stack_mean).abs() / stack_mean;
                check(
                    format!("subflow{i}.rtt_mean_ms"),
                    stack_mean,
                    wire_mean,
                    rel < tol.rtt_mean_rel,
                );
            } else {
                check(format!("subflow{i}.rtt_samples"), s.rtt.count() as f64, 0.0, false);
            }
        }
    }

    // Delivered bytes: unique connection-level payload seen at the client.
    let stack_bytes: u64 = m.subflows.iter().map(|s| s.delivered_bytes).sum();
    if stack_bytes > 0 {
        let rel = (conn.delivered_bytes as f64 - stack_bytes as f64).abs() / stack_bytes as f64;
        check(
            "delivered_bytes".into(),
            stack_bytes as f64,
            conn.delivered_bytes as f64,
            rel < tol.delivered_rel,
        );
    }

    // Byte shares (fig-5's metric) for multipath runs.
    if m.subflows.len() > 1 {
        let wire_share = conn.cellular_share();
        check(
            "cellular_share".into(),
            m.cellular_share,
            wire_share,
            (wire_share - m.cellular_share).abs() < tol.cellular_share_abs,
        );
    }

    // OFO shape: fraction of delayed samples. Compare via the streaming
    // summary when exact stack samples are off (campaign mode).
    if m.ofo.count() > 0 && conn.ofo.count() > 0 {
        let f_stack = if m.ofo_samples_ms.is_empty() {
            m.ofo.frac_above(10.0)
        } else {
            delayed_frac(&m.ofo_samples_ms)
        };
        let f_wire = delayed_frac(&conn.ofo_samples_ms);
        check(
            "ofo_delayed_frac".into(),
            f_stack,
            f_wire,
            (f_stack - f_wire).abs() < tol.ofo_delayed_frac,
        );
    }

    CrosscheckReport { comparisons, failures }
}

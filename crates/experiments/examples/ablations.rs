//! Run the design-choice ablations and print the comparison table.
//!
//! ```text
//! cargo run --release -p mpw-experiments --example ablations
//! ```
fn main() {
    let (table, _results) = mpw_experiments::ablations::run_all(3, 9);
    println!("{table}");
}

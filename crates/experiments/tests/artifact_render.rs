//! Artifact plumbing: rendering, JSON validity, and the cheap static group.

use mpw_experiments::artifacts::inventory;
use mpw_experiments::{Artifact, Check, Scale};

#[test]
fn inventory_artifact_is_complete_and_valid() {
    let artifacts = inventory::run(Scale::QUICK, 1, 1);
    assert_eq!(artifacts.len(), 1);
    let a = &artifacts[0];
    assert_eq!(a.id, "tab1");
    assert!(a.all_pass(), "static inventory checks must pass");
    // Table mentions all three carriers and their devices.
    for needle in ["AT&T", "Verizon", "Sprint", "Elevate", "551L", "OverdrivePro"] {
        assert!(a.text.contains(needle), "missing {needle} in:\n{}", a.text);
    }
    // JSON payload parses.
    let v: serde_json::Value = serde_json::from_str(&a.json).expect("valid json");
    assert!(v.get("carriers").is_some());
}

#[test]
fn report_marks_pass_and_miss_lines() {
    let a = Artifact {
        id: "fig2",
        title: "demo".into(),
        text: "TABLE\n".into(),
        json: "{}".into(),
        checks: vec![
            Check::new("good thing", true, "42"),
            Check::new("bad thing", false, "0"),
        ],
    };
    let r = a.report();
    assert!(r.contains("[PASS] good thing"));
    assert!(r.contains("[MISS] bad thing"));
    assert!(!a.all_pass());
}

#[test]
fn artifact_ids_match_paper_numbering() {
    let ids: Vec<&str> = mpw_experiments::groups()
        .iter()
        .flat_map(|g| g.artifacts)
        .copied()
        .collect();
    for n in 2..=13 {
        assert!(ids.contains(&format!("fig{n}").as_str()), "missing fig{n}");
    }
    for n in 1..=7 {
        assert!(ids.contains(&format!("tab{n}").as_str()), "missing tab{n}");
    }
}

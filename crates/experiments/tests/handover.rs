//! End-to-end handover acceptance and replay-determinism regression.
//!
//! The scripted WiFi-fade → LTE scenario must complete its download with
//! zero connection aborts, shift traffic to cellular promptly, and
//! re-establish the WiFi subflow once the link returns — and every metric
//! must replay byte-identically, regardless of worker count.

use mpw_experiments::{run_handover, run_handover_campaign, sizes, HandoverSpec};
use mpw_metrics::to_json;
use mpw_mptcp::HandoverPolicy;

/// A handover small enough for the test suite: 8 MB, fade at 1 s, 2 s
/// blackout. The transfer outlives the outage on cellular alone, so the
/// restored WiFi link gets to carry bytes again before completion.
fn small_fade(policy: HandoverPolicy, seed: u64) -> HandoverSpec {
    let mut spec = HandoverSpec::wifi_fade(sizes::S8M, seed);
    spec.policy = policy;
    spec.fade_at_ms = 1_000;
    spec.outage_ms = 2_000;
    spec
}

#[test]
fn wifi_fade_handover_completes_without_aborting() {
    for policy in [HandoverPolicy::MakeBeforeBreak, HandoverPolicy::BreakBeforeMake] {
        let m = run_handover(&small_fade(policy, 7));
        assert!(m.completed, "{policy:?}: download must survive the blackout");
        assert!(!m.fell_back, "{policy:?}: must not fall back to plain TCP");
        assert_eq!(m.bytes, sizes::S8M, "{policy:?}: full object delivered");
        assert!(
            m.report.deaths >= 1,
            "{policy:?}: the WiFi path must be declared dead"
        );
        assert!(
            m.shift_ms.is_some(),
            "{policy:?}: traffic must shift to cellular after the fade"
        );
        let fade = m.epoch("fade").expect("fade epoch exists");
        assert!(
            fade.non_primary_share() > 0.5,
            "{policy:?}: cellular must carry the fade epoch, got {:.2}",
            fade.non_primary_share()
        );
    }
}

#[test]
fn dead_wifi_subflow_reestablishes_after_link_returns() {
    let m = run_handover(&small_fade(HandoverPolicy::MakeBeforeBreak, 11));
    assert!(m.completed && !m.fell_back);
    assert!(
        m.report.reopen_launched >= 1,
        "a replacement join must be attempted, events: {:?}",
        m.events
    );
    assert!(
        m.report.recoveries >= 1,
        "the WiFi path must recover once the link is back, events: {:?}",
        m.events
    );
    assert!(
        m.subflows_total >= 3,
        "the replacement is a new subflow (got {})",
        m.subflows_total
    );
    // Recovery can only happen after the link is restored.
    let restore_ms = (m.spec.fade_at_ms + m.spec.fade_over_ms + m.spec.outage_ms) as f64;
    for o in &m.report.outages {
        assert!(
            o.recovered_at.as_millis_f64() >= restore_ms,
            "recovered at {:.0} ms, before the link returned at {restore_ms:.0} ms",
            o.recovered_at.as_millis_f64()
        );
    }
}

#[test]
fn make_before_break_demotes_on_the_signal() {
    let mbb = run_handover(&small_fade(HandoverPolicy::MakeBeforeBreak, 13));
    // The MP_PRIO trigger is delivered at fade onset and logged.
    assert!(
        mbb.events.iter().any(|e| matches!(
            e.kind,
            mpw_metrics::PathEventKind::SignalWeak
        )),
        "the fade's signal trigger must reach the connection"
    );
}

#[test]
fn replay_is_byte_identical_and_worker_count_invariant() {
    let specs = vec![
        small_fade(HandoverPolicy::MakeBeforeBreak, 17),
        small_fade(HandoverPolicy::BreakBeforeMake, 19),
    ];
    // Same spec, run twice: byte-identical serialized measurements.
    let once = run_handover(&specs[0]);
    let twice = run_handover(&specs[0]);
    assert_eq!(
        to_json(&once),
        to_json(&twice),
        "replaying the same (spec, seed) must reproduce every metric"
    );
    // Same campaign, 1 worker vs 4: byte-identical result vectors.
    let serial = run_handover_campaign(&specs, 1);
    let parallel = run_handover_campaign(&specs, 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            to_json(s),
            to_json(p),
            "worker count must not change any measurement"
        );
    }
    // And the serial runs match the standalone ones.
    assert_eq!(to_json(&serial[0]), to_json(&once));
}

//! Fleet acceptance regressions: the N=1 degenerate case must land within
//! the DESIGN §5.7 cross-check tolerances of the single-flow testbed, and
//! campaign aggregation must be bitwise immune to worker counts and shard
//! splits (the CI smoke gate in miniature).

use mpw_experiments::{run_measurement, sizes, FlowConfig, Scenario, Tolerances, WifiKind};
use mpw_fleet::{run_campaign, run_fleet, FleetCampaign, FleetSpec, FleetWorkload, PathMix};
use mpw_link::{Carrier, DayPeriod};
use mpw_metrics::to_json;
use mpw_mptcp::Coupling;

#[test]
fn n1_fleet_matches_single_flow_testbed_within_tolerances() {
    let seed = 1;
    let size = sizes::S2M;
    let mut spec = FleetSpec::smoke(1, seed);
    spec.mix = PathMix::all_multipath();
    spec.workload = FleetWorkload::Download { size };
    spec.horizon_ms = 240_000;
    let fleet = run_fleet(&spec);
    let testbed = run_measurement(
        &Scenario {
            wifi: WifiKind::Home,
            carrier: Carrier::Att,
            flow: FlowConfig::mp2(Coupling::Coupled),
            size,
            period: DayPeriod::Evening,
            warmup: false,
        },
        seed,
    );

    let tol = Tolerances::default();
    let rec = &fleet.records[0];
    assert!(rec.completed, "N=1 fleet download must complete");
    assert!(testbed.download_time_s.is_some(), "testbed must complete");

    let byte_diff = (fleet.report.bytes as f64 - testbed.bytes as f64).abs()
        / (testbed.bytes as f64);
    assert!(
        byte_diff <= tol.delivered_rel,
        "delivered bytes diverge: fleet {} vs testbed {} (rel {byte_diff:.4})",
        fleet.report.bytes,
        testbed.bytes
    );

    let share_diff = (fleet.report.cellular_share() - testbed.cellular_share).abs();
    assert!(
        share_diff <= tol.cellular_share_abs,
        "cellular share diverges: fleet {:.3} vs testbed {:.3}",
        fleet.report.cellular_share(),
        testbed.cellular_share
    );
}

#[test]
fn fleet_campaign_is_bitwise_immune_to_workers_and_shards() {
    let base = FleetSpec::smoke(30, 17);
    let reference = run_campaign(&FleetCampaign {
        base: base.clone(),
        replications: 4,
        workers: 1,
        shards: 1,
    });
    for (workers, shards) in [(4, 1), (2, 4), (0, 2)] {
        let got = run_campaign(&FleetCampaign {
            base: base.clone(),
            replications: 4,
            workers,
            shards,
        });
        assert_eq!(
            to_json(&reference.0),
            to_json(&got.0),
            "workers={workers} shards={shards} changed the merged report"
        );
    }
}

#[test]
fn mixed_fleet_report_is_internally_consistent() {
    let run = run_fleet(&FleetSpec::smoke(60, 3));
    let r = &run.report;
    assert_eq!(r.clients, 60);
    assert_eq!(r.flows_started, 60);
    assert_eq!(r.flows_completed, 60);
    assert_eq!(r.bytes, r.wifi_bytes + r.cell_bytes);
    // The mixed 5/3/2 draw at N=60 produces all three classes.
    assert_eq!(r.fct_by_class.len(), 3, "classes: {:?}", r.fct_by_class.keys());
    let by_class: u64 = r.fct_by_class.values().map(|d| d.count).sum();
    assert_eq!(by_class, r.flows_started);
    let jain = r.fairness.jain();
    assert!(jain > 0.0 && jain <= 1.0, "Jain index out of range: {jain}");
}

//! Replay the checked-in regression corpus through the target oracles.
//!
//! Every input under `tests/fuzz-corpus/<target>/` — coverage-novel
//! campaign survivors plus the handcrafted witnesses of fixed bugs (the
//! reassembly u64 overflow, the analyzer dseq overflow, the pcapng
//! tsresol divide-by-zero) — must execute without any oracle violation on
//! every `cargo test`. A failure here means a fixed bug regressed.

use std::path::PathBuf;

use mpw_fuzz::{corpus, execute, TargetKind};

fn corpus_dir(target: TargetKind) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fuzz-corpus")
        .join(target.name())
}

fn replay(target: TargetKind) {
    let dir = corpus_dir(target);
    let entries = corpus::load(&dir).expect("corpus directory must be readable");
    assert!(
        !entries.is_empty(),
        "no corpus entries under {} — regenerate with \
         `cargo run -p mpw-fuzz --bin fuzz -- --emit-regressions tests/fuzz-corpus` \
         and a --save-corpus campaign",
        dir.display()
    );
    for entry in &entries {
        let outcome = execute(target, entry, None);
        assert_eq!(
            outcome.violation,
            None,
            "{}: corpus entry {} regressed",
            target.name(),
            corpus::entry_name(entry)
        );
    }
}

#[test]
fn wire_corpus_replays_clean() {
    replay(TargetKind::Wire);
}

#[test]
fn pcapng_corpus_replays_clean() {
    replay(TargetKind::Pcapng);
}

#[test]
fn analyze_corpus_replays_clean() {
    replay(TargetKind::Analyze);
}

#[test]
fn assembler_corpus_replays_clean() {
    replay(TargetKind::Assembler);
}

#[test]
fn scenario_corpus_replays_clean() {
    replay(TargetKind::Scenario);
}

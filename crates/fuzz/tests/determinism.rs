//! The engine's central promise: a campaign is a pure function of its
//! configuration. Same seed + iters ⇒ byte-identical corpus, findings and
//! fingerprint counts — across reruns and across shard chunkings.

use mpw_fuzz::{engine, EngineConfig, FuzzReport, TargetKind};

fn campaign(target: TargetKind, seed: u64, iters: u64, shards: u32) -> FuzzReport {
    let mut cfg = EngineConfig::new(target);
    cfg.seed = seed;
    cfg.iters = iters;
    cfg.shards = shards;
    engine::run(&cfg)
}

fn assert_identical(a: &FuzzReport, b: &FuzzReport, what: &str) {
    assert_eq!(a.executions, b.executions, "{what}: execution counts differ");
    assert_eq!(
        a.unique_fingerprints, b.unique_fingerprints,
        "{what}: fingerprint counts differ"
    );
    assert_eq!(a.corpus, b.corpus, "{what}: corpora differ");
    assert_eq!(
        a.finding.is_some(),
        b.finding.is_some(),
        "{what}: finding presence differs"
    );
    if let (Some(fa), Some(fb)) = (&a.finding, &b.finding) {
        assert_eq!(fa.iter, fb.iter, "{what}: finding iterations differ");
        assert_eq!(fa.input, fb.input, "{what}: finding inputs differ");
        assert_eq!(fa.message, fb.message, "{what}: finding messages differ");
    }
}

#[test]
fn reruns_are_byte_identical() {
    for target in [TargetKind::Wire, TargetKind::Pcapng, TargetKind::Assembler] {
        let a = campaign(target, 11, 500, 1);
        let b = campaign(target, 11, 500, 1);
        assert_identical(&a, &b, target.name());
    }
}

#[test]
fn results_are_invariant_under_shard_chunking() {
    // Iteration behaviour is keyed by (seed, global index), so splitting
    // the same iteration range into 1, 3, or 7 shards changes nothing.
    for target in [TargetKind::Wire, TargetKind::Assembler] {
        let one = campaign(target, 23, 500, 1);
        let three = campaign(target, 23, 500, 3);
        let seven = campaign(target, 23, 500, 7);
        assert_identical(&one, &three, target.name());
        assert_identical(&one, &seven, target.name());
    }
}

#[test]
fn different_seeds_explore_differently() {
    let a = campaign(TargetKind::Wire, 1, 500, 1);
    let b = campaign(TargetKind::Wire, 2, 500, 1);
    assert_ne!(a.corpus, b.corpus, "distinct seeds produced identical corpora");
}

#[test]
fn analyze_campaigns_without_base_are_deterministic_too() {
    let a = campaign(TargetKind::Analyze, 31, 200, 1);
    let b = campaign(TargetKind::Analyze, 31, 200, 4);
    assert_identical(&a, &b, "analyze");
}

//! Proof that the harness catches real parser defects.
//!
//! Compiled only under the `planted-parser-bug` feature, which makes
//! `mpw_tcp::wire::parse_options` read the MP_JOIN nonce one byte early
//! (overlapping the token field) — the classic misaligned-field defect a
//! broken middlebox or a hasty refactor would introduce. The bug is
//! invisible to the no-panic oracle; the decode→encode→decode fixpoint
//! oracle must find it within a small budget, and the minimizer must keep
//! the violation while shrinking.

#![cfg(feature = "planted-parser-bug")]

use mpw_fuzz::{engine, EngineConfig, TargetKind};

#[test]
fn fixpoint_oracle_catches_the_misaligned_join_nonce() {
    let mut cfg = EngineConfig::new(TargetKind::Wire);
    cfg.seed = 7;
    cfg.iters = 5_000;
    cfg.minimize = true;
    let report = engine::run(&cfg);
    let finding = report
        .finding
        .expect("planted MP_JOIN misparse must be found within 5k iterations");
    assert!(
        finding.message.contains("fixpoint"),
        "expected a fixpoint violation, got: {}",
        finding.message
    );
    assert!(
        finding.message.contains("Join"),
        "expected the Join option in the violation, got: {}",
        finding.message
    );
    let minimized = finding.minimized.expect("minimizer ran");
    assert!(
        minimized.len() <= finding.input.len(),
        "minimizer grew the input"
    );
    // The shrunk witness still violates.
    let outcome = mpw_fuzz::execute(TargetKind::Wire, &minimized, None);
    assert!(outcome.violation.is_some(), "minimized input lost the violation");
}

#[test]
fn campaigns_with_the_planted_bug_are_still_deterministic() {
    let mut cfg = EngineConfig::new(TargetKind::Wire);
    cfg.seed = 3;
    cfg.iters = 2_000;
    let a = engine::run(&cfg);
    let b = engine::run(&cfg);
    match (&a.finding, &b.finding) {
        (Some(fa), Some(fb)) => {
            assert_eq!(fa.iter, fb.iter);
            assert_eq!(fa.input, fb.input);
            assert_eq!(fa.message, fb.message);
        }
        (None, None) => {}
        _ => panic!("finding presence differed between identical runs"),
    }
}

//! Structure-aware mutation dictionaries.
//!
//! Random bit flips almost never assemble a well-formed TCP option or a
//! pcapng block header, so the havoc mutator splices these tokens into
//! inputs: MPTCP option skeletons (every RFC 6824 subtype the stack
//! implements, with correct kind/length bytes), DSS flag combinations,
//! boundary sequence numbers, and pcapng block/option headers. A dictionary
//! hit lands the mutant deep inside `parse_options` or the block reader
//! instead of bouncing off the first length check.

/// Boundary integers useful against any length/sequence arithmetic.
pub const GENERIC_TOKENS: &[&[u8]] = &[
    &[0x00],
    &[0xff],
    &[0x7f],
    &[0x80],
    &[0xff, 0xff],
    &[0x7f, 0xff],
    &[0x80, 0x00],
    &[0xff, 0xff, 0xff, 0xff],
    &[0x7f, 0xff, 0xff, 0xff],
    &[0x80, 0x00, 0x00, 0x00],
    // u64::MAX and neighbours: the values that found the reassembly and
    // analyzer overflows (see tests/fuzz-corpus/).
    &[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff],
    &[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xfe],
    &[0x80, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00],
];

/// TCP/MPTCP option skeletons: `kind, length, subtype/flags…` prefixes that
/// the option walker in `mpw_tcp::wire::parse_options` dispatches on.
pub const WIRE_TOKENS: &[&[u8]] = &[
    // Plain TCP options.
    &[2, 4],               // MSS
    &[3, 3],               // window scale
    &[4, 2],               // SACK permitted
    &[5, 10],              // SACK, one block
    &[5, 18],              // SACK, two blocks
    &[1, 1, 1, 1],         // NOP run
    &[0],                  // EOL
    // MPTCP (kind 30) subtypes with plausible lengths.
    &[30, 12, 0x00, 0x81], // MP_CAPABLE, one key
    &[30, 20, 0x00, 0x81], // MP_CAPABLE, both keys
    &[30, 12, 0x10, 0x00], // MP_JOIN
    &[30, 12, 0x11, 0x00], // MP_JOIN, backup bit
    &[30, 4, 0x20, 0x00],  // DSS, no fields
    &[30, 4, 0x20, 0x04],  // DSS, DATA_FIN only
    &[30, 12, 0x20, 0x01], // DSS, data-ack
    &[30, 18, 0x20, 0x02], // DSS, mapping
    &[30, 26, 0x20, 0x03], // DSS, data-ack + mapping
    &[30, 26, 0x20, 0x07], // DSS, everything + DATA_FIN
    &[30, 10, 0x34, 0x01], // ADD_ADDR, ipver 4
    &[30, 4, 0x50, 0x00],  // MP_PRIO
    &[30, 4, 0x51, 0x00],  // MP_PRIO, backup
    &[30, 4, 0xf0, 0x00],  // unknown subtype
];

/// pcapng block and option headers (little-endian), plus the byte-order
/// magic in both spellings.
pub const PCAPNG_TOKENS: &[&[u8]] = &[
    &[0x0a, 0x0d, 0x0d, 0x0a],             // SHB block type
    &[0x01, 0x00, 0x00, 0x00],             // IDB block type
    &[0x06, 0x00, 0x00, 0x00],             // EPB block type
    &[0x4d, 0x3c, 0x2b, 0x1a],             // byte-order magic (LE)
    &[0x1a, 0x2b, 0x3c, 0x4d],             // byte-order magic (byte-swapped)
    &[28, 0x00, 0x00, 0x00],               // minimal SHB total length
    &[12, 0x00, 0x00, 0x00],               // minimal block total length
    &[0x02, 0x00],                         // if_name option code
    &[0x09, 0x00, 0x01, 0x00, 0x09],       // if_tsresol option, value 9
    &[0x09, 0x00, 0x01, 0x00, 0x06],       // if_tsresol option, value 6
    &[0x01, 0x00, 0x04, 0x00],             // opt_comment header, len 4
    &[0x00, 0x00, 0x00, 0x00],             // opt_endofopt
    &[0x93, 0x00],                         // LINKTYPE_USER0 (147)
];

/// Scenario-file tokens: JSON/TOML keys, action and direction variant
/// names, numeric spellings, and TOML syntax fragments. A dictionary hit
/// lands the mutant inside the scenario grammar (a renamed action, a
/// duplicated key, a float where an integer was) instead of bouncing off
/// the first tokenizer check.
pub const SCENARIO_TOKENS: &[&[u8]] = &[
    // Field names, quoted as they appear in both formats.
    b"\"name\"",
    b"\"description\"",
    b"\"events\"",
    b"\"at_ms\"",
    b"\"path\"",
    b"\"dir\"",
    b"\"label\"",
    b"\"action\"",
    b"\"bits_per_sec\"",
    b"\"from_bps\"",
    b"\"to_bps\"",
    b"\"over_ms\"",
    b"\"steps\"",
    b"\"delay_us\"",
    b"\"from_us\"",
    b"\"to_us\"",
    b"\"mean_loss\"",
    b"\"bursty\"",
    b"\"for_ms\"",
    b"\"settle_loss\"",
    b"\"floor_bps\"",
    b"\"stay_up\"",
    b"\"bytes_per_sec\"",
    b"\"backup\"",
    // Action and direction variant names.
    b"\"SetRate\"",
    b"\"RampRate\"",
    b"\"SetDelay\"",
    b"\"RampDelay\"",
    b"\"SetLoss\"",
    b"\"LossBurst\"",
    b"\"LinkDown\"",
    b"\"LinkUp\"",
    b"\"WifiFade\"",
    b"\"RrcIdle\"",
    b"\"BgSurge\"",
    b"\"SetBackup\"",
    b"\"Uplink\"",
    b"\"Downlink\"",
    b"\"Both\"",
    // TOML structure and value spellings.
    b"[[events]]",
    b"[events.action.WifiFade]",
    b"at_ms = ",
    b" = { ",
    b" } ",
    b"1_000_000",
    b"0.016",
    b"-1",
    b"1e308",
    b"\\u0041",
    b"true",
    b"false",
    b"null",
    b"# ",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_tokens_carry_plausible_lengths() {
        for tok in WIRE_TOKENS {
            if tok.first() == Some(&30) {
                // MPTCP skeletons: length byte at least the 2-byte header
                // plus the subtype byte they already include.
                assert!(tok[1] >= 4, "token {tok:?}");
            }
        }
    }
}

//! CLI for the deterministic fuzzing engine.
//!
//! ```text
//! fuzz --target wire|pcapng|analyze|assembler|scenario [--seed N] [--iters N]
//!      [--shards N] [--minimize] [--expect-violation] [--with-base]
//!      [--corpus DIR] [--save-corpus DIR] [--emit-regressions DIR] [--json]
//! ```
//!
//! Exit codes: 0 = campaign matched expectations (no violation, or a
//! violation under `--expect-violation`), 1 = expectations missed,
//! 2 = usage error. `--emit-regressions` writes the handcrafted regression
//! inputs for the bugs this fuzzer found (and which are now fixed) into a
//! corpus directory, then exits.

use std::path::PathBuf;
use std::process::exit;

use mpw_fuzz::{corpus, engine, EngineConfig, TargetKind};

struct Args {
    target: Option<TargetKind>,
    seed: u64,
    iters: u64,
    shards: u32,
    minimize: bool,
    expect_violation: bool,
    with_base: bool,
    corpus_dir: Option<PathBuf>,
    save_corpus: Option<PathBuf>,
    emit_regressions: Option<PathBuf>,
    json: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: fuzz --target wire|pcapng|analyze|assembler|scenario [--seed N] [--iters N] \
         [--shards N] [--minimize] [--expect-violation] [--with-base] \
         [--corpus DIR] [--save-corpus DIR] [--emit-regressions DIR] [--json]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        target: None,
        seed: 1,
        iters: 10_000,
        shards: 1,
        minimize: false,
        expect_violation: false,
        with_base: false,
        corpus_dir: None,
        save_corpus: None,
        emit_regressions: None,
        json: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--target" => {
                let v = value(&mut i);
                args.target = Some(TargetKind::from_name(&v).unwrap_or_else(|| usage()));
            }
            "--seed" => args.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--iters" => args.iters = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--shards" => args.shards = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--minimize" => args.minimize = true,
            "--expect-violation" => args.expect_violation = true,
            "--with-base" => args.with_base = true,
            "--corpus" => args.corpus_dir = Some(PathBuf::from(value(&mut i))),
            "--save-corpus" => args.save_corpus = Some(PathBuf::from(value(&mut i))),
            "--emit-regressions" => args.emit_regressions = Some(PathBuf::from(value(&mut i))),
            "--json" => args.json = true,
            _ => usage(),
        }
        i += 1;
    }
    args
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Regression inputs for the overflow bugs the fuzzer found in the seed
/// code (now fixed): kept handcrafted so the corpus stays meaningful even
/// if the engine's generators change shape.
fn emit_regressions(dir: &std::path::Path) -> std::io::Result<()> {
    use bytes::Bytes;
    use mpw_sim::SimTime;
    use mpw_tcp::seq::SeqNum;
    use mpw_tcp::wire::{
        encode_packet, Addr, DssMapping, IpHeader, MptcpOption, TcpOption, TcpSegment,
    };

    // assembler: op 2 drives Assembler::insert at offset u64::MAX - 0 with
    // a 5-byte payload — the exact `offset + len` overflow from
    // crates/tcp/src/buf.rs (see `offset_near_u64_max_is_rejected_not_overflowed`).
    let assembler_overflow: Vec<u8> = vec![2, 0x00, 0x04, 2, 0x00, 0x05];
    corpus::save(&dir.join("assembler"), &[assembler_overflow])?;

    // analyze: a capture whose DSS mapping advertises dseq near u64::MAX —
    // the `mapping.dseq + payload.len()` overflow in
    // crates/capture/src/analyze.rs (see `hostile_dseq_near_u64_max_does_not_panic`).
    let client = Addr::new(10, 0, 0, 2);
    let server = Addr::new(10, 0, 1, 2);
    let ip = |src, dst| IpHeader {
        src,
        dst,
        protocol: mpw_tcp::wire::PROTO_TCP,
        ttl: 64,
    };
    let mut w = mpw_capture::PcapWriter::new();
    let down = w.add_interface("path0:down@client");
    let mut data_seg = TcpSegment::bare(
        mpw_experiments::SERVER_PORT,
        40_000,
        SeqNum(1),
        SeqNum(1),
        mpw_tcp::wire::tcp_flags::ACK,
    );
    data_seg.payload = Bytes::from(vec![0x55u8; 40]);
    data_seg.options = [TcpOption::Mptcp(MptcpOption::Dss {
        data_ack: None,
        mapping: Some(DssMapping {
            dseq: u64::MAX - 8,
            subflow_seq: SeqNum(1),
            len: 40,
        }),
        data_fin: true,
    })]
    .into();
    w.packet(
        down,
        SimTime::from_millis(1),
        &encode_packet(&ip(server, client), &data_seg),
        None,
    );
    let mut hostile = w.into_bytes();
    hostile.insert(0, 0); // analyze envelope tag: totality-only
    corpus::save(&dir.join("analyze"), &[hostile])?;

    // pcapng: an IDB declaring if_tsresol 81 (10^-81-second units) plus an
    // EPB with a huge timestamp — the nanosecond divisor 10^72 wrapped to 0
    // and the timestamp division panicked (crates/capture/src/pcapng.rs,
    // see `huge_tsresol_exponent_rounds_to_zero_instead_of_panicking`).
    let mut w = mpw_capture::PcapWriter::new();
    w.add_interface("weird");
    w.packet(0, SimTime::from_nanos(u64::MAX), b"x", None);
    let mut tsresol_81 = w.into_bytes();
    let idb_start = 28;
    let mut patched = false;
    for i in idb_start + 8..tsresol_81.len().saturating_sub(5) {
        if tsresol_81[i..i + 4] == [9, 0, 1, 0] {
            tsresol_81[i + 4] = 81;
            patched = true;
            break;
        }
    }
    debug_assert!(patched, "if_tsresol option not found in writer output");
    corpus::save(&dir.join("pcapng"), &[tsresol_81])?;

    // wire: a valid MP_JOIN SYN — under the planted-parser-bug feature this
    // is the minimal witness of the misparsed nonce; on the fixed parser it
    // replays clean.
    let mut join = TcpSegment::bare(40_001, mpw_experiments::SERVER_PORT, SeqNum(9), SeqNum(0), 0x02);
    join.options = [TcpOption::Mptcp(MptcpOption::Join {
        token: 0xaabb_ccdd,
        nonce: 0x1122_3344,
        backup: false,
    })]
    .into();
    let join_packet = encode_packet(&ip(client, server), &join).to_vec();
    corpus::save(&dir.join("wire"), &[join_packet])?;

    // scenario: the overflowed-exponent witness — `1e999` parses to
    // infinity, which canonical JSON rendered as `null`, breaking the
    // serialize→reparse fixpoint (found by this fuzzer; non-finite floats
    // are now shape errors, see crates/scenario/src/parse.rs) — plus the
    // recursion-bound witness (100 nested arrays must come back as a clean
    // syntax error, never a stack overflow) and the canonical WiFi-fade
    // scenario in both formats to anchor the corpus on well-formed inputs.
    let inf_loss = "{\"name\":\"inf\",\"events\":[\
                    {\"at_ms\":0,\"action\":{\"SetLoss\":{\"mean_loss\":1e999}}}]}";
    let mut deep = String::from("a = ");
    deep.extend(std::iter::repeat_n('[', 100));
    let fade_toml = "\
name = \"wifi-fade\"\n\
description = \"walk out of AP range at t=3s\"\n\
\n\
[[events]]\n\
at_ms = 3000\n\
path = 0\n\
label = \"fade\"\n\
\n\
[events.action.WifiFade]\n\
from_bps = 20000000\n\
floor_bps = 500000\n\
over_ms = 1500\n\
steps = 5\n\
\n\
[[events]]\n\
at_ms = 12500\n\
path = 0\n\
label = \"restored\"\n\
action = \"LinkUp\"\n";
    let fade_json = mpw_scenario::from_toml(fade_toml)
        .map(|s| mpw_scenario::to_json(&s))
        .map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("fade witness must parse: {e}"),
            )
        })?;
    corpus::save(
        &dir.join("scenario"),
        &[
            inf_loss.as_bytes().to_vec(),
            deep.into_bytes(),
            fade_toml.as_bytes().to_vec(),
            fade_json.into_bytes(),
        ],
    )?;
    Ok(())
}

fn main() {
    let args = parse_args();
    if let Some(dir) = &args.emit_regressions {
        if let Err(e) = emit_regressions(dir) {
            eprintln!("fuzz: emitting regressions failed: {e}");
            exit(2);
        }
        println!("regression inputs written under {}", dir.display());
        return;
    }
    let Some(target) = args.target else { usage() };
    let mut cfg = EngineConfig::new(target);
    cfg.seed = args.seed;
    cfg.iters = args.iters;
    cfg.shards = args.shards;
    cfg.minimize = args.minimize;
    cfg.with_base = args.with_base;
    if let Some(dir) = &args.corpus_dir {
        match corpus::load(dir) {
            Ok(extra) => cfg.extra_seeds = extra,
            Err(e) => {
                eprintln!("fuzz: loading corpus from {} failed: {e}", dir.display());
                exit(2);
            }
        }
    }
    engine::quiet_panics();
    let report = engine::run(&cfg);

    if let Some(dir) = &args.save_corpus {
        // Keep checked-in corpora small: entries that fit in 2 KiB.
        let small: Vec<Vec<u8>> = report
            .corpus
            .iter()
            .filter(|e| e.len() <= 2048)
            .take(48)
            .cloned()
            .collect();
        match corpus::save(dir, &small) {
            Ok(n) => eprintln!("saved {n} new corpus entries to {}", dir.display()),
            Err(e) => {
                eprintln!("fuzz: saving corpus to {} failed: {e}", dir.display());
                exit(2);
            }
        }
    }

    if args.json {
        let finding_json = match &report.finding {
            None => "null".to_string(),
            Some(f) => format!(
                "{{\"iter\":{},\"message\":\"{}\",\"input_hex\":\"{}\",\"minimized_hex\":{}}}",
                f.iter,
                json_escape(&f.message),
                hex(&f.input),
                match &f.minimized {
                    Some(m) => format!("\"{}\"", hex(m)),
                    None => "null".to_string(),
                }
            ),
        };
        println!(
            "{{\"target\":\"{}\",\"seed\":{},\"iters\":{},\"executions\":{},\
             \"unique_fingerprints\":{},\"corpus\":{},\"finding\":{}}}",
            target.name(),
            args.seed,
            args.iters,
            report.executions,
            report.unique_fingerprints,
            report.corpus.len(),
            finding_json
        );
    } else {
        println!(
            "target {} seed {} iters {}: {} executions, {} decode-path fingerprints, corpus {}",
            target.name(),
            args.seed,
            args.iters,
            report.executions,
            report.unique_fingerprints,
            report.corpus.len()
        );
        match &report.finding {
            None => println!("no oracle violations"),
            Some(f) => {
                println!("VIOLATION at iteration {}: {}", f.iter, f.message);
                println!("  input   ({} bytes): {}", f.input.len(), hex(&f.input));
                if let Some(m) = &f.minimized {
                    println!("  minimal ({} bytes): {}", m.len(), hex(m));
                }
            }
        }
    }

    let found = report.finding.is_some();
    if found == args.expect_violation {
        exit(0);
    }
    if args.expect_violation {
        eprintln!("fuzz: expected a violation but the campaign found none");
    }
    exit(1);
}

//! Corpus persistence.
//!
//! Corpus entries are content-addressed: each input is stored as
//! `<fnv64-of-content>.bin`, so re-saving an unchanged corpus is a no-op
//! and directory listings are stable for replay. The checked-in regression
//! corpus under `tests/fuzz-corpus/<target>/` is loaded by both the CLI
//! (`--corpus`) and the `corpus_replay` integration test, which re-executes
//! every entry through the target oracles on every `cargo test`.

use std::fs;
use std::io;
use std::path::Path;

use crate::cover::hash_bytes;

/// Content-addressed file name for an input.
pub fn entry_name(data: &[u8]) -> String {
    format!("{:016x}.bin", hash_bytes(data))
}

/// Write `entries` into `dir` (created if missing). Returns how many files
/// were newly written (existing content-addressed names are skipped).
pub fn save(dir: &Path, entries: &[Vec<u8>]) -> io::Result<usize> {
    fs::create_dir_all(dir)?;
    let mut written = 0;
    for entry in entries {
        let path = dir.join(entry_name(entry));
        if !path.exists() {
            fs::write(&path, entry)?;
            written += 1;
        }
    }
    Ok(written)
}

/// Load every `.bin` entry in `dir`, sorted by file name for determinism.
/// A missing directory is an empty corpus, not an error.
pub fn load(dir: &Path) -> io::Result<Vec<Vec<u8>>> {
    let mut names: Vec<std::path::PathBuf> = match fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "bin"))
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    names.sort();
    names.into_iter().map(fs::read).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_then_load_roundtrips_sorted() {
        let dir = std::env::temp_dir().join(format!("mpw-fuzz-corpus-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let entries = vec![vec![1u8, 2, 3], vec![9u8; 10], vec![]];
        let written = save(&dir, &entries).expect("save");
        assert_eq!(written, 3);
        // Saving again writes nothing new.
        assert_eq!(save(&dir, &entries).expect("resave"), 0);
        let mut loaded = load(&dir).expect("load");
        let mut want = entries.clone();
        loaded.sort();
        want.sort();
        assert_eq!(loaded, want);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let dir = std::env::temp_dir().join("mpw-fuzz-no-such-dir-xyzzy");
        assert_eq!(load(&dir).expect("load"), Vec::<Vec<u8>>::new());
    }
}

//! Seeded SplitMix64 PRNG.
//!
//! The whole fuzzing engine draws randomness exclusively from this
//! generator, seeded from the CLI: identical (seed, iters) configurations
//! produce byte-identical campaigns. SplitMix64 is the standard one-word
//! mixer (Steele, Lea & Flood 2014); it is fast, passes BigCrush, and —
//! unlike anything reading the OS entropy pool — keeps the determinism
//! lint wall happy.

/// Deterministic 64-bit generator.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Generator seeded with `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Generator for iteration `index` of a campaign seeded with `seed`.
    ///
    /// Deriving each iteration's stream from the pair rather than from a
    /// running generator makes campaign results invariant under shard
    /// chunking: iteration `i` behaves identically whether it runs in one
    /// shard of `iters` or the third shard of eight.
    pub fn for_iteration(seed: u64, index: u64) -> Rng {
        let mut r = Rng::new(seed.wrapping_add((index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        r.next_u64();
        r
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (0 when `n == 0`).
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// One random byte.
    pub fn byte(&mut self) -> u8 {
        self.next_u64() as u8
    }

    /// True with probability `num` in `den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        den != 0 && self.next_u64() % den < num
    }

    /// An independent child generator (split).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn iteration_rngs_are_chunking_invariant() {
        // The stream for (seed, i) depends only on the pair.
        let xs: Vec<u64> = (0..10).map(|i| Rng::for_iteration(3, i).next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|i| Rng::for_iteration(3, i).next_u64()).collect();
        assert_eq!(xs, ys);
        // Distinct iterations diverge.
        assert_ne!(xs[0], xs[1]);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::new(1);
        for n in 1..40usize {
            for _ in 0..20 {
                assert!(r.below(n) < n);
            }
        }
        assert_eq!(r.below(0), 0);
    }
}

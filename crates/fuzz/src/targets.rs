//! Fuzz targets: what gets executed, and the oracles that judge it.
//!
//! Five targets cover the stack's byte-facing surfaces (DESIGN.md §5.9):
//!
//! * **wire** — `mpw_tcp::wire::parse_any` must be total (no panic), and
//!   any successfully parsed packet must survive decode→encode→decode as a
//!   value-level fixpoint. This differential oracle is what catches silent
//!   misparses (it is the one that flags the CI-planted MP_JOIN defect).
//! * **pcapng** — `mpw_capture::read_pcapng` must be total, and a parsed
//!   file rewritten through `PcapWriter` must read back with identical
//!   interfaces and packets.
//! * **analyze** — the offline capture analyzer must be total over
//!   arbitrary pcapng bytes and keep its outputs sane (byte shares within
//!   [0, 1]); when the engine carries a reference measurement, mutants
//!   produced by *neutral* capture transformations (appended unknown
//!   blocks, unused interfaces) must still pass the PR 2 cross-check
//!   against the in-stack metrics within the standard tolerances.
//! * **assembler** — a decoded op program drives `mpw_tcp::Assembler` with
//!   adversarial offsets (including the top of the u64 sequence space);
//!   after every op the PR 3 `validate()` invariants must hold, and at the
//!   end inserted bytes must be conserved as accepted + duplicate.
//! * **scenario** — the mobility scenario parsers (`mpw_scenario::from_str`
//!   over JSON and the hand-rolled TOML subset, plus the raw TOML grammar
//!   `toml_to_value`) must be total over arbitrary text; any parsed
//!   scenario must survive serialize→reparse through canonical JSON as a
//!   value fixpoint; and a valid scenario must compile into a time-sorted
//!   primitive timeline.

use std::panic::{catch_unwind, AssertUnwindSafe};

use bytes::Bytes;
use mpw_capture::{analyze, read_pcapng, PcapWriter};
use mpw_experiments::{
    crosscheck, run_measurement_captured, sizes, FlowConfig, Measurement, Scenario, Tolerances,
    WifiKind, SERVER_PORT,
};
use mpw_sim::SimTime;
use mpw_tcp::wire::{encode_packet, encode_ping, parse_any, Packet, TcpOption};
use mpw_tcp::Assembler;

use crate::cover::{len_bucket, Fnv64};
use crate::generate;
use crate::mutate::mutate;
use crate::rng::Rng;
use crate::{dict, checksum_repair};

/// Which surface to fuzz.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetKind {
    /// `parse_any` totality + encode fixpoint.
    Wire,
    /// `read_pcapng` totality + writer round-trip.
    Pcapng,
    /// Capture analyzer totality + cross-check differential.
    Analyze,
    /// Reassembly invariants + byte conservation.
    Assembler,
    /// Scenario parser totality + serialize fixpoint + compile sortedness.
    Scenario,
}

impl TargetKind {
    /// All targets, in CLI order.
    pub const ALL: [TargetKind; 5] = [
        TargetKind::Wire,
        TargetKind::Pcapng,
        TargetKind::Analyze,
        TargetKind::Assembler,
        TargetKind::Scenario,
    ];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            TargetKind::Wire => "wire",
            TargetKind::Pcapng => "pcapng",
            TargetKind::Analyze => "analyze",
            TargetKind::Assembler => "assembler",
            TargetKind::Scenario => "scenario",
        }
    }

    /// Parse a CLI name.
    pub fn from_name(s: &str) -> Option<TargetKind> {
        TargetKind::ALL.into_iter().find(|t| t.name() == s)
    }
}

/// Result of one execution.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Structural decode-path fingerprint (coverage proxy).
    pub fingerprint: u64,
    /// Oracle violation, if any.
    pub violation: Option<String>,
}

/// Reference run for the analyze target's differential oracle: a small
/// captured MPTCP download plus its in-stack measurement.
pub struct AnalyzeBase {
    /// White-box measurement from the simulated stack.
    pub measurement: Measurement,
    /// The run's pcapng capture bytes.
    pub capture: Vec<u8>,
}

/// Produce the analyze reference run (one small deterministic download).
pub fn analyze_base() -> AnalyzeBase {
    let scenario = Scenario {
        wifi: WifiKind::Home,
        carrier: mpw_link::Carrier::Att,
        flow: FlowConfig::mp2(mpw_mptcp::Coupling::Coupled),
        size: sizes::S512K,
        period: mpw_link::DayPeriod::Night,
        warmup: true,
    };
    let (measurement, capture) = run_measurement_captured(&scenario, 42);
    AnalyzeBase {
        measurement,
        capture,
    }
}

/// Initial corpus for a target. For analyze, inputs carry a one-byte
/// envelope tag: 1 = produced by a neutral transformation of the base
/// capture (cross-check must pass), 0 = arbitrary bytes (totality only).
pub fn seeds(kind: TargetKind, rng: &mut Rng, base: Option<&AnalyzeBase>) -> Vec<Vec<u8>> {
    match kind {
        TargetKind::Wire => (0..24).map(|_| generate::wire_seed(rng)).collect(),
        TargetKind::Pcapng => (0..12).map(|_| generate::pcapng_seed(rng)).collect(),
        TargetKind::Analyze => {
            let mut out: Vec<Vec<u8>> = (0..8)
                .map(|_| {
                    let mut v = generate::pcapng_seed(rng);
                    v.insert(0, 0);
                    v
                })
                .collect();
            if let Some(b) = base {
                let mut v = b.capture.clone();
                v.insert(0, 1);
                out.push(v);
            }
            out
        }
        TargetKind::Assembler => (0..16).map(|_| generate::assembler_seed(rng)).collect(),
        TargetKind::Scenario => (0..16).map(|_| generate::scenario_seed(rng)).collect(),
    }
}

/// Produce one mutant for `kind`.
pub fn mutate_input(
    kind: TargetKind,
    rng: &mut Rng,
    pick: &[u8],
    corpus: &[Vec<u8>],
    base: Option<&AnalyzeBase>,
) -> Vec<u8> {
    match kind {
        TargetKind::Wire => {
            if rng.chance(1, 8) {
                return generate::wire_seed(rng);
            }
            let mut m = mutate(rng, pick, corpus, dict::WIRE_TOKENS);
            // Usually repair the checksums so the mutant reaches the option
            // parser; sometimes leave them broken to fuzz the checksum and
            // header paths themselves.
            if rng.chance(3, 4) {
                checksum_repair::fix_wire_checksums(&mut m);
            }
            m
        }
        TargetKind::Pcapng => {
            if rng.chance(1, 8) {
                return generate::pcapng_seed(rng);
            }
            mutate(rng, pick, corpus, dict::PCAPNG_TOKENS)
        }
        TargetKind::Analyze => {
            if let Some(b) = base {
                if rng.chance(1, 2) {
                    let mut v = neutral_capture_mutation(rng, &b.capture);
                    v.insert(0, 1);
                    return v;
                }
            }
            let body = pick.get(1..).unwrap_or(pick);
            let mut m = mutate(rng, body, corpus, dict::PCAPNG_TOKENS);
            m.insert(0, 0);
            m
        }
        TargetKind::Assembler => mutate(rng, pick, corpus, dict::GENERIC_TOKENS),
        TargetKind::Scenario => {
            if rng.chance(1, 8) {
                return generate::scenario_seed(rng);
            }
            mutate(rng, pick, corpus, dict::SCENARIO_TOKENS)
        }
    }
}

/// A transformation of a valid capture that must not change its analysis:
/// appended unknown block types (the reader skips them) and appended
/// unused interfaces (no packet references them).
fn neutral_capture_mutation(rng: &mut Rng, capture: &[u8]) -> Vec<u8> {
    let mut out = capture.to_vec();
    for _ in 0..1 + rng.below(2) {
        match rng.below(3) {
            0 => append_block(&mut out, 0x0000_0BAD, &[0u8; 8]),
            1 => {
                let body: Vec<u8> = (0..4 * (1 + rng.below(6))).map(|_| rng.byte()).collect();
                append_block(&mut out, 0x4242_4242, &body);
            }
            _ => {
                // Minimal IDB: LINKTYPE_USER0, reserved, snaplen 0, no
                // options — an interface no packet will ever reference.
                let mut body = Vec::new();
                body.extend_from_slice(&147u16.to_le_bytes());
                body.extend_from_slice(&0u16.to_le_bytes());
                body.extend_from_slice(&0u32.to_le_bytes());
                append_block(&mut out, 0x0000_0001, &body);
            }
        }
    }
    out
}

fn append_block(out: &mut Vec<u8>, block_type: u32, body: &[u8]) {
    let total = 12 + body.len() as u32;
    out.extend_from_slice(&block_type.to_le_bytes());
    out.extend_from_slice(&total.to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&total.to_le_bytes());
}

/// Execute `input` against `kind`, trapping panics into violations.
pub fn execute(kind: TargetKind, input: &[u8], base: Option<&AnalyzeBase>) -> Outcome {
    let result = catch_unwind(AssertUnwindSafe(|| match kind {
        TargetKind::Wire => run_wire(input),
        TargetKind::Pcapng => run_pcapng(input),
        TargetKind::Analyze => run_analyze(input, base),
        TargetKind::Assembler => run_assembler(input),
        TargetKind::Scenario => run_scenario(input),
    }));
    match result {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Outcome {
                fingerprint: 0xdead_beef_dead_beef,
                violation: Some(format!("panic: {msg}")),
            }
        }
    }
}

fn option_code(opt: &TcpOption) -> u16 {
    match opt {
        TcpOption::Mss(_) => 2,
        TcpOption::WindowScale(_) => 3,
        TcpOption::SackPermitted => 4,
        TcpOption::Sack(_) => 5,
        TcpOption::Mptcp(m) => {
            use mpw_tcp::wire::MptcpOption::*;
            0x3000
                | match m {
                    Capable { .. } => 0,
                    Join { .. } => 1,
                    Dss { .. } => 2,
                    AddAddr { .. } => 3,
                    Prio { .. } => 5,
                }
        }
    }
}

fn run_wire(input: &[u8]) -> Outcome {
    let mut fp = Fnv64::new();
    fp.push(b'w');
    match parse_any(input) {
        Err(e) => {
            fp.push(b'e');
            fp.write(format!("{e:?}").as_bytes());
            Outcome {
                fingerprint: fp.finish(),
                violation: None,
            }
        }
        Ok(pkt) => {
            match &pkt {
                Packet::Tcp(ip, seg) => {
                    fp.push(b't');
                    fp.push(ip.protocol);
                    fp.push(seg.flags);
                    fp.push(len_bucket(seg.payload.len()));
                    for opt in &seg.options {
                        fp.write(&option_code(opt).to_be_bytes());
                    }
                }
                Packet::Ping(_, ping) => {
                    fp.push(b'p');
                    fp.push(ping.reply as u8);
                }
            }
            let reencoded = match &pkt {
                Packet::Tcp(ip, seg) => encode_packet(ip, seg),
                Packet::Ping(ip, ping) => encode_ping(ip, ping),
            };
            let violation = match parse_any(&reencoded) {
                Err(e) => Some(format!("decode→encode→decode broke: re-parse failed with {e:?}")),
                Ok(pkt2) if pkt2 != pkt => Some(format!(
                    "decode→encode→decode fixpoint violated: {pkt:?} re-parsed as {pkt2:?}"
                )),
                Ok(_) => None,
            };
            Outcome {
                fingerprint: fp.finish(),
                violation,
            }
        }
    }
}

fn run_pcapng(input: &[u8]) -> Outcome {
    let mut fp = Fnv64::new();
    fp.push(b'g');
    match read_pcapng(input) {
        Err(e) => {
            fp.push(b'e');
            fp.write(format!("{e:?}").as_bytes());
            Outcome {
                fingerprint: fp.finish(),
                violation: None,
            }
        }
        Ok(file) => {
            fp.push(file.interfaces.len() as u8);
            fp.push(len_bucket(file.packets.len()));
            for p in &file.packets {
                fp.push(p.iface as u8);
                fp.push(len_bucket(p.data.len()));
                fp.push(p.comment.is_some() as u8);
            }
            // Rewrite through the writer and read back: the reader output
            // must be a fixpoint of writer∘reader (timestamps were already
            // normalized to nanoseconds by the first read).
            let mut w = PcapWriter::new();
            for iface in &file.interfaces {
                w.add_interface(&iface.name);
            }
            for p in &file.packets {
                w.packet(p.iface, p.at, &p.data, p.comment.as_deref());
            }
            let violation = match read_pcapng(&w.into_bytes()) {
                Err(e) => Some(format!("rewritten capture failed to parse: {e:?}")),
                Ok(again) => {
                    let names_match = again.interfaces.len() == file.interfaces.len()
                        && again
                            .interfaces
                            .iter()
                            .zip(&file.interfaces)
                            .all(|(a, b)| a.name == b.name);
                    if !names_match {
                        Some("writer round-trip changed the interface list".to_string())
                    } else if again.packets != file.packets {
                        Some("writer round-trip changed the packet list".to_string())
                    } else {
                        None
                    }
                }
            };
            Outcome {
                fingerprint: fp.finish(),
                violation,
            }
        }
    }
}

fn run_analyze(input: &[u8], base: Option<&AnalyzeBase>) -> Outcome {
    let mut fp = Fnv64::new();
    fp.push(b'a');
    let Some((&tag, body)) = input.split_first() else {
        return Outcome {
            fingerprint: fp.finish(),
            violation: None,
        };
    };
    match read_pcapng(body) {
        Err(e) => {
            fp.push(b'e');
            fp.write(format!("{e:?}").as_bytes());
            let violation = (tag == 1 && base.is_some()).then(|| {
                format!("neutral capture mutation no longer parses: {e:?}")
            });
            Outcome {
                fingerprint: fp.finish(),
                violation,
            }
        }
        Ok(file) => {
            let wa = analyze(&file, SERVER_PORT);
            fp.push(wa.connections.len() as u8);
            fp.push(len_bucket(wa.unparsed as usize));
            fp.push(len_bucket(wa.pings as usize));
            for conn in &wa.connections {
                fp.push(conn.subflows.len() as u8);
                fp.push(len_bucket(conn.delivered_bytes as usize));
            }
            let mut violation = None;
            for (i, conn) in wa.connections.iter().enumerate() {
                let share = conn.cellular_share();
                if !(0.0..=1.0).contains(&share) {
                    violation = Some(format!(
                        "connection {i} cellular share {share} outside [0, 1]"
                    ));
                }
            }
            if violation.is_none() && tag == 1 {
                if let Some(b) = base {
                    let report = crosscheck(&b.measurement, &wa, &Tolerances::default());
                    if !report.pass() {
                        violation = Some(format!(
                            "neutral capture mutation broke the cross-check: {}",
                            report.failures.join("; ")
                        ));
                    }
                }
            }
            Outcome {
                fingerprint: fp.finish(),
                violation,
            }
        }
    }
}

/// Byte-stream reader for assembler op programs; reads past the end are
/// zero-filled so truncating mutations still yield runnable programs.
struct Program<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Program<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Program { buf, at: 0 }
    }

    fn done(&self) -> bool {
        self.at >= self.buf.len()
    }

    fn u8(&mut self) -> u8 {
        let b = self.buf.get(self.at).copied().unwrap_or(0);
        self.at += 1;
        b
    }

    fn u16(&mut self) -> u16 {
        u16::from_be_bytes([self.u8(), self.u8()])
    }

    fn u64(&mut self) -> u64 {
        let mut bytes = [0u8; 8];
        for b in &mut bytes {
            *b = self.u8();
        }
        u64::from_be_bytes(bytes)
    }
}

fn payload_for(offset: u64, len: usize) -> Bytes {
    // Position-determined content, like a real byte stream.
    Bytes::from(
        (0..len)
            .map(|i| offset.wrapping_add(i as u64) as u8)
            .collect::<Vec<u8>>(),
    )
}

fn run_assembler(input: &[u8]) -> Outcome {
    let mut fp = Fnv64::new();
    fp.push(b's');
    let mut prog = Program::new(input);
    let mut asm = Assembler::new(0, true);
    let mut inserted = 0u64;
    let mut popped = 0u64;
    let mut step = 0u64;
    let mut violation = None;
    while !prog.done() && step < 512 && violation.is_none() {
        step += 1;
        let now = SimTime::from_nanos(step * 1_000);
        let op = prog.u8() % 5;
        fp.push(op);
        match op {
            // Absolute insert anywhere in the 64-bit stream space.
            0 => {
                let offset = prog.u64();
                let len = (prog.u16() % 1500) as usize;
                inserted += len as u64;
                let accepted = asm.insert(offset, payload_for(offset, len), now);
                fp.push((accepted > 0) as u8);
            }
            // Insert just ahead of the in-order point (creates holes).
            1 => {
                let delta = (prog.u16() % 4096) as u64;
                let len = (prog.u16() % 1500) as usize;
                let offset = asm.next_expected().saturating_add(delta);
                inserted += len as u64;
                let accepted = asm.insert(offset, payload_for(offset, len), now);
                fp.push((accepted > 0) as u8);
            }
            // Hostile insert at the top of the sequence space — the corner
            // where the unchecked `offset + len` overflow lived.
            2 => {
                let offset = u64::MAX - u64::from(prog.u8());
                let len = 1 + (prog.u8() % 64) as usize;
                inserted += len as u64;
                let accepted = asm.insert(offset, payload_for(offset, len), now);
                fp.push((accepted > 0) as u8);
            }
            // Drain ready data.
            3 => {
                while let Some((_, data)) = asm.pop_ready() {
                    popped += data.len() as u64;
                }
            }
            // Overlapping rewind insert at/below the in-order point.
            _ => {
                let back = u64::from(prog.u8() % 64);
                let len = (prog.u16() % 256) as usize;
                let offset = asm.next_expected().saturating_sub(back);
                inserted += len as u64;
                let accepted = asm.insert(offset, payload_for(offset, len), now);
                fp.push((accepted > 0) as u8);
            }
        }
        if let Err(e) = asm.validate() {
            violation = Some(format!("assembler invariant broken after op {op}: {e}"));
        }
    }
    fp.write_u64(asm.next_expected());
    fp.push(len_bucket(asm.out_of_order_bytes()));
    if violation.is_none() && asm.accepted_bytes() + asm.duplicate_bytes() != inserted {
        violation = Some(format!(
            "byte conservation violated: inserted {inserted} != accepted {} + duplicate {}",
            asm.accepted_bytes(),
            asm.duplicate_bytes()
        ));
    }
    if violation.is_none() && popped > asm.accepted_bytes() {
        violation = Some(format!(
            "popped {popped} bytes exceeds accepted {}",
            asm.accepted_bytes()
        ));
    }
    Outcome {
        fingerprint: fp.finish(),
        violation,
    }
}

/// Compile-expansion budget for the scenario target: validation caps each
/// ramp at `mpw_scenario::MAX_STEPS` ops, but a file with many maximal
/// ramps could still ask for a huge timeline, so the compile oracle is
/// skipped (not failed) past this total.
const SCENARIO_COMPILE_BUDGET: u64 = 100_000;

fn scenario_action_code(action: &mpw_scenario::Action) -> u8 {
    use mpw_scenario::Action;
    match action {
        Action::SetRate { .. } => 0,
        Action::RampRate { .. } => 1,
        Action::SetDelay { .. } => 2,
        Action::RampDelay { .. } => 3,
        Action::SetLoss { .. } => 4,
        Action::LossBurst { .. } => 5,
        Action::LinkDown => 6,
        Action::LinkUp => 7,
        Action::WifiFade { .. } => 8,
        Action::RrcIdle => 9,
        Action::BgSurge { .. } => 10,
        Action::SetBackup { .. } => 11,
    }
}

fn run_scenario(input: &[u8]) -> Outcome {
    let mut fp = Fnv64::new();
    fp.push(b'n');
    let text = String::from_utf8_lossy(input);
    // The raw TOML grammar must be total over every input, including ones
    // the format sniffer routes to JSON (panics land in `execute`'s trap).
    fp.push(mpw_scenario::parse::toml_to_value(&text).is_ok() as u8);
    let parsed = match mpw_scenario::from_str(&text) {
        Err(e) => {
            fp.push(b'e');
            // Fingerprint the error *site*, not its exact text: line
            // numbers and backtick-quoted input fragments would otherwise
            // mint a fresh decode-path fingerprint for nearly every mutant
            // and drown the corpus in junk parents.
            let (tag, msg) = match &e {
                mpw_scenario::ScenarioError::Syntax { msg, .. } => (b's', msg.as_str()),
                mpw_scenario::ScenarioError::Shape(msg) => (b'h', msg.as_str()),
                _ => (b'o', ""),
            };
            fp.push(tag);
            let head = msg.split('`').next().unwrap_or("");
            fp.write(&head.as_bytes()[..head.len().min(32)]);
            return Outcome {
                fingerprint: fp.finish(),
                violation: None,
            };
        }
        Ok(s) => s,
    };
    fp.push(b'k');
    fp.push(len_bucket(parsed.name.len()));
    fp.push(len_bucket(parsed.events.len()));
    for ev in &parsed.events {
        fp.push(scenario_action_code(&ev.action));
        fp.push(match ev.dir {
            mpw_scenario::Direction::Uplink => 0,
            mpw_scenario::Direction::Downlink => 1,
            mpw_scenario::Direction::Both => 2,
        });
        fp.push(ev.label.is_some() as u8);
    }
    // Serialize→reparse fixpoint: canonical JSON of any parsed scenario
    // must parse back to an equal value. This is what makes JSON and the
    // TOML subset interchangeable spellings of the same model — a TOML
    // scenario that survives parsing but breaks here would silently change
    // meaning when re-saved as JSON.
    let json = mpw_scenario::to_json(&parsed);
    let mut violation = match mpw_scenario::from_json(&json) {
        Err(e) => Some(format!(
            "serialize→reparse broke: canonical JSON failed with {e:?}"
        )),
        Ok(again) if again != parsed => Some(format!(
            "serialize→reparse fixpoint violated: {parsed:?} re-parsed as {again:?}"
        )),
        Ok(_) => None,
    };
    // Compile oracle: a scenario the validator accepts must compile, and
    // the timeline must be sorted by time (the driver pops it in order).
    let expansion: u64 = parsed
        .events
        .iter()
        .map(|ev| match ev.action {
            mpw_scenario::Action::RampRate { steps, .. }
            | mpw_scenario::Action::RampDelay { steps, .. }
            | mpw_scenario::Action::WifiFade { steps, .. } => u64::from(steps),
            _ => 1,
        })
        .sum();
    if violation.is_none() && expansion <= SCENARIO_COMPILE_BUDGET {
        match mpw_scenario::compile(&parsed) {
            Err(_) => fp.push(b'i'), // semantically invalid: its own path
            Ok(timeline) => {
                fp.push(len_bucket(timeline.ops.len()));
                if parsed.validate().is_err() {
                    violation =
                        Some("compile accepted a scenario that validate() rejects".to_string());
                } else if timeline.ops.windows(2).any(|w| w[0].at > w[1].at) {
                    violation = Some("compiled timeline is not sorted by time".to_string());
                }
            }
        }
    }
    Outcome {
        fingerprint: fp.finish(),
        violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_seeds_pass_the_oracles() {
        let mut rng = Rng::new(7);
        for _ in 0..100 {
            let s = generate::wire_seed(&mut rng);
            let o = execute(TargetKind::Wire, &s, None);
            assert_eq!(o.violation, None, "seed violated wire oracles");
        }
    }

    #[test]
    fn pcapng_seeds_pass_the_oracles() {
        let mut rng = Rng::new(8);
        for _ in 0..30 {
            let s = generate::pcapng_seed(&mut rng);
            let o = execute(TargetKind::Pcapng, &s, None);
            assert_eq!(o.violation, None, "seed violated pcapng oracles");
        }
    }

    #[test]
    fn assembler_programs_hold_their_invariants() {
        let mut rng = Rng::new(9);
        for _ in 0..200 {
            let s = generate::assembler_seed(&mut rng);
            let o = execute(TargetKind::Assembler, &s, None);
            assert_eq!(o.violation, None, "program violated assembler oracles");
        }
    }

    #[test]
    fn hostile_high_offset_program_is_handled() {
        // Op 2 with max back-offset: insert at u64::MAX - 255.
        let prog = [2u8, 0xff, 0xff, 2, 0x00, 0x05];
        let o = execute(TargetKind::Assembler, &prog, None);
        assert_eq!(o.violation, None);
    }

    #[test]
    fn scenario_seeds_pass_the_oracles() {
        let mut rng = Rng::new(12);
        for _ in 0..100 {
            let s = generate::scenario_seed(&mut rng);
            let o = execute(TargetKind::Scenario, &s, None);
            assert_eq!(o.violation, None, "seed violated scenario oracles");
        }
    }

    #[test]
    fn hostile_text_never_violates_scenario() {
        let mut rng = Rng::new(13);
        for _ in 0..300 {
            let n = rng.below(80);
            let junk: Vec<u8> = (0..n).map(|_| rng.byte()).collect();
            let o = execute(TargetKind::Scenario, &junk, None);
            assert_eq!(o.violation, None);
        }
    }

    #[test]
    fn oversized_ramps_skip_the_compile_oracle_without_blowing_up() {
        // 20 maximal ramps ask for 200k compiled ops — over the budget, so
        // the target must return (quickly, allocation-free) with no
        // violation rather than materialize the timeline.
        let mut events = String::new();
        for _ in 0..20 {
            events.push_str(
                "{\"at_ms\":0,\"action\":{\"RampRate\":{\"from_bps\":1,\
                 \"to_bps\":2,\"over_ms\":10,\"steps\":10000}}},",
            );
        }
        events.pop();
        let text = format!("{{\"name\":\"big\",\"events\":[{events}]}}");
        let o = execute(TargetKind::Scenario, text.as_bytes(), None);
        assert_eq!(o.violation, None);
    }

    #[test]
    fn truncated_garbage_never_violates_wire() {
        let mut rng = Rng::new(10);
        for _ in 0..300 {
            let n = rng.below(60);
            let junk: Vec<u8> = (0..n).map(|_| rng.byte()).collect();
            let o = execute(TargetKind::Wire, &junk, None);
            assert_eq!(o.violation, None);
        }
    }

    #[test]
    fn fingerprints_separate_decode_paths() {
        let ok = generate::wire_seed(&mut Rng::new(11));
        let short = &ok[..8];
        let a = execute(TargetKind::Wire, &ok, None).fingerprint;
        let b = execute(TargetKind::Wire, short, None).fingerprint;
        assert_ne!(a, b);
    }
}

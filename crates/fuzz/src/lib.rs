//! mpw-fuzz: a deterministic, structure-aware fuzzing engine for the
//! mpwild byte-facing surfaces (DESIGN.md §5.9).
//!
//! The stack's parsers are the trust boundary of the whole reproduction:
//! every simulated packet really is serialized and re-parsed, every capture
//! really is written and read back. This crate attacks those surfaces the
//! way the paper's middleboxes did — with mangled, truncated, and spliced
//! bytes — but deterministically and offline:
//!
//! * no libFuzzer, no sanitizer instrumentation, no network, no OS entropy:
//!   a campaign is a pure function of `(target, seed, iters)`;
//! * mutation is structure-aware (MPTCP option skeletons, pcapng block
//!   headers, boundary sequence numbers) and seeds are generated through
//!   the encoders under test, so mutants reach the deep decode paths;
//! * coverage is approximated by structural decode-path fingerprints
//!   ([`cover`]), which gate corpus growth;
//! * oracles are differential and totality-based ([`targets`]): parse
//!   totality, decode→encode→decode fixpoints, writer round-trips, the
//!   PR 2 capture/stack cross-check, and the PR 3 reassembly invariants;
//! * findings are shrunk by a greedy minimizer ([`minimize`]) and stored
//!   content-addressed ([`corpus`]) under `tests/fuzz-corpus/`, which
//!   `cargo test` replays as plain unit tests forever after.
//!
//! The static half of the same story is the `panic` lint wall in
//! `mpw-check` (`lint_engine`), which forbids panicking byte access in the
//! designated parser modules and walks the call graph for panics reachable
//! from the protocol entry points; this crate is the dynamic half that
//! proves the surviving code is actually total.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checksum_repair;
pub mod corpus;
pub mod cover;
pub mod dict;
pub mod engine;
pub mod generate;
pub mod minimize;
pub mod mutate;
pub mod rng;
pub mod targets;

pub use engine::{quiet_panics, run, EngineConfig, Finding, FuzzReport};
pub use targets::{analyze_base, execute, AnalyzeBase, Outcome, TargetKind};

//! Structural coverage proxy.
//!
//! The engine has no compiler instrumentation (no libFuzzer, no
//! sanitizer-coverage); instead each target folds the *shape* of its decode
//! into a 64-bit FNV-1a fingerprint — which error variant fired, which
//! option kinds and subtypes were taken, bucketed lengths and counts. Two
//! inputs that exercise the same decode path collapse to one fingerprint;
//! an input that reaches a new path mints a new one and earns a place in
//! the live corpus. This is far coarser than edge coverage but is fully
//! deterministic, costs nothing to compute, and in practice drives the
//! mutators through every branch of the hand-written parsers.

/// Incremental 64-bit FNV-1a hasher.
#[derive(Clone, Debug)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }

    /// Fold one byte.
    pub fn push(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }

    /// Fold a byte slice.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.push(b);
        }
    }

    /// Fold a 64-bit value (big-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_be_bytes());
    }

    /// Final digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot hash of a byte slice (used for corpus file names).
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Logarithmic length bucket: inputs whose lengths differ only within a
/// power-of-two band count as the same shape.
pub fn len_bucket(n: usize) -> u8 {
    match n {
        0 => 0,
        n => (usize::BITS - n.leading_zeros()) as u8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Well-known FNV-1a 64 digests.
        assert_eq!(hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_bytes(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn buckets_are_logarithmic() {
        assert_eq!(len_bucket(0), 0);
        assert_eq!(len_bucket(1), 1);
        assert_eq!(len_bucket(2), 2);
        assert_eq!(len_bucket(3), 2);
        assert_eq!(len_bucket(4), 3);
        assert_eq!(len_bucket(1500), 11);
    }
}

//! Wire checksum repair for mutants.
//!
//! `parse_packet` verifies the RFC 1071 checksums of both the network
//! header and the TCP segment before touching the option bytes, so a
//! mutant with a stale checksum dies at the door and the option parser is
//! never exercised. After mutating a wire input, the engine (usually)
//! recomputes both checksums in place so the mutation's *structural*
//! damage — mangled option lengths, hostile sequence numbers — is what the
//! parser actually sees. The repair is intentionally a second, independent
//! implementation of the checksum; agreeing with the stack's is part of
//! what the fuzzer checks.

/// RFC 1071 16-bit ones'-complement checksum.
fn rfc1071(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut i = 0;
    while i + 1 < data.len() {
        sum += u32::from(u16::from_be_bytes([data[i], data[i + 1]]));
        i += 2;
    }
    if i < data.len() {
        sum += u32::from(u16::from_be_bytes([data[i], 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Recompute the network-header checksum (and, for TCP payloads, the
/// segment checksum) of a mutated wire packet in place. Inputs too short
/// or structurally alien to locate the fields are left untouched.
pub fn fix_wire_checksums(data: &mut [u8]) {
    const IP_HEADER_LEN: usize = 16;
    if data.len() < IP_HEADER_LEN {
        return;
    }
    // Network header checksum lives at bytes 12..14.
    data[12] = 0;
    data[13] = 0;
    let ip_sum = rfc1071(&data[..IP_HEADER_LEN]);
    data[12..14].copy_from_slice(&ip_sum.to_be_bytes());
    // TCP checksum at offset 16 within the segment, over declared length.
    let protocol = data[0] & 0x0f;
    if protocol != 6 {
        return;
    }
    let total = u16::from_be_bytes([data[2], data[3]]) as usize;
    if total < IP_HEADER_LEN + 20 || total > data.len() {
        return;
    }
    let tcp = &mut data[IP_HEADER_LEN..total];
    tcp[16] = 0;
    tcp[17] = 0;
    let tcp_sum = rfc1071(tcp);
    tcp[16..18].copy_from_slice(&tcp_sum.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::rng::Rng;

    #[test]
    fn repaired_mutants_parse_past_the_checksum() {
        let mut rng = Rng::new(21);
        let mut repaired_ok = 0;
        for _ in 0..200 {
            let mut bytes = generate::wire_seed(&mut rng);
            // Corrupt one non-checksum payload byte, then repair.
            if bytes.len() > 40 {
                let i = 20 + rng.below(bytes.len() - 20);
                bytes[i] ^= 0x10;
            }
            fix_wire_checksums(&mut bytes);
            match mpw_tcp::wire::parse_any(&bytes) {
                Ok(_) => repaired_ok += 1,
                // Structural damage may yield BadOption etc., but never a
                // checksum failure after repair.
                Err(e) => assert_ne!(e, mpw_tcp::wire::WireError::BadChecksum),
            }
        }
        assert!(repaired_ok > 100, "repair rarely worked: {repaired_ok}/200");
    }

    #[test]
    fn repair_agrees_with_the_stack_checksum_on_pristine_packets() {
        let mut rng = Rng::new(22);
        for _ in 0..100 {
            let bytes = generate::wire_seed(&mut rng);
            let mut repaired = bytes.clone();
            fix_wire_checksums(&mut repaired);
            assert_eq!(repaired, bytes, "repair changed a valid packet");
        }
    }
}

//! Structured seed generators.
//!
//! Mutation-based fuzzing is only as good as its starting corpus, so seeds
//! are generated *through the encoders under test*: random-but-valid TCP
//! segments with every option the stack implements (via
//! `mpw_tcp::wire::encode_packet`), valid pcapng files (via
//! `mpw_capture::PcapWriter`), and random op programs for the reassembly
//! target. Every mutant is then at most a few havoc steps away from a
//! well-formed input, which is what drives the deep option/block paths.

use bytes::Bytes;
use mpw_sim::SimTime;
use mpw_tcp::seq::SeqNum;
use mpw_tcp::wire::{
    encode_packet, encode_ping, Addr, DssMapping, IpHeader, MptcpOption, PingPacket, SackBlocks,
    TcpOption, TcpSegment, PROTO_PING, PROTO_TCP,
};

use crate::rng::Rng;

fn random_mptcp_option(rng: &mut Rng) -> (TcpOption, usize) {
    match rng.below(7) {
        0 => (
            TcpOption::Mptcp(MptcpOption::Capable {
                key_local: rng.next_u64(),
                key_remote: None,
            }),
            12,
        ),
        1 => (
            TcpOption::Mptcp(MptcpOption::Capable {
                key_local: rng.next_u64(),
                key_remote: Some(rng.next_u64()),
            }),
            20,
        ),
        2 => (
            TcpOption::Mptcp(MptcpOption::Join {
                token: rng.next_u64() as u32,
                nonce: rng.next_u64() as u32,
                backup: rng.chance(1, 2),
            }),
            12,
        ),
        3 => {
            let data_ack = rng.chance(1, 2).then(|| rng.next_u64());
            let mapping = rng.chance(2, 3).then(|| DssMapping {
                // Bias toward the top of the sequence space now and then:
                // that corner is where the overflow bugs lived.
                dseq: if rng.chance(1, 8) {
                    u64::MAX - rng.below(4096) as u64
                } else {
                    rng.next_u64() >> rng.below(40)
                },
                subflow_seq: SeqNum(rng.next_u64() as u32),
                len: rng.below(3000) as u16,
            });
            let len = 4 + if data_ack.is_some() { 8 } else { 0 } + if mapping.is_some() { 14 } else { 0 };
            (
                TcpOption::Mptcp(MptcpOption::Dss {
                    data_ack,
                    mapping,
                    data_fin: rng.chance(1, 4),
                }),
                len,
            )
        }
        4 => (
            TcpOption::Mptcp(MptcpOption::AddAddr {
                addr_id: rng.byte(),
                addr: Addr(rng.next_u64() as u32),
                port: rng.next_u64() as u16,
            }),
            10,
        ),
        5 => (
            TcpOption::Mptcp(MptcpOption::Prio {
                backup: rng.chance(1, 2),
            }),
            4,
        ),
        _ => (TcpOption::Mss(536 + rng.below(9000) as u16), 4),
    }
}

fn random_plain_option(rng: &mut Rng) -> (TcpOption, usize) {
    match rng.below(4) {
        0 => (TcpOption::Mss(536 + rng.below(9000) as u16), 4),
        1 => (TcpOption::WindowScale(rng.below(15) as u8), 3),
        2 => (TcpOption::SackPermitted, 2),
        _ => {
            let n = 1 + rng.below(3);
            let blocks: SackBlocks = (0..n)
                .map(|_| {
                    let lo = rng.next_u64() as u32;
                    (SeqNum(lo), SeqNum(lo.wrapping_add(rng.below(60000) as u32)))
                })
                .collect();
            let len = 2 + 8 * n;
            (TcpOption::Sack(blocks), len)
        }
    }
}

/// A valid wire packet: usually a TCP segment with random flags, options
/// and payload, occasionally a ping probe.
pub fn wire_seed(rng: &mut Rng) -> Vec<u8> {
    let ip = IpHeader {
        src: Addr(rng.next_u64() as u32),
        dst: Addr(rng.next_u64() as u32),
        protocol: PROTO_TCP,
        ttl: 1 + rng.below(255) as u8,
    };
    if rng.chance(1, 10) {
        let ping = PingPacket {
            token: rng.next_u64(),
            reply: rng.chance(1, 2),
        };
        let ip = IpHeader {
            protocol: PROTO_PING,
            ..ip
        };
        return encode_ping(&ip, &ping).to_vec();
    }
    let mut seg = TcpSegment::bare(
        rng.next_u64() as u16,
        rng.next_u64() as u16,
        SeqNum(rng.next_u64() as u32),
        SeqNum(rng.next_u64() as u32),
        (rng.next_u64() as u8) & 0x1f,
    );
    seg.window = rng.next_u64() as u16;
    // Pack options while they fit the 40-byte TCP option budget.
    let mut budget = 40usize;
    for _ in 0..rng.below(4) {
        let (opt, size) = if rng.chance(2, 3) {
            random_mptcp_option(rng)
        } else {
            random_plain_option(rng)
        };
        if size <= budget {
            budget -= size;
            seg.options.push(opt);
        }
    }
    let payload_len = match rng.below(4) {
        0 => 0,
        1 => 1 + rng.below(16),
        2 => rng.below(200),
        _ => rng.below(1460),
    };
    let payload: Vec<u8> = (0..payload_len).map(|i| (i as u8).wrapping_mul(31)).collect();
    seg.payload = Bytes::from(payload);
    encode_packet(&ip, &seg).to_vec()
}

/// A valid pcapng file: a few interfaces named like real capture vantages,
/// carrying wire packets, random frames, and optional comments.
pub fn pcapng_seed(rng: &mut Rng) -> Vec<u8> {
    let mut w = mpw_capture::PcapWriter::new();
    let n_ifaces = 1 + rng.below(3) as u32;
    for i in 0..n_ifaces {
        let dir = if rng.chance(1, 2) { "down" } else { "up" };
        let side = if rng.chance(1, 2) { "client" } else { "server" };
        w.add_interface(&format!("path{i}:{dir}@{side}"));
    }
    let mut at = 0u64;
    for _ in 0..rng.below(8) {
        at += rng.below(5_000_000) as u64;
        let iface = rng.below(n_ifaces as usize) as u32;
        let data = match rng.below(3) {
            0 => wire_seed(rng),
            1 => (0..rng.below(80)).map(|_| rng.byte()).collect(),
            _ => Vec::new(),
        };
        let comment = rng
            .chance(1, 4)
            .then(|| format!("dropped: reason{}", rng.below(5)));
        w.packet(iface, SimTime::from_nanos(at), &data, comment.as_deref());
    }
    w.into_bytes()
}

/// A random op program for the reassembly target (decoded by
/// `targets::run_assembler`).
pub fn assembler_seed(rng: &mut Rng) -> Vec<u8> {
    (0..8 + rng.below(48)).map(|_| rng.byte()).collect()
}

fn random_scenario_action(rng: &mut Rng) -> mpw_scenario::Action {
    use mpw_scenario::Action;
    let bps = |rng: &mut Rng| 1 + rng.below(50_000_000) as u64;
    // Loss means stay below the 0.25 bursty/burst bound so most seeds also
    // validate (the oracles still accept invalid-but-parsed scenarios).
    let loss = |rng: &mut Rng| rng.below(249) as f64 / 1000.0;
    match rng.below(12) {
        0 => Action::SetRate { bits_per_sec: bps(rng) },
        1 => Action::RampRate {
            from_bps: bps(rng),
            to_bps: bps(rng),
            over_ms: rng.below(20_000) as u64,
            steps: 1 + rng.below(8) as u32,
        },
        2 => Action::SetDelay { delay_us: rng.below(400_000) as u64 },
        3 => Action::RampDelay {
            from_us: rng.below(400_000) as u64,
            to_us: rng.below(400_000) as u64,
            over_ms: rng.below(20_000) as u64,
            steps: 1 + rng.below(8) as u32,
        },
        4 => Action::SetLoss { mean_loss: loss(rng), bursty: rng.chance(1, 2) },
        5 => Action::LossBurst {
            mean_loss: loss(rng),
            for_ms: 1 + rng.below(10_000) as u64,
            settle_loss: loss(rng),
        },
        6 => Action::LinkDown,
        7 => Action::LinkUp,
        8 => {
            let (a, b) = (bps(rng), bps(rng));
            Action::WifiFade {
                from_bps: a.max(b),
                floor_bps: a.min(b),
                over_ms: rng.below(5_000) as u64,
                steps: 1 + rng.below(8) as u32,
                stay_up: rng.chance(1, 4),
            }
        }
        9 => Action::RrcIdle,
        10 => Action::BgSurge {
            bytes_per_sec: 1 + rng.below(3_000_000) as u64,
            for_ms: 1 + rng.below(10_000) as u64,
        },
        _ => Action::SetBackup { backup: rng.chance(1, 2) },
    }
}

fn random_scenario_event(rng: &mut Rng) -> mpw_scenario::TimedEvent {
    const LABELS: [&str; 4] = ["fade", "restored", "surge", "idle"];
    mpw_scenario::TimedEvent {
        at_ms: rng.below(600_000) as u64,
        path: rng.below(4),
        dir: match rng.below(3) {
            0 => mpw_scenario::Direction::Uplink,
            1 => mpw_scenario::Direction::Downlink,
            _ => mpw_scenario::Direction::Both,
        },
        label: rng
            .chance(1, 3)
            .then(|| LABELS[rng.below(LABELS.len())].to_string()),
        action: random_scenario_action(rng),
    }
}

/// Render a scenario in the hand-rolled TOML subset — unit actions as
/// strings, struct actions as inline tables — so TOML seeds exercise the
/// grammar the JSON path never touches. Floats use `{:?}` (shortest
/// round-trip form) so `0.0` keeps its dot and stays a float.
fn render_scenario_toml(s: &mpw_scenario::Scenario) -> String {
    use mpw_scenario::{Action, Direction};
    let action_toml = |a: &Action| -> String {
        match a {
            Action::SetRate { bits_per_sec } => {
                format!("{{ SetRate = {{ bits_per_sec = {bits_per_sec} }} }}")
            }
            Action::RampRate { from_bps, to_bps, over_ms, steps } => format!(
                "{{ RampRate = {{ from_bps = {from_bps}, to_bps = {to_bps}, \
                 over_ms = {over_ms}, steps = {steps} }} }}"
            ),
            Action::SetDelay { delay_us } => {
                format!("{{ SetDelay = {{ delay_us = {delay_us} }} }}")
            }
            Action::RampDelay { from_us, to_us, over_ms, steps } => format!(
                "{{ RampDelay = {{ from_us = {from_us}, to_us = {to_us}, \
                 over_ms = {over_ms}, steps = {steps} }} }}"
            ),
            Action::SetLoss { mean_loss, bursty } => format!(
                "{{ SetLoss = {{ mean_loss = {mean_loss:?}, bursty = {bursty} }} }}"
            ),
            Action::LossBurst { mean_loss, for_ms, settle_loss } => format!(
                "{{ LossBurst = {{ mean_loss = {mean_loss:?}, for_ms = {for_ms}, \
                 settle_loss = {settle_loss:?} }} }}"
            ),
            Action::LinkDown => "\"LinkDown\"".into(),
            Action::LinkUp => "\"LinkUp\"".into(),
            Action::WifiFade { from_bps, floor_bps, over_ms, steps, stay_up } => format!(
                "{{ WifiFade = {{ from_bps = {from_bps}, floor_bps = {floor_bps}, \
                 over_ms = {over_ms}, steps = {steps}, stay_up = {stay_up} }} }}"
            ),
            Action::RrcIdle => "\"RrcIdle\"".into(),
            Action::BgSurge { bytes_per_sec, for_ms } => format!(
                "{{ BgSurge = {{ bytes_per_sec = {bytes_per_sec}, for_ms = {for_ms} }} }}"
            ),
            Action::SetBackup { backup } => {
                format!("{{ SetBackup = {{ backup = {backup} }} }}")
            }
        }
    };
    let mut out = format!("name = \"{}\"\n", s.name);
    if !s.description.is_empty() {
        out.push_str(&format!("description = \"{}\"\n", s.description));
    }
    for ev in &s.events {
        out.push_str("\n[[events]]\n");
        out.push_str(&format!("at_ms = {}\n", ev.at_ms));
        out.push_str(&format!("path = {}\n", ev.path));
        if ev.dir != Direction::Both {
            out.push_str(&format!("dir = \"{:?}\"\n", ev.dir));
        }
        if let Some(label) = &ev.label {
            out.push_str(&format!("label = \"{label}\"\n"));
        }
        out.push_str(&format!("action = {}\n", action_toml(&ev.action)));
    }
    out
}

/// A valid scenario file: a random event list rendered as canonical JSON
/// (through `mpw_scenario::to_json`, the encoder under test) or, one time
/// in three, as the TOML subset.
pub fn scenario_seed(rng: &mut Rng) -> Vec<u8> {
    let scenario = mpw_scenario::Scenario {
        name: format!("seed-{}", rng.below(1_000_000)),
        description: if rng.chance(1, 3) {
            "generated mobility timeline".into()
        } else {
            String::new()
        },
        events: (0..rng.below(6)).map(|_| random_scenario_event(rng)).collect(),
    };
    if rng.chance(1, 3) {
        render_scenario_toml(&scenario).into_bytes()
    } else {
        mpw_scenario::to_json(&scenario).into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_seeds_parse_cleanly() {
        let mut rng = Rng::new(2);
        for _ in 0..200 {
            let bytes = wire_seed(&mut rng);
            mpw_tcp::wire::parse_any(&bytes).expect("generated packet must parse");
        }
    }

    #[test]
    fn pcapng_seeds_parse_cleanly() {
        let mut rng = Rng::new(3);
        for _ in 0..50 {
            let bytes = pcapng_seed(&mut rng);
            mpw_capture::read_pcapng(&bytes).expect("generated capture must parse");
        }
    }

    #[test]
    fn scenario_seeds_parse_cleanly_in_both_formats() {
        let mut rng = Rng::new(4);
        let (mut toml, mut json) = (0, 0);
        for _ in 0..100 {
            let bytes = scenario_seed(&mut rng);
            let text = String::from_utf8(bytes).expect("seeds are text");
            if text.trim_start().starts_with('{') {
                json += 1;
            } else {
                toml += 1;
            }
            mpw_scenario::from_str(&text).expect("generated scenario must parse");
        }
        assert!(toml > 0 && json > 0, "both formats must appear ({toml} toml, {json} json)");
    }

    #[test]
    fn toml_rendering_matches_the_json_model() {
        // The TOML renderer and `to_json` must describe the same scenario.
        let mut rng = Rng::new(5);
        for _ in 0..100 {
            let scenario = mpw_scenario::Scenario {
                name: "cross".into(),
                description: "check".into(),
                events: (0..1 + rng.below(5)).map(|_| random_scenario_event(&mut rng)).collect(),
            };
            let from_toml = mpw_scenario::from_str(&render_scenario_toml(&scenario))
                .expect("rendered TOML must parse");
            assert_eq!(from_toml, scenario);
        }
    }
}

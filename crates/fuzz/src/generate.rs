//! Structured seed generators.
//!
//! Mutation-based fuzzing is only as good as its starting corpus, so seeds
//! are generated *through the encoders under test*: random-but-valid TCP
//! segments with every option the stack implements (via
//! `mpw_tcp::wire::encode_packet`), valid pcapng files (via
//! `mpw_capture::PcapWriter`), and random op programs for the reassembly
//! target. Every mutant is then at most a few havoc steps away from a
//! well-formed input, which is what drives the deep option/block paths.

use bytes::Bytes;
use mpw_sim::SimTime;
use mpw_tcp::seq::SeqNum;
use mpw_tcp::wire::{
    encode_packet, encode_ping, Addr, DssMapping, IpHeader, MptcpOption, PingPacket, SackBlocks,
    TcpOption, TcpSegment, PROTO_PING, PROTO_TCP,
};

use crate::rng::Rng;

fn random_mptcp_option(rng: &mut Rng) -> (TcpOption, usize) {
    match rng.below(7) {
        0 => (
            TcpOption::Mptcp(MptcpOption::Capable {
                key_local: rng.next_u64(),
                key_remote: None,
            }),
            12,
        ),
        1 => (
            TcpOption::Mptcp(MptcpOption::Capable {
                key_local: rng.next_u64(),
                key_remote: Some(rng.next_u64()),
            }),
            20,
        ),
        2 => (
            TcpOption::Mptcp(MptcpOption::Join {
                token: rng.next_u64() as u32,
                nonce: rng.next_u64() as u32,
                backup: rng.chance(1, 2),
            }),
            12,
        ),
        3 => {
            let data_ack = rng.chance(1, 2).then(|| rng.next_u64());
            let mapping = rng.chance(2, 3).then(|| DssMapping {
                // Bias toward the top of the sequence space now and then:
                // that corner is where the overflow bugs lived.
                dseq: if rng.chance(1, 8) {
                    u64::MAX - rng.below(4096) as u64
                } else {
                    rng.next_u64() >> rng.below(40)
                },
                subflow_seq: SeqNum(rng.next_u64() as u32),
                len: rng.below(3000) as u16,
            });
            let len = 4 + if data_ack.is_some() { 8 } else { 0 } + if mapping.is_some() { 14 } else { 0 };
            (
                TcpOption::Mptcp(MptcpOption::Dss {
                    data_ack,
                    mapping,
                    data_fin: rng.chance(1, 4),
                }),
                len,
            )
        }
        4 => (
            TcpOption::Mptcp(MptcpOption::AddAddr {
                addr_id: rng.byte(),
                addr: Addr(rng.next_u64() as u32),
                port: rng.next_u64() as u16,
            }),
            10,
        ),
        5 => (
            TcpOption::Mptcp(MptcpOption::Prio {
                backup: rng.chance(1, 2),
            }),
            4,
        ),
        _ => (TcpOption::Mss(536 + rng.below(9000) as u16), 4),
    }
}

fn random_plain_option(rng: &mut Rng) -> (TcpOption, usize) {
    match rng.below(4) {
        0 => (TcpOption::Mss(536 + rng.below(9000) as u16), 4),
        1 => (TcpOption::WindowScale(rng.below(15) as u8), 3),
        2 => (TcpOption::SackPermitted, 2),
        _ => {
            let n = 1 + rng.below(3);
            let blocks: SackBlocks = (0..n)
                .map(|_| {
                    let lo = rng.next_u64() as u32;
                    (SeqNum(lo), SeqNum(lo.wrapping_add(rng.below(60000) as u32)))
                })
                .collect();
            let len = 2 + 8 * n;
            (TcpOption::Sack(blocks), len)
        }
    }
}

/// A valid wire packet: usually a TCP segment with random flags, options
/// and payload, occasionally a ping probe.
pub fn wire_seed(rng: &mut Rng) -> Vec<u8> {
    let ip = IpHeader {
        src: Addr(rng.next_u64() as u32),
        dst: Addr(rng.next_u64() as u32),
        protocol: PROTO_TCP,
        ttl: 1 + rng.below(255) as u8,
    };
    if rng.chance(1, 10) {
        let ping = PingPacket {
            token: rng.next_u64(),
            reply: rng.chance(1, 2),
        };
        let ip = IpHeader {
            protocol: PROTO_PING,
            ..ip
        };
        return encode_ping(&ip, &ping).to_vec();
    }
    let mut seg = TcpSegment::bare(
        rng.next_u64() as u16,
        rng.next_u64() as u16,
        SeqNum(rng.next_u64() as u32),
        SeqNum(rng.next_u64() as u32),
        (rng.next_u64() as u8) & 0x1f,
    );
    seg.window = rng.next_u64() as u16;
    // Pack options while they fit the 40-byte TCP option budget.
    let mut budget = 40usize;
    for _ in 0..rng.below(4) {
        let (opt, size) = if rng.chance(2, 3) {
            random_mptcp_option(rng)
        } else {
            random_plain_option(rng)
        };
        if size <= budget {
            budget -= size;
            seg.options.push(opt);
        }
    }
    let payload_len = match rng.below(4) {
        0 => 0,
        1 => 1 + rng.below(16),
        2 => rng.below(200),
        _ => rng.below(1460),
    };
    let payload: Vec<u8> = (0..payload_len).map(|i| (i as u8).wrapping_mul(31)).collect();
    seg.payload = Bytes::from(payload);
    encode_packet(&ip, &seg).to_vec()
}

/// A valid pcapng file: a few interfaces named like real capture vantages,
/// carrying wire packets, random frames, and optional comments.
pub fn pcapng_seed(rng: &mut Rng) -> Vec<u8> {
    let mut w = mpw_capture::PcapWriter::new();
    let n_ifaces = 1 + rng.below(3) as u32;
    for i in 0..n_ifaces {
        let dir = if rng.chance(1, 2) { "down" } else { "up" };
        let side = if rng.chance(1, 2) { "client" } else { "server" };
        w.add_interface(&format!("path{i}:{dir}@{side}"));
    }
    let mut at = 0u64;
    for _ in 0..rng.below(8) {
        at += rng.below(5_000_000) as u64;
        let iface = rng.below(n_ifaces as usize) as u32;
        let data = match rng.below(3) {
            0 => wire_seed(rng),
            1 => (0..rng.below(80)).map(|_| rng.byte()).collect(),
            _ => Vec::new(),
        };
        let comment = rng
            .chance(1, 4)
            .then(|| format!("dropped: reason{}", rng.below(5)));
        w.packet(iface, SimTime::from_nanos(at), &data, comment.as_deref());
    }
    w.into_bytes()
}

/// A random op program for the reassembly target (decoded by
/// `targets::run_assembler`).
pub fn assembler_seed(rng: &mut Rng) -> Vec<u8> {
    (0..8 + rng.below(48)).map(|_| rng.byte()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_seeds_parse_cleanly() {
        let mut rng = Rng::new(2);
        for _ in 0..200 {
            let bytes = wire_seed(&mut rng);
            mpw_tcp::wire::parse_any(&bytes).expect("generated packet must parse");
        }
    }

    #[test]
    fn pcapng_seeds_parse_cleanly() {
        let mut rng = Rng::new(3);
        for _ in 0..50 {
            let bytes = pcapng_seed(&mut rng);
            mpw_capture::read_pcapng(&bytes).expect("generated capture must parse");
        }
    }
}

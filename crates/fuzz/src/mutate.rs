//! Generic byte-level mutators.
//!
//! One call to [`mutate`] applies a short burst (1–8) of randomly chosen
//! operations: bit flips, interesting-byte overwrites, range deletion and
//! duplication, random insertion, dictionary token injection, truncation,
//! and two-parent splicing against the live corpus. Target-specific repair
//! (e.g. wire checksum fixup) happens afterwards in the target layer so
//! that mutants reach the deep parser paths instead of dying at the first
//! integrity check.

use crate::rng::Rng;

/// Bytes that tend to sit on decision boundaries.
const INTERESTING: &[u8] = &[0x00, 0x01, 0x02, 0x04, 0x0f, 0x10, 0x1e, 0x20, 0x7f, 0x80, 0xfe, 0xff];

/// Cap mutant growth so havoc runs cannot balloon the corpus.
const MAX_LEN: usize = 16 * 1024;

/// Produce one mutant of `base`, splicing against `corpus` and injecting
/// `tokens` from the target dictionary.
pub fn mutate(rng: &mut Rng, base: &[u8], corpus: &[Vec<u8>], tokens: &[&[u8]]) -> Vec<u8> {
    let mut out = base.to_vec();
    let ops = 1 + rng.below(8);
    for _ in 0..ops {
        apply_one(rng, &mut out, corpus, tokens);
    }
    out.truncate(MAX_LEN);
    out
}

fn apply_one(rng: &mut Rng, out: &mut Vec<u8>, corpus: &[Vec<u8>], tokens: &[&[u8]]) {
    match rng.below(10) {
        // Flip one bit.
        0 => {
            if !out.is_empty() {
                let i = rng.below(out.len());
                out[i] ^= 1 << rng.below(8);
            }
        }
        // Overwrite one byte with a random value.
        1 => {
            if !out.is_empty() {
                let i = rng.below(out.len());
                out[i] = rng.byte();
            }
        }
        // Overwrite one byte with an interesting value.
        2 => {
            if !out.is_empty() {
                let i = rng.below(out.len());
                out[i] = INTERESTING[rng.below(INTERESTING.len())];
            }
        }
        // Delete a short range.
        3 => {
            if !out.is_empty() {
                let i = rng.below(out.len());
                let n = 1 + rng.below(8).min(out.len() - i - 1);
                out.drain(i..i + n);
            }
        }
        // Duplicate a short range in place.
        4 => {
            if !out.is_empty() {
                let i = rng.below(out.len());
                let n = (1 + rng.below(8)).min(out.len() - i);
                let chunk: Vec<u8> = out[i..i + n].to_vec();
                let at = rng.below(out.len() + 1);
                out.splice(at..at, chunk);
            }
        }
        // Insert a few random bytes.
        5 => {
            let at = rng.below(out.len() + 1);
            let n = 1 + rng.below(6);
            let fresh: Vec<u8> = (0..n).map(|_| rng.byte()).collect();
            out.splice(at..at, fresh);
        }
        // Insert a dictionary token.
        6 => {
            if !tokens.is_empty() {
                let tok = tokens[rng.below(tokens.len())];
                let at = rng.below(out.len() + 1);
                out.splice(at..at, tok.iter().copied());
            }
        }
        // Overwrite with a dictionary token.
        7 => {
            if !tokens.is_empty() && !out.is_empty() {
                let tok = tokens[rng.below(tokens.len())];
                let at = rng.below(out.len());
                let n = tok.len().min(out.len() - at);
                out[at..at + n].copy_from_slice(&tok[..n]);
            }
        }
        // Truncate the tail.
        8 => {
            if !out.is_empty() {
                out.truncate(rng.below(out.len()));
            }
        }
        // Splice with another corpus entry: our head, their tail.
        _ => {
            if !corpus.is_empty() {
                let other = &corpus[rng.below(corpus.len())];
                if !other.is_empty() {
                    let head = rng.below(out.len() + 1);
                    let tail = rng.below(other.len());
                    out.truncate(head);
                    out.extend_from_slice(&other[tail..]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict;

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let base = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        let corpus = vec![vec![9u8; 16], vec![0u8; 4]];
        let a: Vec<Vec<u8>> = (0..20)
            .map(|i| mutate(&mut Rng::for_iteration(5, i), &base, &corpus, dict::WIRE_TOKENS))
            .collect();
        let b: Vec<Vec<u8>> = (0..20)
            .map(|i| mutate(&mut Rng::for_iteration(5, i), &base, &corpus, dict::WIRE_TOKENS))
            .collect();
        assert_eq!(a, b);
        // Mutants are not all identical to the base.
        assert!(a.iter().any(|m| m != &base));
    }

    #[test]
    fn mutants_respect_the_size_cap() {
        let base = vec![0xaau8; MAX_LEN - 1];
        let corpus = vec![base.clone()];
        let mut rng = Rng::new(99);
        for _ in 0..50 {
            let m = mutate(&mut rng, &base, &corpus, dict::GENERIC_TOKENS);
            assert!(m.len() <= MAX_LEN);
        }
    }
}

//! Greedy input minimizer.
//!
//! Once a violation is found, the raw mutant is usually dozens of havoc
//! steps away from readable. This pass shrinks it with bounded greedy
//! delta-debugging: repeatedly delete chunks (halving the chunk size down
//! to single bytes) while the input still violates *some* oracle, then
//! zero the surviving bytes one at a time. For the wire target each
//! candidate is also retried with repaired checksums, since deletion
//! almost always invalidates them. The result is what lands in
//! `tests/fuzz-corpus/` as a regression input.

use crate::checksum_repair::fix_wire_checksums;
use crate::targets::{execute, AnalyzeBase, TargetKind};

/// Maximum executions the minimizer may spend.
const BUDGET: u32 = 4096;

fn violates(kind: TargetKind, cand: &[u8], base: Option<&AnalyzeBase>, execs: &mut u32) -> bool {
    *execs += 1;
    execute(kind, cand, base).violation.is_some()
}

/// Shrink `input` while it keeps violating. Returns the smallest violating
/// input found within the execution budget (possibly `input` itself).
pub fn minimize(kind: TargetKind, input: &[u8], base: Option<&AnalyzeBase>) -> Vec<u8> {
    let mut best = input.to_vec();
    let mut execs = 0u32;
    // Chunk-deletion passes.
    let mut chunk = (best.len() / 2).max(1);
    while chunk >= 1 && execs < BUDGET {
        let mut i = 0;
        while i + chunk <= best.len() && execs < BUDGET {
            let mut cand: Vec<u8> = Vec::with_capacity(best.len() - chunk);
            cand.extend_from_slice(&best[..i]);
            cand.extend_from_slice(&best[i + chunk..]);
            if violates(kind, &cand, base, &mut execs) {
                best = cand;
                continue; // same i: the next chunk slid into place
            }
            if kind == TargetKind::Wire {
                let mut fixed = cand;
                fix_wire_checksums(&mut fixed);
                if violates(kind, &fixed, base, &mut execs) {
                    best = fixed;
                    continue;
                }
            }
            i += chunk;
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    // Byte-zeroing pass: make the surviving structure obvious.
    let mut i = 0;
    while i < best.len() && execs < BUDGET {
        if best[i] != 0 {
            let saved = best[i];
            best[i] = 0;
            let mut ok = violates(kind, &best, base, &mut execs);
            if !ok && kind == TargetKind::Wire {
                let mut fixed = best.clone();
                fix_wire_checksums(&mut fixed);
                if violates(kind, &fixed, base, &mut execs) {
                    best = fixed;
                    ok = true;
                }
            }
            if !ok {
                best[i] = saved;
            }
        }
        i += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizer_preserves_the_violation_and_shrinks() {
        // An assembler program violating nothing can't be tested here, so
        // synthesize a violating oracle via the assembler target is not
        // possible while the bugs are fixed. Exercise the mechanics on a
        // crafted "violation": popped > accepted can't happen either, so
        // drive the minimizer with an input that does NOT violate and
        // check it returns the input unchanged (the budget path).
        let input = vec![3u8; 64];
        let out = minimize(TargetKind::Assembler, &input, None);
        assert_eq!(out, input, "non-violating input must come back unchanged");
    }
}

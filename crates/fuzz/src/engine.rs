//! The fuzzing campaign loop.
//!
//! A campaign is a pure function of its [`EngineConfig`]: the structured
//! seeds, every mutation choice, and the corpus-evolution order all derive
//! from the configured seed through SplitMix64, and each iteration's
//! generator is keyed by `(seed, iteration index)` — so results are
//! byte-identical across reruns *and* invariant under shard chunking
//! (`shards` only changes how the iteration range is walked, not what any
//! iteration does). The loop stops at the first oracle violation; an input
//! that mints a previously unseen decode-path fingerprint joins the live
//! corpus and becomes a mutation parent.

use std::collections::BTreeSet;

use crate::minimize::minimize;
use crate::rng::Rng;
use crate::targets::{self, AnalyzeBase, TargetKind};

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Surface under test.
    pub target: TargetKind,
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Mutation iterations (seed executions come on top).
    pub iters: u64,
    /// Shard count — chunking only, results are invariant under it.
    pub shards: u32,
    /// Shrink the first violating input before reporting.
    pub minimize: bool,
    /// For the analyze target: run the reference measurement and enable
    /// the cross-check differential oracle.
    pub with_base: bool,
    /// Extra inputs (e.g. a loaded corpus) joined to the structured seeds.
    pub extra_seeds: Vec<Vec<u8>>,
}

impl EngineConfig {
    /// Conventional defaults for `target`.
    pub fn new(target: TargetKind) -> EngineConfig {
        EngineConfig {
            target,
            seed: 1,
            iters: 10_000,
            shards: 1,
            minimize: false,
            with_base: false,
            extra_seeds: Vec::new(),
        }
    }
}

/// The first oracle violation of a campaign.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Iteration that produced it (0 = a seed input).
    pub iter: u64,
    /// The violating input, verbatim.
    pub input: Vec<u8>,
    /// Greedily shrunk version, when minimization ran.
    pub minimized: Option<Vec<u8>>,
    /// The oracle's message.
    pub message: String,
}

/// Campaign result.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Total target executions (seeds + mutants + minimizer probes are
    /// excluded from the minimizer's own budget accounting).
    pub executions: u64,
    /// Distinct decode-path fingerprints observed.
    pub unique_fingerprints: usize,
    /// Final live corpus (seeds first, then coverage-novel mutants).
    pub corpus: Vec<Vec<u8>>,
    /// First violation, if any.
    pub finding: Option<Finding>,
}

/// Keep the corpus bounded: mutants beyond this count stop being retained
/// as parents (execution continues regardless).
const MAX_CORPUS: usize = 4096;

/// Install a quiet panic hook once: target panics are caught and reported
/// as violations, so the default hook's backtrace spew is pure noise.
pub fn quiet_panics() {
    std::panic::set_hook(Box::new(|_| {}));
}

/// Run one campaign.
pub fn run(cfg: &EngineConfig) -> FuzzReport {
    let base = (cfg.target == TargetKind::Analyze && cfg.with_base).then(targets::analyze_base);
    run_with_base(cfg, base.as_ref())
}

/// As [`run`], with a caller-provided analyze base (lets tests reuse one
/// expensive reference measurement across campaigns).
pub fn run_with_base(cfg: &EngineConfig, base: Option<&AnalyzeBase>) -> FuzzReport {
    let mut fingerprints: BTreeSet<u64> = BTreeSet::new();
    let mut corpus: Vec<Vec<u8>> = Vec::new();
    let mut executions = 0u64;

    // Structured seeds plus any caller-supplied corpus.
    let mut seed_rng = Rng::new(cfg.seed);
    let mut seeds = targets::seeds(cfg.target, &mut seed_rng, base);
    seeds.extend(cfg.extra_seeds.iter().cloned());
    for s in seeds {
        let o = targets::execute(cfg.target, &s, base);
        executions += 1;
        fingerprints.insert(o.fingerprint);
        if let Some(message) = o.violation {
            return finish(cfg, base, executions, fingerprints, corpus, 0, s, message);
        }
        if corpus.len() < MAX_CORPUS {
            corpus.push(s);
        }
    }

    // Mutation loop, walked shard by shard. Iteration behaviour is keyed
    // by the global index, so the shard boundaries are immaterial.
    let shards = cfg.shards.max(1) as u64;
    let per_shard = cfg.iters / shards;
    let remainder = cfg.iters % shards;
    let mut iter = 0u64;
    for shard in 0..shards {
        let this_shard = per_shard + u64::from(shard == shards - 1) * remainder;
        for _ in 0..this_shard {
            iter += 1;
            let mut rng = Rng::for_iteration(cfg.seed, iter);
            let pick = if corpus.is_empty() {
                Vec::new()
            } else {
                corpus[rng.below(corpus.len())].clone()
            };
            let mutant = targets::mutate_input(cfg.target, &mut rng, &pick, &corpus, base);
            let o = targets::execute(cfg.target, &mutant, base);
            executions += 1;
            if let Some(message) = o.violation {
                return finish(cfg, base, executions, fingerprints, corpus, iter, mutant, message);
            }
            if fingerprints.insert(o.fingerprint) && corpus.len() < MAX_CORPUS {
                corpus.push(mutant);
            }
        }
    }

    FuzzReport {
        executions,
        unique_fingerprints: fingerprints.len(),
        corpus,
        finding: None,
    }
}

#[allow(clippy::too_many_arguments)]
fn finish(
    cfg: &EngineConfig,
    base: Option<&AnalyzeBase>,
    executions: u64,
    fingerprints: BTreeSet<u64>,
    corpus: Vec<Vec<u8>>,
    iter: u64,
    input: Vec<u8>,
    message: String,
) -> FuzzReport {
    let minimized = cfg.minimize.then(|| minimize(cfg.target, &input, base));
    FuzzReport {
        executions,
        unique_fingerprints: fingerprints.len(),
        corpus,
        finding: Some(Finding {
            iter,
            input,
            minimized,
            message,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaigns_find_nothing_on_the_fixed_parsers() {
        for target in [TargetKind::Wire, TargetKind::Pcapng, TargetKind::Assembler] {
            let mut cfg = EngineConfig::new(target);
            cfg.seed = 5;
            cfg.iters = 400;
            let report = run(&cfg);
            assert!(
                report.finding.is_none(),
                "{}: unexpected finding: {:?}",
                target.name(),
                report.finding
            );
            assert!(report.unique_fingerprints > 4, "{}: coverage proxy flat", target.name());
            assert!(report.executions >= 400);
        }
    }
}

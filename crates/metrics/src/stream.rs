//! Streaming (constant-memory) distribution aggregates.
//!
//! Million-event campaigns (the 512 MB backlog runs of Figure 11, the
//! pooled per-packet RTT distributions of Figure 12) cannot afford to keep
//! every sample in a `Vec<f64>`: a single backlog transfer produces
//! hundreds of thousands of RTT observations per subflow. The types here
//! absorb samples one at a time in O(1) space:
//!
//! * [`StreamingStats`] — count / mean / M2 (Welford) plus min/max, with
//!   numerically stable pairwise merge (Chan et al.).
//! * [`P2Quantile`] — the P² single-quantile estimator of Jain & Chlamtac,
//!   five markers, no storage of the sample.
//! * [`LogHistogram`] — a fixed-budget log-bucketed histogram (16 buckets
//!   per octave) supporting mergeable quantiles, CDF/CCDF queries and the
//!   log-spaced series the CCDF figures plot.
//! * [`DistSummary`] — the composition used by the measurement harness:
//!   exact moments + histogram shape, serializable and mergeable.
//!
//! The exact-sample paths (`Vec<f64>` accumulation) remain available
//! behind the recording flags of the TCP/MPTCP layers for trace
//! cross-check tests; campaigns run with them off.

use serde::{Deserialize, Serialize};

use crate::stats::Summary;

/// Count / mean / M2 running moments (Welford), with min/max.
///
/// ```
/// use mpw_metrics::StreamingStats;
/// let mut s = StreamingStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] { s.push(x); }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamingStats {
    /// Sample count.
    pub n: u64,
    /// Running mean.
    pub mean: f64,
    /// Sum of squared deviations from the mean (Welford's M2).
    pub m2: f64,
    /// Minimum seen (0 when empty).
    pub min: f64,
    /// Maximum seen (0 when empty).
    pub max: f64,
}

impl StreamingStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        StreamingStats::default()
    }

    /// Absorb one sample (non-finite values are ignored).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.n == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Absorb another accumulator (Chan et al. parallel combination).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Sample count as usize.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Whether no sample has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n−1 denominator; 0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n > 1 {
            self.m2 / (self.n - 1) as f64
        } else {
            0.0
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Convert to the table-rendering [`Summary`] type.
    pub fn to_summary(&self) -> Summary {
        Summary {
            n: self.n as usize,
            mean: self.mean,
            std_dev: self.std_dev(),
            std_err: self.std_err(),
            min: self.min,
            max: self.max,
        }
    }
}

/// The P² (piecewise-parabolic) single-quantile estimator of Jain &
/// Chlamtac (1985): tracks one quantile with five markers and no sample
/// storage. Not mergeable — use [`LogHistogram`] when summaries must be
/// pooled across runs.
///
/// ```
/// use mpw_metrics::P2Quantile;
/// let mut p = P2Quantile::new(0.5);
/// for i in 1..=1001 { p.push(i as f64); }
/// assert!((p.value() - 501.0).abs() < 25.0);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (the middle one estimates the quantile).
    heights: Vec<f64>,
    /// Actual marker positions (1-based ranks).
    positions: Vec<f64>,
    /// Desired marker positions.
    desired: Vec<f64>,
    /// Desired-position increments per observation.
    increments: Vec<f64>,
    n: u64,
}

impl P2Quantile {
    /// Track the `q`-quantile (0 < q < 1).
    pub fn new(q: f64) -> Self {
        let q = q.clamp(1e-6, 1.0 - 1e-6);
        P2Quantile {
            q,
            heights: Vec::with_capacity(5),
            positions: vec![1.0, 2.0, 3.0, 4.0, 5.0],
            desired: vec![1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: vec![0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            n: 0,
        }
    }

    /// Samples absorbed.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Absorb one sample (non-finite values are ignored).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        if self.heights.len() < 5 {
            let pos = self.heights.partition_point(|&h| h <= x);
            self.heights.insert(pos, x);
            return;
        }
        // Find the cell k containing x and update extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // heights[k] <= x < heights[k+1]
            (1..4).rfind(|&i| self.heights[i] <= x).unwrap_or(0)
        };
        for p in &mut self.positions[k + 1..] {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }
        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let cand = parabolic(
                    &self.positions[i - 1..=i + 1],
                    &self.heights[i - 1..=i + 1],
                    d,
                );
                self.heights[i] = if self.heights[i - 1] < cand && cand < self.heights[i + 1] {
                    cand
                } else {
                    // Fall back to linear interpolation toward the neighbour.
                    let j = (i as f64 + d) as usize;
                    self.heights[i]
                        + d * (self.heights[j] - self.heights[i])
                            / (self.positions[j] - self.positions[i])
                };
                self.positions[i] += d;
            }
        }
    }

    /// Current quantile estimate (exact while fewer than five samples).
    pub fn value(&self) -> f64 {
        if self.heights.is_empty() {
            return 0.0;
        }
        if self.heights.len() < 5 || self.n < 5 {
            // Fewer than five samples: heights is the sorted sample itself.
            return crate::stats::quantile_sorted(&self.heights, self.q);
        }
        self.heights[2]
    }
}

/// Piecewise-parabolic marker adjustment (the "P²" formula).
fn parabolic(pos: &[f64], h: &[f64], d: f64) -> f64 {
    let (p0, p1, p2) = (pos[0], pos[1], pos[2]);
    let (h0, h1, h2) = (h[0], h[1], h[2]);
    h1 + d / (p2 - p0)
        * ((p1 - p0 + d) * (h2 - h1) / (p2 - p1) + (p2 - p1 - d) * (h1 - h0) / (p1 - p0))
}

/// Buckets per octave (relative bucket width 2^(1/16) ≈ 4.4%).
const SUB: u32 = 16;
/// Lowest finite bucket edge; values below land in the underflow bucket.
const LO_EDGE: f64 = 0.0078125; // 2^-7
/// Octaves covered; with LO_EDGE this spans ~0.008 .. 8.4e6 (2^23).
const OCTAVES: u32 = 30;
/// Finite bucket count (fixed memory budget: 480 × 8 B).
const BUCKETS: usize = (SUB * OCTAVES) as usize;

/// Fixed-budget log-bucketed histogram.
///
/// The layout is identical for every instance (16 log₂ sub-buckets per
/// octave over ~0.008–8.4e6), so histograms merge by element-wise count
/// addition — exactly what pooling per-run distributions into a per-figure
/// distribution needs. Quantiles interpolate geometrically inside a bucket
/// and are clamped to the exact observed min/max, giving ≤ ~2% relative
/// error at constant memory.
///
/// ```
/// use mpw_metrics::LogHistogram;
/// let mut h = LogHistogram::new();
/// for i in 1..=1000 { h.push(i as f64); }
/// let p50 = h.quantile(0.5);
/// assert!((p50 / 500.0 - 1.0).abs() < 0.05);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Finite bucket counts (fixed layout, see [`LogHistogram`]).
    counts: Vec<u64>,
    /// Samples below the lowest edge (incl. zeros and negatives).
    underflow: u64,
    /// Samples at or above the highest edge.
    overflow: u64,
    /// Total samples.
    n: u64,
    /// Exact smallest sample (0 when empty).
    min: f64,
    /// Exact largest sample (0 when empty).
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Empty histogram (the full bucket vector is allocated up front; the
    /// memory budget is fixed and independent of sample count).
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; BUCKETS],
            underflow: 0,
            overflow: 0,
            n: 0,
            min: 0.0,
            max: 0.0,
        }
    }

    /// Lower edge of finite bucket `i`.
    fn edge(i: usize) -> f64 {
        LO_EDGE * (i as f64 / SUB as f64).exp2()
    }

    /// Absorb one sample (non-finite values are ignored).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.n == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.n += 1;
        if x < LO_EDGE {
            self.underflow += 1;
        } else {
            let idx = ((x / LO_EDGE).log2() * SUB as f64).floor() as usize;
            if idx >= BUCKETS {
                self.overflow += 1;
            } else {
                self.counts[idx] += 1;
            }
        }
    }

    /// Merge another histogram (identical fixed layout by construction).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.n += other.n;
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Whether no sample has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Exact smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Exact largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Fraction of samples ≤ `x` (the empirical CDF), interpolating
    /// geometrically inside the straddling bucket.
    pub fn frac_le(&self, x: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        if x >= self.max {
            return 1.0;
        }
        if x < self.min {
            return 0.0;
        }
        let mut acc = 0.0;
        // Underflow samples all lie in [min, LO_EDGE).
        if x >= LO_EDGE {
            acc += self.underflow as f64;
        } else {
            // Interpolate linearly across the underflow span.
            let span = (LO_EDGE - self.min).max(f64::MIN_POSITIVE);
            let frac = ((x - self.min) / span).clamp(0.0, 1.0);
            return (self.underflow as f64 * frac) / self.n as f64;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let lo = Self::edge(i);
            let hi = Self::edge(i + 1);
            if hi <= x {
                acc += c as f64;
            } else if lo <= x {
                // Geometric (log-space) interpolation within the bucket.
                let frac = (x / lo).log2() * SUB as f64;
                acc += c as f64 * frac.clamp(0.0, 1.0);
                break;
            } else {
                break;
            }
        }
        // Overflow samples lie in [top_edge, max]; x < max was handled
        // above, so interpolate across that span.
        let top = Self::edge(BUCKETS);
        if x >= top && self.overflow > 0 {
            let span = (self.max - top).max(f64::MIN_POSITIVE);
            let frac = ((x - top) / span).clamp(0.0, 1.0);
            acc += self.overflow as f64 * frac;
        }
        (acc / self.n as f64).clamp(0.0, 1.0)
    }

    /// Fraction of samples > `x` (the empirical CCDF).
    pub fn frac_above(&self, x: f64) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            1.0 - self.frac_le(x)
        }
    }

    /// The q-quantile, interpolated within its bucket and clamped to the
    /// exact observed [min, max].
    pub fn quantile(&self, q: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.n as f64;
        let mut acc = self.underflow as f64;
        if target <= acc && self.underflow > 0 {
            // Within the underflow span [min, LO_EDGE).
            let frac = target / self.underflow as f64;
            return (self.min + (LO_EDGE.min(self.max) - self.min) * frac)
                .clamp(self.min, self.max);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if acc + c as f64 >= target {
                let frac = ((target - acc) / c as f64).clamp(0.0, 1.0);
                let lo = Self::edge(i);
                // Geometric interpolation: lo · 2^(frac/SUB).
                let v = lo * (frac / SUB as f64).exp2();
                return v.clamp(self.min, self.max);
            }
            acc += c as f64;
        }
        // Overflow span [top_edge, max].
        if self.overflow > 0 {
            let frac = ((target - acc) / self.overflow as f64).clamp(0.0, 1.0);
            let top = Self::edge(BUCKETS).max(self.min);
            return (top + (self.max - top) * frac).clamp(self.min, self.max);
        }
        self.max
    }

    /// `(x, P(X > x))` pairs at `points` log-spaced x values spanning the
    /// observed range — same contract as [`crate::Ccdf::log_series`].
    pub fn log_series(&self, points: usize, floor: f64) -> Vec<(f64, f64)> {
        if self.n == 0 || points == 0 {
            return Vec::new();
        }
        let lo = self.min.max(floor);
        let hi = self.max.max(lo * (1.0 + 1e-9));
        let (llo, lhi) = (lo.ln(), hi.ln());
        (0..points)
            .map(|i| {
                let x = (llo + (lhi - llo) * i as f64 / (points - 1).max(1) as f64).exp();
                (x, self.frac_above(x))
            })
            .collect()
    }
}

/// Streaming distribution summary: exact moments ([`StreamingStats`]) plus
/// histogram shape ([`LogHistogram`]). Constant memory, mergeable, and
/// serializable — the replacement for `Vec<f64>` sample accumulation in
/// measurement outputs.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DistSummary {
    /// Running moments (exact mean / variance / min / max).
    pub stats: StreamingStats,
    /// Log-bucketed shape (quantiles, CDF/CCDF queries).
    pub hist: LogHistogram,
}

impl DistSummary {
    /// Empty summary.
    pub fn new() -> Self {
        DistSummary::default()
    }

    /// Absorb one sample.
    pub fn push(&mut self, x: f64) {
        self.stats.push(x);
        self.hist.push(x);
    }

    /// Merge another summary.
    pub fn merge(&mut self, other: &DistSummary) {
        self.stats.merge(&other.stats);
        self.hist.merge(&other.hist);
    }

    /// Samples absorbed.
    pub fn count(&self) -> u64 {
        self.stats.n
    }

    /// Whether no sample has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.stats.n == 0
    }

    /// Exact running mean.
    pub fn mean(&self) -> f64 {
        self.stats.mean
    }

    /// Exact minimum.
    pub fn min(&self) -> f64 {
        self.stats.min
    }

    /// Exact maximum.
    pub fn max(&self) -> f64 {
        self.stats.max
    }

    /// Approximate q-quantile (≤ ~2% relative error, exact at the ends).
    pub fn quantile(&self, q: f64) -> f64 {
        self.hist.quantile(q)
    }

    /// Fraction of samples ≤ `x`.
    pub fn frac_le(&self, x: f64) -> f64 {
        self.hist.frac_le(x)
    }

    /// Fraction of samples > `x`.
    pub fn frac_above(&self, x: f64) -> f64 {
        self.hist.frac_above(x)
    }

    /// Log-spaced CCDF series (see [`LogHistogram::log_series`]).
    pub fn log_series(&self, points: usize, floor: f64) -> Vec<(f64, f64)> {
        self.hist.log_series(points, floor)
    }

    /// Convert the moments to the table-rendering [`Summary`].
    pub fn to_summary(&self) -> Summary {
        self.stats.to_summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed.max(1);
        move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[test]
    fn streaming_stats_match_batch_summary() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let batch = Summary::of(&xs);
        let mut s = StreamingStats::new();
        for &x in &xs {
            s.push(x);
        }
        let got = s.to_summary();
        assert_eq!(got.n, batch.n);
        assert!((got.mean - batch.mean).abs() < 1e-12);
        assert!((got.std_dev - batch.std_dev).abs() < 1e-12);
        assert!((got.std_err - batch.std_err).abs() < 1e-12);
        assert_eq!(got.min, batch.min);
        assert_eq!(got.max, batch.max);
    }

    #[test]
    fn streaming_stats_merge_equals_concat() {
        let mut rnd = lcg(7);
        let xs: Vec<f64> = (0..500).map(|_| rnd() * 100.0).collect();
        let (a, b) = xs.split_at(137);
        let mut sa = StreamingStats::new();
        let mut sb = StreamingStats::new();
        a.iter().for_each(|&x| sa.push(x));
        b.iter().for_each(|&x| sb.push(x));
        sa.merge(&sb);
        let mut whole = StreamingStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        assert_eq!(sa.n, whole.n);
        assert!((sa.mean - whole.mean).abs() < 1e-9);
        assert!((sa.std_dev() - whole.std_dev()).abs() < 1e-9);
        assert_eq!(sa.min, whole.min);
        assert_eq!(sa.max, whole.max);
    }

    #[test]
    fn streaming_stats_empty_and_single() {
        let mut s = StreamingStats::new();
        assert!(s.is_empty());
        assert_eq!(s.to_summary(), Summary::default());
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.std_dev(), 0.0);
        let mut t = StreamingStats::new();
        t.merge(&s);
        assert_eq!(t.mean(), 3.5);
        s.merge(&StreamingStats::new());
        assert_eq!(s.n, 1);
    }

    #[test]
    fn p2_estimates_uniform_median() {
        let mut rnd = lcg(42);
        let mut p = P2Quantile::new(0.5);
        for _ in 0..20_000 {
            p.push(rnd());
        }
        assert!((p.value() - 0.5).abs() < 0.02, "median {}", p.value());
    }

    #[test]
    fn p2_tracks_tail_quantile() {
        let mut rnd = lcg(3);
        let mut p = P2Quantile::new(0.95);
        for _ in 0..50_000 {
            // Exponential(1): p95 = ln(20) ≈ 2.996.
            let u = rnd().max(1e-12);
            p.push(-u.ln());
        }
        let expect = 20.0f64.ln();
        assert!(
            (p.value() / expect - 1.0).abs() < 0.1,
            "p95 {} expect {expect}",
            p.value()
        );
    }

    #[test]
    fn p2_exact_for_tiny_samples() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.value(), 0.0);
        p.push(10.0);
        assert_eq!(p.value(), 10.0);
        p.push(20.0);
        assert_eq!(p.value(), 15.0);
        p.push(f64::NAN);
        assert_eq!(p.count(), 2);
    }

    #[test]
    fn log_histogram_quantiles_close_to_exact() {
        let mut rnd = lcg(11);
        let xs: Vec<f64> = (0..10_000).map(|_| 1.0 + rnd() * 999.0).collect();
        let mut h = LogHistogram::new();
        xs.iter().for_each(|&x| h.push(x));
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = crate::stats::quantile_sorted(&sorted, q);
            let got = h.quantile(q);
            assert!(
                (got / exact - 1.0).abs() < 0.05,
                "q{q}: got {got} exact {exact}"
            );
        }
        assert_eq!(h.quantile(0.0), h.min());
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn log_histogram_frac_le_matches_ccdf() {
        let xs: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let mut h = LogHistogram::new();
        xs.iter().for_each(|&x| h.push(x));
        let c = crate::Ccdf::of(&xs);
        for x in [1.0, 10.0, 123.0, 500.0, 999.0, 1000.0, 2000.0] {
            let got = h.frac_above(x);
            let exact = c.at(x);
            assert!(
                (got - exact).abs() < 0.03,
                "x={x}: hist {got} exact {exact}"
            );
        }
        assert_eq!(h.frac_above(1000.0), 0.0);
        assert_eq!(h.frac_le(0.5), 0.0);
    }

    #[test]
    fn log_histogram_merge_equals_concat() {
        let mut rnd = lcg(5);
        let xs: Vec<f64> = (0..2000).map(|_| rnd() * 5000.0).collect();
        let (a, b) = xs.split_at(700);
        let mut ha = LogHistogram::new();
        let mut hb = LogHistogram::new();
        a.iter().for_each(|&x| ha.push(x));
        b.iter().for_each(|&x| hb.push(x));
        ha.merge(&hb);
        let mut whole = LogHistogram::new();
        xs.iter().for_each(|&x| whole.push(x));
        assert_eq!(ha, whole);
    }

    #[test]
    fn log_histogram_handles_zeros_and_extremes() {
        let mut h = LogHistogram::new();
        // Zeros (in-order OFO samples) land in the underflow bucket.
        for _ in 0..90 {
            h.push(0.0);
        }
        for _ in 0..10 {
            h.push(100.0);
        }
        assert_eq!(h.count(), 100);
        assert!((h.frac_le(0.5) - 0.9).abs() < 1e-9);
        assert!((h.frac_above(50.0) - 0.1).abs() < 0.01);
        assert!(h.quantile(0.5) < 0.01);
        assert_eq!(h.quantile(1.0), 100.0);
        // Beyond-range values go to overflow but keep exact max.
        let mut big = LogHistogram::new();
        big.push(1e9);
        big.push(1.0);
        assert_eq!(big.max(), 1e9);
        assert_eq!(big.quantile(1.0), 1e9);
        assert_eq!(big.frac_above(2e9), 0.0);
    }

    #[test]
    fn log_series_spans_range_and_is_nonincreasing() {
        let mut h = LogHistogram::new();
        (1..=1000).for_each(|i| h.push(i as f64));
        let series = h.log_series(20, 1e-3);
        assert_eq!(series.len(), 20);
        assert!((series[0].0 - 1.0).abs() < 1e-9);
        assert!((series[19].0 - 1000.0).abs() < 1e-6);
        for w in series.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
        }
        assert!(LogHistogram::new().log_series(10, 1e-3).is_empty());
    }

    #[test]
    fn dist_summary_composes_and_serializes() {
        let mut d = DistSummary::new();
        (1..=100).for_each(|i| d.push(i as f64));
        assert_eq!(d.count(), 100);
        assert!((d.mean() - 50.5).abs() < 1e-9);
        assert!((d.quantile(0.5) / 50.0 - 1.0).abs() < 0.1);
        let json = crate::to_json(&d);
        let v = serde_json::from_str::<serde_json::Value>(&json).expect("parse");
        let back = DistSummary::from_value(&v).expect("roundtrip");
        assert_eq!(back, d);
        let mut e = DistSummary::new();
        e.merge(&d);
        assert_eq!(e, d);
    }

    proptest! {
        #[test]
        fn hist_quantiles_are_monotone(xs in proptest::collection::vec(0.0f64..1e5, 1..300)) {
            let mut h = LogHistogram::new();
            xs.iter().for_each(|&x| h.push(x));
            let mut last = f64::NEG_INFINITY;
            for i in 0..=10 {
                let v = h.quantile(i as f64 / 10.0);
                prop_assert!(v >= last - 1e-9, "q{} = {v} < {last}", i);
                prop_assert!(v >= h.min() - 1e-9 && v <= h.max() + 1e-9);
                last = v;
            }
        }

        #[test]
        fn hist_cdf_is_monotone(
            xs in proptest::collection::vec(0.0f64..1e4, 1..200),
            probes in proptest::collection::vec(0.0f64..2e4, 2..20),
        ) {
            let mut h = LogHistogram::new();
            xs.iter().for_each(|&x| h.push(x));
            let mut probes = probes;
            probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for w in probes.windows(2) {
                prop_assert!(h.frac_le(w[1]) >= h.frac_le(w[0]) - 1e-9);
            }
        }

        #[test]
        fn p2_stays_within_range(xs in proptest::collection::vec(-1e3f64..1e3, 5..400)) {
            let mut p = P2Quantile::new(0.9);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &x in &xs {
                p.push(x);
                lo = lo.min(x);
                hi = hi.max(x);
            }
            prop_assert!(p.value() >= lo - 1e-9 && p.value() <= hi + 1e-9);
        }
    }
}

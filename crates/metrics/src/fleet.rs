//! Fleet-scale aggregation: flow-completion-time distributions, Jain's
//! fairness, per-technology byte shares, and an aggregate goodput timeline
//! over hundreds-to-thousands of concurrent flows (DESIGN.md §5.14).
//!
//! Everything here folds in **integer** arithmetic (u64 adds and exact
//! histogram-bucket counts), so aggregation is associative and commutative:
//! a [`FleetReport`] merged from K shards in any order is byte-identical to
//! the unsharded fold. That property is what lets sharded campaigns run on
//! any worker count and still gate CI on exact JSON equality — the same
//! bar the single-scenario replay check sets. (The floating-point
//! [`StreamingStats`](crate::StreamingStats) Chan-merge is deliberately
//! *not* used here: it is accurate but not associative.)

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::stream::LogHistogram;

/// An exactly-mergeable distribution over integer samples (flow-completion
/// times in microseconds, per-flow rates in kbit/s).
///
/// Count/sum/min/max are exact u64 folds; quantiles come from the shared
/// fixed-layout [`LogHistogram`], whose element-wise merge is also exact.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExactDist {
    /// Number of samples.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Fixed-layout histogram for quantile queries.
    pub hist: LogHistogram,
}

impl Default for ExactDist {
    fn default() -> Self {
        ExactDist::new()
    }
}

impl ExactDist {
    /// Empty distribution.
    pub fn new() -> Self {
        ExactDist {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            hist: LogHistogram::new(),
        }
    }

    /// Absorb one sample.
    pub fn push(&mut self, x: u64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        self.sum += x;
        self.hist.push(x as f64);
    }

    /// Fold another distribution in (exact; any merge order gives the same
    /// bytes).
    pub fn merge(&mut self, other: &ExactDist) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        self.hist.merge(&other.hist);
    }

    /// Sample mean (0 when empty). Display-only — never folded back in.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile from the histogram (exact min/max at the ends).
    pub fn quantile(&self, q: f64) -> f64 {
        if q <= 0.0 {
            return self.min as f64;
        }
        if q >= 1.0 {
            return self.max as f64;
        }
        self.hist.quantile(q)
    }
}

/// Jain's fairness index over per-flow rates, folded exactly.
///
/// Keeps `Σx` and `Σx²` as integers; the index `(Σx)² / (n·Σx²)` is only
/// materialized on read. Rates are kbit/s, so `Σx²` stays far below u64
/// range for any plausible fleet (10⁶ kbit/s per flow squared is 10¹²;
/// 10⁶ flows of those still fit).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Fairness {
    /// Number of flows.
    pub n: u64,
    /// Exact Σ rate.
    pub sum_kbps: u64,
    /// Exact Σ rate².
    pub sum_sq_kbps: u64,
}

impl Fairness {
    /// Absorb one flow's achieved rate.
    pub fn push(&mut self, rate_kbps: u64) {
        self.n += 1;
        self.sum_kbps += rate_kbps;
        self.sum_sq_kbps += rate_kbps * rate_kbps;
    }

    /// Fold another accumulator in.
    pub fn merge(&mut self, other: &Fairness) {
        self.n += other.n;
        self.sum_kbps += other.sum_kbps;
        self.sum_sq_kbps += other.sum_sq_kbps;
    }

    /// Jain's index in (0, 1]; 1.0 means perfectly equal rates. Returns
    /// 1.0 for an empty or all-zero population (nothing to be unfair
    /// about).
    pub fn jain(&self) -> f64 {
        if self.n == 0 || self.sum_sq_kbps == 0 {
            return 1.0;
        }
        let s = self.sum_kbps as f64;
        (s * s) / (self.n as f64 * self.sum_sq_kbps as f64)
    }
}

/// Aggregate delivered-bytes timeline in fixed wall-of-sim-time buckets.
///
/// Keyed by bucket *start time* in milliseconds, so reports built with the
/// same bucket width merge by plain addition whatever their horizons.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GoodputTimeline {
    /// Bucket width (ms).
    pub bucket_ms: u64,
    /// bucket start (ms) → bytes delivered in that bucket.
    pub buckets: BTreeMap<u64, u64>,
}

impl GoodputTimeline {
    /// Empty timeline with the given bucket width (0 is coerced to 1).
    pub fn new(bucket_ms: u64) -> Self {
        GoodputTimeline {
            bucket_ms: bucket_ms.max(1),
            buckets: BTreeMap::new(),
        }
    }

    /// Record `bytes` delivered at sim-time `at_ms`.
    pub fn add(&mut self, at_ms: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let start = at_ms - at_ms % self.bucket_ms;
        *self.buckets.entry(start).or_insert(0) += bytes;
    }

    /// Fold another timeline in (same bucket width by construction — both
    /// sides of every merge come from the same [`FleetSpec`]-derived
    /// report shape).
    pub fn merge(&mut self, other: &GoodputTimeline) {
        for (&start, &bytes) in &other.buckets {
            *self.buckets.entry(start).or_insert(0) += bytes;
        }
    }

    /// Mean goodput in kbit/s over the covered span (0 when empty).
    pub fn mean_kbps(&self) -> f64 {
        let (Some((&first, _)), Some((&last, _))) =
            (self.buckets.first_key_value(), self.buckets.last_key_value())
        else {
            return 0.0;
        };
        let span_ms = last + self.bucket_ms - first;
        let bytes: u64 = self.buckets.values().sum();
        (bytes as f64 * 8.0) / span_ms as f64
    }
}

/// One finished (or cut-off) flow, as harvested from a fleet world.
///
/// Records are the unit of aggregation: a [`FleetReport`] is a pure fold
/// over them plus the engine's goodput samples, which is what makes
/// sharding transparent.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// Owning client index within the fleet.
    pub client: u32,
    /// Population class label ("wifi", "lte", "mp2", ...).
    pub class: String,
    /// When the flow's transport opened (sim ms).
    pub started_ms: u64,
    /// Whether the workload ran to completion before the horizon.
    pub completed: bool,
    /// Flow completion time in µs (meaningful when `completed`).
    pub fct_us: u64,
    /// Application bytes delivered.
    pub bytes: u64,
    /// Bytes delivered over WiFi subflows/paths.
    pub wifi_bytes: u64,
    /// Bytes delivered over cellular subflows/paths.
    pub cell_bytes: u64,
    /// Achieved goodput in kbit/s (meaningful when `completed`).
    pub rate_kbps: u64,
    /// Streaming-workload blocks that missed their deadline.
    pub late_blocks: u64,
}

/// The fleet-wide aggregate: everything the contention artifacts and the
/// CI smoke gate read. Built by folding [`FlowRecord`]s (plus goodput
/// samples) and merged across shards with [`FleetReport::merge`] — both
/// folds are integer-exact, so any sharding of the same records yields
/// byte-identical JSON.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Clients simulated.
    pub clients: u64,
    /// Flows opened.
    pub flows_started: u64,
    /// Flows that completed their workload.
    pub flows_completed: u64,
    /// Total application bytes delivered.
    pub bytes: u64,
    /// Bytes carried by WiFi.
    pub wifi_bytes: u64,
    /// Bytes carried by cellular.
    pub cell_bytes: u64,
    /// Flow-completion times (µs) over completed flows.
    pub fct: ExactDist,
    /// Completion times split by population class.
    pub fct_by_class: BTreeMap<String, ExactDist>,
    /// Jain's fairness over completed flows' rates.
    pub fairness: Fairness,
    /// Aggregate delivered-bytes timeline.
    pub goodput: GoodputTimeline,
    /// Total streaming blocks delivered late.
    pub late_blocks: u64,
}

impl FleetReport {
    /// Empty report with the given goodput bucket width.
    pub fn new(bucket_ms: u64) -> Self {
        FleetReport {
            clients: 0,
            flows_started: 0,
            flows_completed: 0,
            bytes: 0,
            wifi_bytes: 0,
            cell_bytes: 0,
            fct: ExactDist::new(),
            fct_by_class: BTreeMap::new(),
            fairness: Fairness::default(),
            goodput: GoodputTimeline::new(bucket_ms),
            late_blocks: 0,
        }
    }

    /// Fold one flow in.
    pub fn absorb(&mut self, r: &FlowRecord) {
        self.flows_started += 1;
        self.bytes += r.bytes;
        self.wifi_bytes += r.wifi_bytes;
        self.cell_bytes += r.cell_bytes;
        self.late_blocks += r.late_blocks;
        if r.completed {
            self.flows_completed += 1;
            self.fct.push(r.fct_us);
            self.fct_by_class
                .entry(r.class.clone())
                .or_default()
                .push(r.fct_us);
            self.fairness.push(r.rate_kbps);
        }
    }

    /// Record aggregate delivered bytes at a sim instant (the engine's
    /// sampling tick calls this once per tick with the fleet-wide delta).
    pub fn absorb_goodput(&mut self, at_ms: u64, bytes: u64) {
        self.goodput.add(at_ms, bytes);
    }

    /// Build a report from records alone (no timeline samples) — the shape
    /// the merge proptest exercises.
    pub fn from_records(bucket_ms: u64, clients: u64, records: &[FlowRecord]) -> Self {
        let mut r = FleetReport::new(bucket_ms);
        r.clients = clients;
        for rec in records {
            r.absorb(rec);
        }
        r
    }

    /// Fold a shard's report in. Clients are disjoint across shards, so
    /// counts add.
    pub fn merge(&mut self, other: &FleetReport) {
        self.clients += other.clients;
        self.flows_started += other.flows_started;
        self.flows_completed += other.flows_completed;
        self.bytes += other.bytes;
        self.wifi_bytes += other.wifi_bytes;
        self.cell_bytes += other.cell_bytes;
        self.late_blocks += other.late_blocks;
        self.fct.merge(&other.fct);
        for (class, dist) in &other.fct_by_class {
            self.fct_by_class
                .entry(class.clone())
                .or_default()
                .merge(dist);
        }
        self.fairness.merge(&other.fairness);
        self.goodput.merge(&other.goodput);
    }

    /// Cellular share of delivered bytes (the paper's Figure-9 axis,
    /// fleet-wide). 0 when nothing was delivered.
    pub fn cellular_share(&self) -> f64 {
        let total = self.wifi_bytes + self.cell_bytes;
        if total == 0 {
            0.0
        } else {
            self.cell_bytes as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(client: u32, class: &str, fct_us: u64, bytes: u64) -> FlowRecord {
        FlowRecord {
            client,
            class: class.into(),
            started_ms: client as u64,
            completed: true,
            fct_us,
            bytes,
            wifi_bytes: bytes / 2,
            cell_bytes: bytes - bytes / 2,
            rate_kbps: (bytes * 8_000).checked_div(fct_us).unwrap_or(0),
            late_blocks: 0,
        }
    }

    #[test]
    fn exact_dist_merge_equals_sequential_fold() {
        let xs: Vec<u64> = (1..=500).map(|i| i * 37 % 9973).collect();
        let mut whole = ExactDist::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = ExactDist::new();
        let mut right = ExactDist::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 3 == 0 {
                left.push(x);
            } else {
                right.push(x);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn jain_index_bounds() {
        let mut f = Fairness::default();
        assert_eq!(f.jain(), 1.0);
        for _ in 0..10 {
            f.push(500);
        }
        assert!((f.jain() - 1.0).abs() < 1e-12);
        let mut g = Fairness::default();
        g.push(1000);
        for _ in 0..9 {
            g.push(0);
        }
        assert!((g.jain() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn timeline_buckets_and_mean() {
        let mut t = GoodputTimeline::new(100);
        t.add(0, 1000);
        t.add(99, 1000);
        t.add(100, 500);
        assert_eq!(t.buckets.get(&0), Some(&2000));
        assert_eq!(t.buckets.get(&100), Some(&500));
        // 2500 bytes over 200 ms = 100 kbit/s.
        assert!((t.mean_kbps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn report_merge_is_exact() {
        let records: Vec<FlowRecord> = (0..200)
            .map(|i| rec(i, if i % 2 == 0 { "mp2" } else { "wifi" }, 1000 + i as u64 * 13, 10_000))
            .collect();
        let whole = FleetReport::from_records(50, 200, &records);
        let mut a = FleetReport::from_records(50, 120, &records[..120]);
        let b = FleetReport::from_records(50, 80, &records[120..]);
        a.merge(&b);
        assert_eq!(crate::to_json(&a), crate::to_json(&whole));
    }

    #[test]
    fn incomplete_flows_count_bytes_but_not_fct() {
        let mut r = rec(0, "lte", 5000, 4096);
        r.completed = false;
        let report = FleetReport::from_records(100, 1, &[r]);
        assert_eq!(report.flows_started, 1);
        assert_eq!(report.flows_completed, 0);
        assert_eq!(report.bytes, 4096);
        assert_eq!(report.fct.count, 0);
    }
}

//! tcptrace-style offline analysis of packet traces.
//!
//! The paper collected tcpdump traces at both ends and analyzed them with
//! tcptrace (§3.2). Our stacks are white-box and collect their own counters,
//! but this module reimplements the *trace-side* definitions — loss rate
//! from retransmission detection, RTT samples from ACK matching with Karn's
//! rule, out-of-order delay from DSS arrival order — so experiments can
//! cross-check the two measurement paths against each other.

use std::collections::{BTreeMap, HashMap};

use mpw_sim::trace::{Dir, SegmentRecord, TraceEvent};
use mpw_sim::SimTime;

/// Identity of one subflow's one direction inside a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Connection id.
    pub conn: u32,
    /// Subflow index.
    pub subflow: u8,
}

/// Per-subflow results of the trace analysis (download direction:
/// server → client data).
#[derive(Clone, Debug, Default)]
pub struct FlowAnalysis {
    /// Data segments sent (including retransmissions).
    pub data_segs: u64,
    /// Retransmitted data segments (seen seq ranges re-sent).
    pub rexmit_segs: u64,
    /// Payload bytes sent, including retransmissions.
    pub bytes: u64,
    /// RTT samples (tcptrace rule: ACK exactly covering a segment that was
    /// never retransmitted).
    pub rtt_samples: Vec<f64>,
}

impl FlowAnalysis {
    /// The paper's loss-rate metric.
    pub fn loss_rate(&self) -> f64 {
        if self.data_segs == 0 {
            0.0
        } else {
            self.rexmit_segs as f64 / self.data_segs as f64
        }
    }
}

/// Analyze server→client data flows in a full packet trace.
pub fn analyze_flows(records: &[(SimTime, TraceEvent)]) -> BTreeMap<FlowKey, FlowAnalysis> {
    let mut out: BTreeMap<FlowKey, FlowAnalysis> = BTreeMap::new();
    // Per flow: first-transmission time keyed by *unwrapped* expected-ack
    // offset (a random ISS can sit near u32::MAX, and raw u32 keys would
    // break BTreeMap ordering mid-flow when the sequence space wraps).
    let mut base_seq: HashMap<FlowKey, u32> = HashMap::new();
    let mut pending_ack: HashMap<FlowKey, BTreeMap<u64, (SimTime, bool)>> = HashMap::new();
    let mut seen_seq: HashMap<FlowKey, std::collections::HashSet<u32>> = HashMap::new();
    // Offset of `x` above the flow's first-seen sequence number, valid while
    // per-flow transfers stay below 2³¹ bytes (they are ≤ 512 MB here).
    let unwrap = |base: u32, x: u32| -> u64 { u64::from(x.wrapping_sub(base)) };

    for (t, ev) in records {
        match ev {
            TraceEvent::SegSent(s) if s.dir == Dir::ServerToClient && s.len > 0 => {
                let key = FlowKey {
                    conn: s.conn,
                    subflow: s.subflow,
                };
                let fa = out.entry(key).or_default();
                fa.data_segs += 1;
                fa.bytes += s.len as u64;
                let base = *base_seq.entry(key).or_insert(s.seq);
                let seqs = seen_seq.entry(key).or_default();
                // lint: allow-seq-arith(offline analysis unwraps raw 32-bit wire seqs; no SeqNum here)
                let expected_ack = unwrap(base, s.seq.wrapping_add(s.len));
                if seqs.contains(&s.seq) {
                    fa.rexmit_segs += 1;
                    // Karn: invalidate the timing entry for this segment.
                    if let Some(m) = pending_ack.get_mut(&key) {
                        if let Some(entry) = m.get_mut(&expected_ack) {
                            entry.1 = true;
                        }
                    }
                } else {
                    seqs.insert(s.seq);
                    pending_ack
                        .entry(key)
                        .or_default()
                        .insert(expected_ack, (*t, false));
                }
            }
            // ACKs from the client arrive at the server.
            TraceEvent::SegRecvd(s) if s.dir == Dir::ClientToServer => {
                let key = FlowKey {
                    conn: s.conn,
                    subflow: s.subflow,
                };
                let Some(&base) = base_seq.get(&key) else {
                    continue;
                };
                let ack = unwrap(base, s.ack);
                if let Some(m) = pending_ack.get_mut(&key) {
                    if let Some(&(sent, invalidated)) = m.get(&ack) {
                        if !invalidated {
                            let fa = out.entry(key).or_default();
                            fa.rtt_samples
                                .push(t.saturating_since(sent).as_secs_f64() * 1e3);
                        }
                    }
                    // Drop all entries cumulatively acknowledged.
                    let keep = m.split_off(&(ack + 1));
                    *m = keep;
                }
            }
            _ => {}
        }
    }
    out
}

/// Connection-level out-of-order delays (ms) reconstructed from the DSS
/// numbers on received data segments, per §3.3's definition.
pub fn analyze_ofo_delays(records: &[(SimTime, TraceEvent)]) -> BTreeMap<u32, Vec<f64>> {
    #[derive(Default)]
    struct ConnState {
        next: u64,
        held: BTreeMap<u64, (u64, SimTime)>, // dseq -> (end, arrival)
        delays: Vec<f64>,
    }
    let mut conns: HashMap<u32, ConnState> = HashMap::new();
    for (t, ev) in records {
        let TraceEvent::SegRecvd(SegmentRecord {
            conn,
            dir: Dir::ServerToClient,
            len,
            dseq: Some(dseq),
            ..
        }) = ev
        else {
            continue;
        };
        if *len == 0 {
            continue;
        }
        let st = conns.entry(*conn).or_default();
        let end = dseq + *len as u64; // lint: allow-seq-arith(64-bit DSN end-offset cannot wrap)
        if end <= st.next {
            continue; // duplicate
        }
        let start = (*dseq).max(st.next);
        st.held.entry(start).or_insert((end, *t));
        // Promote contiguous data.
        while let Some((&s, &(e, arrived))) = st.held.first_key_value() {
            if s > st.next {
                break;
            }
            st.held.remove(&s);
            if e <= st.next {
                continue;
            }
            st.next = e;
            st.delays
                .push(t.saturating_since(arrived).as_secs_f64() * 1e3);
        }
    }
    conns
        .into_iter()
        .map(|(k, v)| (k, v.delays))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpw_sim::trace::flags;

    fn sent(t_ms: u64, seq: u32, len: u32) -> (SimTime, TraceEvent) {
        (
            SimTime::from_millis(t_ms),
            TraceEvent::SegSent(SegmentRecord {
                conn: 1,
                subflow: 0,
                dir: Dir::ServerToClient,
                seq,
                ack: 0,
                len,
                flags: flags::ACK,
                dseq: None,
                is_rexmit: false,
            }),
        )
    }

    fn acked(t_ms: u64, ack: u32) -> (SimTime, TraceEvent) {
        (
            SimTime::from_millis(t_ms),
            TraceEvent::SegRecvd(SegmentRecord {
                conn: 1,
                subflow: 0,
                dir: Dir::ClientToServer,
                seq: 0,
                ack,
                len: 0,
                flags: flags::ACK,
                dseq: None,
                is_rexmit: false,
            }),
        )
    }

    fn rcvd_dss(t_ms: u64, dseq: u64, len: u32) -> (SimTime, TraceEvent) {
        (
            SimTime::from_millis(t_ms),
            TraceEvent::SegRecvd(SegmentRecord {
                conn: 1,
                subflow: 0,
                dir: Dir::ServerToClient,
                seq: dseq as u32,
                ack: 0,
                len,
                flags: flags::ACK,
                dseq: Some(dseq),
                is_rexmit: false,
            }),
        )
    }

    #[test]
    fn clean_flow_has_no_loss_and_correct_rtt() {
        let trace = vec![
            sent(0, 1000, 100),
            sent(1, 1100, 100),
            acked(50, 1100),
            acked(52, 1200),
        ];
        let flows = analyze_flows(&trace);
        let fa = &flows[&FlowKey { conn: 1, subflow: 0 }];
        assert_eq!(fa.data_segs, 2);
        assert_eq!(fa.rexmit_segs, 0);
        assert_eq!(fa.loss_rate(), 0.0);
        assert_eq!(fa.rtt_samples, vec![50.0, 51.0]);
    }

    #[test]
    fn rexmit_detected_and_karn_applied() {
        let trace = vec![
            sent(0, 1000, 100),
            sent(1, 1100, 100),
            // 1000 lost; retransmitted at 300.
            sent(300, 1000, 100),
            acked(350, 1200),
        ];
        let flows = analyze_flows(&trace);
        let fa = &flows[&FlowKey { conn: 1, subflow: 0 }];
        assert_eq!(fa.data_segs, 3);
        assert_eq!(fa.rexmit_segs, 1);
        assert!((fa.loss_rate() - 1.0 / 3.0).abs() < 1e-12);
        // The cumulative ack at 1200 samples segment (1100..1200), sent at
        // t=1, never retransmitted → 349 ms.
        assert_eq!(fa.rtt_samples, vec![349.0]);
    }

    #[test]
    fn rtt_sample_skipped_for_rexmitted_segment() {
        let trace = vec![
            sent(0, 1000, 100),
            sent(200, 1000, 100), // rexmit of the same range
            acked(250, 1100),
        ];
        let flows = analyze_flows(&trace);
        let fa = &flows[&FlowKey { conn: 1, subflow: 0 }];
        assert!(fa.rtt_samples.is_empty(), "Karn violated: {:?}", fa.rtt_samples);
    }

    #[test]
    fn ofo_delay_reconstruction() {
        let trace = vec![
            rcvd_dss(10, 0, 100),
            rcvd_dss(20, 200, 100), // hole at 100
            rcvd_dss(80, 100, 100), // fills the hole
        ];
        let ofo = analyze_ofo_delays(&trace);
        let delays = &ofo[&1];
        // [0,100) delivered on arrival: 0ms. [100,200) fills at 80: 0 ms.
        // [200,300) waited from t=20 to t=80: 60 ms.
        assert_eq!(delays.len(), 3);
        assert_eq!(delays[0], 0.0);
        assert_eq!(delays[1], 0.0);
        assert_eq!(delays[2], 60.0);
    }

    #[test]
    fn duplicate_dss_ignored() {
        let trace = vec![
            rcvd_dss(10, 0, 100),
            rcvd_dss(30, 0, 100), // duplicate
            rcvd_dss(40, 100, 100),
        ];
        let ofo = analyze_ofo_delays(&trace);
        assert_eq!(ofo[&1].len(), 2);
    }
}

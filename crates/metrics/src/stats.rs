//! Summary statistics matching the paper's reporting conventions:
//! sample mean ± standard error for the tables, box-and-whisker five-number
//! summaries for the download-time figures.

use serde::{Deserialize, Serialize};

/// Mean ± standard error (and friends) of a sample.
///
/// ```
/// use mpw_metrics::Summary;
/// let s = Summary::of(&[1.0, 3.0]);
/// assert_eq!(s.pm(), "2.00±1.00"); // the paper's table-cell format
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_err: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Empty input yields zeros.
    pub fn of(xs: &[f64]) -> Summary {
        let n = xs.len();
        if n == 0 {
            return Summary::default();
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        Summary {
            n,
            mean,
            std_dev,
            std_err: std_dev / (n as f64).sqrt(),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Render as the paper's `mean ± stderr` cell.
    pub fn pm(&self) -> String {
        if self.n == 0 {
            return "-".to_string();
        }
        format!("{:.2}±{:.2}", self.mean, self.std_err)
    }

    /// Render as `mean ± stderr` with a negligible-value marker below the
    /// threshold, as the paper's "~" for loss rates < 0.03%.
    pub fn pm_or_tilde(&self, negligible_below: f64) -> String {
        if self.n == 0 {
            return "-".to_string();
        }
        if self.mean < negligible_below {
            return "~".to_string();
        }
        self.pm()
    }
}

/// Box-and-whisker five-number summary (Figure 2/4/6/8/9/11 boxes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BoxPlot {
    /// Sample count.
    pub n: usize,
    /// Minimum (lower whisker).
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum (upper whisker).
    pub max: f64,
}

/// Linear-interpolation quantile of a *sorted* slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

impl BoxPlot {
    /// Build from an unsorted sample.
    pub fn of(xs: &[f64]) -> BoxPlot {
        if xs.is_empty() {
            return BoxPlot::default();
        }
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in metrics"));
        BoxPlot {
            n: v.len(),
            min: v[0],
            q1: quantile_sorted(&v, 0.25),
            median: quantile_sorted(&v, 0.5),
            q3: quantile_sorted(&v, 0.75),
            max: v[v.len() - 1],
        }
    }

    /// One-line textual box: `min [q1 |med| q3] max`.
    pub fn render(&self) -> String {
        format!(
            "{:9.3} [{:9.3} |{:9.3}| {:9.3}] {:9.3}",
            self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev with n-1: sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!((s.std_err - s.std_dev / (8.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_handles_degenerate_inputs() {
        assert_eq!(Summary::of(&[]).n, 0);
        let one = Summary::of(&[3.5]);
        assert_eq!(one.mean, 3.5);
        assert_eq!(one.std_dev, 0.0);
    }

    #[test]
    fn pm_formats_like_the_paper() {
        let s = Summary::of(&[1.0, 3.0]);
        assert_eq!(s.pm(), "2.00±1.00");
        assert_eq!(Summary::of(&[0.0001, 0.0002]).pm_or_tilde(0.0003), "~");
        assert_eq!(Summary::default().pm(), "-");
    }

    #[test]
    fn boxplot_of_known_sample() {
        let b = BoxPlot::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.max, 5.0);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(quantile_sorted(&v, 0.5), 5.0);
        assert_eq!(quantile_sorted(&v, 0.0), 0.0);
        assert_eq!(quantile_sorted(&v, 1.0), 10.0);
    }

    proptest! {
        #[test]
        fn quartiles_are_ordered(xs in proptest::collection::vec(0.0f64..1e6, 1..200)) {
            let b = BoxPlot::of(&xs);
            prop_assert!(b.min <= b.q1 + 1e-9);
            prop_assert!(b.q1 <= b.median + 1e-9);
            prop_assert!(b.median <= b.q3 + 1e-9);
            prop_assert!(b.q3 <= b.max + 1e-9);
        }

        #[test]
        fn mean_within_min_max(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::of(&xs);
            prop_assert!(s.mean >= s.min - 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
        }
    }
}

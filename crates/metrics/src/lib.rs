//! # mpw-metrics — measurement analysis for the mpwild study
//!
//! The statistics and rendering the paper's tables and figures need:
//! sample mean ± standard error (Tables 2–7), box-and-whisker summaries
//! (the download-time figures), empirical CCDFs with log-spaced series
//! (Figures 12–13), aligned ASCII/CSV/JSON output, a tcptrace-style
//! packet-trace analyzer used to cross-check the in-stack counters, and
//! handover metrics (stall time, recovery latency, per-epoch traffic
//! shares) for the mobility scenarios of §7 (DESIGN.md §5.11).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod ccdf;
pub mod fleet;
pub mod handover;
pub mod stats;
pub mod stream;
pub mod table;

pub use analyze::{analyze_flows, analyze_ofo_delays, FlowAnalysis, FlowKey};
pub use ccdf::Ccdf;
pub use fleet::{ExactDist, Fairness, FleetReport, FlowRecord, GoodputTimeline};
pub use handover::{
    bytes_in_transition, epoch_shares, stall_report, EpochShare, EpochSpan, HandoverReport,
    Outage, PathBytes, PathEvent, PathEventKind, StallReport, StallSpan,
};
pub use stats::{quantile_sorted, BoxPlot, Summary};
pub use stream::{DistSummary, LogHistogram, P2Quantile, StreamingStats};
pub use table::{to_json, Table};

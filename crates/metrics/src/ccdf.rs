//! Empirical complementary CDFs — the presentation of Figures 12 and 13.

use serde::{Deserialize, Serialize};

/// An empirical distribution supporting CCDF queries and log-spaced series
/// extraction (the paper plots CCDFs on log–log axes).
///
/// ```
/// use mpw_metrics::Ccdf;
/// let rtts_ms = [20.0, 25.0, 30.0, 200.0];
/// let c = Ccdf::of(&rtts_ms);
/// assert_eq!(c.at(30.0), 0.25);     // P(RTT > 30 ms)
/// assert_eq!(c.quantile(0.5), 27.5);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Ccdf {
    sorted: Vec<f64>,
}

impl Ccdf {
    /// Build from a sample (NaNs are dropped).
    pub fn of(xs: &[f64]) -> Ccdf {
        let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("filtered NaN"));
        Ccdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the distribution is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X > x).
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let above = self.sorted.partition_point(|&v| v <= x);
        (self.sorted.len() - above) as f64 / self.sorted.len() as f64
    }

    /// The q-quantile (inverse CDF).
    pub fn quantile(&self, q: f64) -> f64 {
        crate::stats::quantile_sorted(&self.sorted, q)
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// `(x, P(X > x))` pairs at `points` log-spaced x values spanning the
    /// sample range — ready to plot on the paper's log–log axes. Zero or
    /// negative samples are anchored at `floor`.
    pub fn log_series(&self, points: usize, floor: f64) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.min().max(floor);
        let hi = self.max().max(lo * (1.0 + 1e-9));
        let (llo, lhi) = (lo.ln(), hi.ln());
        (0..points)
            .map(|i| {
                let x = (llo + (lhi - llo) * i as f64 / (points - 1).max(1) as f64).exp();
                (x, self.at(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ccdf_of_known_points() {
        let c = Ccdf::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.at(0.5), 1.0);
        assert_eq!(c.at(1.0), 0.75);
        assert_eq!(c.at(2.5), 0.5);
        assert_eq!(c.at(4.0), 0.0);
        assert_eq!(c.at(100.0), 0.0);
    }

    #[test]
    fn quantiles_match() {
        let c = Ccdf::of(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(c.quantile(0.5), 30.0);
        assert_eq!(c.min(), 10.0);
        assert_eq!(c.max(), 50.0);
    }

    #[test]
    fn log_series_spans_range() {
        let xs: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let series = Ccdf::of(&xs).log_series(20, 1e-3);
        assert_eq!(series.len(), 20);
        assert!((series[0].0 - 1.0).abs() < 1e-9);
        assert!((series[19].0 - 1000.0).abs() < 1e-6);
        // CCDF is non-increasing along the series.
        for w in series.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
        }
    }

    #[test]
    fn empty_is_safe() {
        let c = Ccdf::of(&[]);
        assert!(c.is_empty());
        assert_eq!(c.at(1.0), 0.0);
        assert!(c.log_series(10, 1e-3).is_empty());
    }

    #[test]
    fn nan_is_dropped() {
        let c = Ccdf::of(&[1.0, f64::NAN, 2.0]);
        assert_eq!(c.len(), 2);
    }

    proptest! {
        #[test]
        fn ccdf_is_monotone_nonincreasing(
            xs in proptest::collection::vec(0.0f64..1e3, 1..100),
            probes in proptest::collection::vec(0.0f64..1e3, 2..20),
        ) {
            let c = Ccdf::of(&xs);
            let mut probes = probes;
            probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for w in probes.windows(2) {
                prop_assert!(c.at(w[1]) <= c.at(w[0]) + 1e-12);
            }
            prop_assert!(c.at(f64::NEG_INFINITY) <= 1.0);
        }
    }
}

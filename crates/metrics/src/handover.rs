//! Handover and path-lifecycle metrics (DESIGN.md §5.11).
//!
//! The handover campaigns measure what the paper's §7 handover experiments
//! measured: how long the application stalls when a path dies, how quickly
//! traffic shifts to the surviving path, and how the byte mix evolves
//! across the phases of a scripted mobility scenario. The inputs are
//! deliberately stack-agnostic so both the in-stack instrumentation (the
//! MPTCP layer's lifecycle log) and the wire-level capture analyzer can
//! feed the same reductions:
//!
//! * a **path event timeline** ([`PathEvent`]) — downs, reopen attempts,
//!   recoveries and signal-strength notifications, mirrored from the
//!   connection's lifecycle log by the measurement harness,
//! * a **progress trace** — `(time, cumulative delivered bytes)` samples of
//!   the receiving application,
//! * **delivery deltas** — `(time, path, novel bytes)` attribution events,
//!   the same shape the capture analyzer reconstructs from DSS mappings.
//!
//! From these it derives recovery latency distributions ([`HandoverReport`]),
//! application stall time ([`stall_report`]), bytes delivered while a path
//! was in transition ([`bytes_in_transition`]) and per-epoch traffic shares
//! keyed to the scenario's labelled epochs ([`epoch_shares`]).

use mpw_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::stream::DistSummary;

/// What happened to a path — the metrics-side mirror of the MPTCP layer's
/// lifecycle log (which this crate cannot depend on; the harness converts).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathEventKind {
    /// The path (or its current subflow) was declared dead.
    Down,
    /// A re-establishment attempt was scheduled (backoff timer armed).
    ReopenScheduled,
    /// A replacement subflow's handshake was launched.
    ReopenLaunched,
    /// A subflow on the path completed its handshake after a death.
    Recovered,
    /// The radio reported weak signal (fade onset).
    SignalWeak,
    /// The radio reported signal restored.
    SignalStrong,
}

/// One entry of a path-event timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathEvent {
    /// Event kind.
    pub kind: PathEventKind,
    /// Local interface index of the affected path.
    pub if_index: u8,
    /// When it happened.
    pub at: SimTime,
}

/// One completed outage on an interface: from the first death to the
/// recovery that ended it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outage {
    /// Interface the outage happened on.
    pub if_index: u8,
    /// First death of the outage.
    pub down_at: SimTime,
    /// Recovery that closed it.
    pub recovered_at: SimTime,
    /// Replacement handshakes launched while the outage was open.
    pub reopen_launches: u32,
}

impl Outage {
    /// Recovery latency (down → recovered).
    pub fn recovery(&self) -> SimDuration {
        self.recovered_at.saturating_since(self.down_at)
    }
}

/// Reduction of a path-event timeline: outage pairing and recovery-latency
/// distribution.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct HandoverReport {
    /// Total deaths observed (including repeated deaths inside one outage).
    pub deaths: u32,
    /// Recoveries observed.
    pub recoveries: u32,
    /// Reopen attempts scheduled.
    pub reopen_scheduled: u32,
    /// Replacement handshakes launched.
    pub reopen_launched: u32,
    /// Interfaces still down when the timeline ended.
    pub unrecovered: u32,
    /// Completed outages, in recovery order.
    pub outages: Vec<Outage>,
    /// Recovery latency distribution (ms) over completed outages.
    pub recovery_ms: DistSummary,
}

impl HandoverReport {
    /// Pair downs with recoveries per interface. Repeated deaths while an
    /// outage is open (a replacement subflow dying in its turn) extend the
    /// existing outage rather than opening a new one — the outage clock
    /// runs from the *first* death, which is when the application lost the
    /// path.
    pub fn from_events(events: &[PathEvent]) -> HandoverReport {
        let mut report = HandoverReport::default();
        // if_index → (down_at, reopen launches while open). Path counts in
        // this stack are tiny (≤ 8), so a linear map is fine.
        let mut open: Vec<(u8, SimTime, u32)> = Vec::new();
        for ev in events {
            match ev.kind {
                PathEventKind::Down => {
                    report.deaths += 1;
                    if !open.iter().any(|(i, _, _)| *i == ev.if_index) {
                        open.push((ev.if_index, ev.at, 0));
                    }
                }
                PathEventKind::ReopenScheduled => report.reopen_scheduled += 1,
                PathEventKind::ReopenLaunched => {
                    report.reopen_launched += 1;
                    if let Some(o) = open.iter_mut().find(|(i, _, _)| *i == ev.if_index) {
                        o.2 += 1;
                    }
                }
                PathEventKind::Recovered => {
                    report.recoveries += 1;
                    if let Some(pos) = open.iter().position(|(i, _, _)| *i == ev.if_index) {
                        let (if_index, down_at, launches) = open.remove(pos);
                        let outage = Outage {
                            if_index,
                            down_at,
                            recovered_at: ev.at,
                            reopen_launches: launches,
                        };
                        report.recovery_ms.push(outage.recovery().as_millis_f64());
                        report.outages.push(outage);
                    }
                }
                PathEventKind::SignalWeak | PathEventKind::SignalStrong => {}
            }
        }
        report.unrecovered = open.len() as u32;
        report
    }
}

/// A maximal interval during which delivery made no progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallSpan {
    /// Last instant progress was observed before the stall.
    pub start: SimTime,
    /// Instant progress resumed (or the trace ended).
    pub end: SimTime,
}

impl StallSpan {
    /// Stall duration.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// Application-level stall summary over a progress trace.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StallReport {
    /// Spans where no byte was delivered for at least the threshold.
    pub spans: Vec<StallSpan>,
    /// Sum of span durations.
    pub total: SimDuration,
    /// Longest single span.
    pub longest: SimDuration,
}

impl StallReport {
    /// Number of stall spans.
    pub fn count(&self) -> usize {
        self.spans.len()
    }
}

/// Find stalls in a `(time, cumulative delivered bytes)` trace: maximal
/// intervals of at least `threshold` with no byte progress. Samples must be
/// in time order (byte counts are cumulative, so they are nondecreasing by
/// construction). A trailing no-progress interval counts as a stall — a
/// transfer that never resumed is the worst stall of all.
pub fn stall_report(progress: &[(SimTime, u64)], threshold: SimDuration) -> StallReport {
    let mut report = StallReport::default();
    let Some(&(first_t, first_b)) = progress.first() else {
        return report;
    };
    let mut last_progress_at = first_t;
    let mut last_bytes = first_b;
    let close = |from: SimTime, to: SimTime, report: &mut StallReport| {
        let gap = to.saturating_since(from);
        if gap >= threshold && gap > SimDuration::ZERO {
            report.spans.push(StallSpan { start: from, end: to });
            report.total = report.total.saturating_add(gap);
            report.longest = report.longest.max(gap);
        }
    };
    for &(t, b) in &progress[1..] {
        if b > last_bytes {
            close(last_progress_at, t, &mut report);
            last_progress_at = t;
            last_bytes = b;
        }
    }
    if let Some(&(end_t, _)) = progress.last() {
        if end_t > last_progress_at {
            close(last_progress_at, end_t, &mut report);
        }
    }
    report
}

/// Cumulative delivered bytes at instant `t` per a step-function reading of
/// the progress trace (the value of the latest sample at or before `t`;
/// 0 before the first sample).
pub fn bytes_at(progress: &[(SimTime, u64)], t: SimTime) -> u64 {
    match progress.partition_point(|&(st, _)| st <= t) {
        0 => 0,
        n => progress[n - 1].1,
    }
}

/// Bytes the application received while an outage was open — the paper's
/// "bytes in transition": traffic that had to ride the surviving path(s)
/// between a death and the recovery that ended it.
pub fn bytes_in_transition(progress: &[(SimTime, u64)], outages: &[Outage]) -> u64 {
    outages
        .iter()
        .map(|o| bytes_at(progress, o.recovered_at).saturating_sub(bytes_at(progress, o.down_at)))
        .sum()
}

/// A scenario-labelled time span (the metrics-side shape of the scenario
/// engine's `Epoch`; converted by the harness to avoid a crate cycle).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochSpan {
    /// Label of the scenario event that opened the epoch.
    pub label: String,
    /// Epoch start (inclusive).
    pub start: SimTime,
    /// Epoch end (exclusive).
    pub end: SimTime,
}

/// Bytes one path delivered inside one epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathBytes {
    /// Path index.
    pub path: u8,
    /// Novel bytes the path delivered first.
    pub bytes: u64,
}

/// Per-epoch traffic mix.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochShare {
    /// The epoch's scenario label.
    pub label: String,
    /// Epoch start (inclusive).
    pub start: SimTime,
    /// Epoch end (exclusive).
    pub end: SimTime,
    /// Bytes per path, ascending by path index.
    pub by_path: Vec<PathBytes>,
    /// Total novel bytes delivered in the epoch.
    pub total: u64,
}

impl EpochShare {
    /// Fraction of the epoch's bytes that `path` delivered (0 when the
    /// epoch carried nothing).
    pub fn share(&self, path: u8) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.by_path
            .iter()
            .find(|p| p.path == path)
            .map(|p| p.bytes as f64 / self.total as f64)
            .unwrap_or(0.0)
    }

    /// Fraction delivered by paths other than 0 — the cellular-share metric
    /// restricted to this epoch.
    pub fn non_primary_share(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let other: u64 = self
            .by_path
            .iter()
            .filter(|p| p.path != 0)
            .map(|p| p.bytes)
            .sum();
        other as f64 / self.total as f64
    }
}

/// Attribute `(time, path, novel bytes)` delivery deltas to scenario
/// epochs. Every epoch yields an entry (zero totals included), in the
/// order given; deltas outside every epoch are ignored.
pub fn epoch_shares(deltas: &[(SimTime, u8, u64)], epochs: &[EpochSpan]) -> Vec<EpochShare> {
    epochs
        .iter()
        .map(|e| {
            let mut by_path: Vec<PathBytes> = Vec::new();
            let mut total = 0u64;
            for &(at, path, bytes) in deltas {
                if at < e.start || at >= e.end || bytes == 0 {
                    continue;
                }
                total += bytes;
                match by_path.iter_mut().find(|p| p.path == path) {
                    Some(p) => p.bytes += bytes,
                    None => by_path.push(PathBytes { path, bytes }),
                }
            }
            by_path.sort_by_key(|p| p.path);
            EpochShare {
                label: e.label.clone(),
                start: e.start,
                end: e.end,
                by_path,
                total,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn ev(kind: PathEventKind, if_index: u8, at_ms: u64) -> PathEvent {
        PathEvent { kind, if_index, at: ms(at_ms) }
    }

    #[test]
    fn report_pairs_downs_with_recoveries_per_interface() {
        use PathEventKind::*;
        let events = [
            ev(SignalWeak, 0, 900),
            ev(Down, 0, 1000),
            ev(ReopenScheduled, 0, 1000),
            ev(ReopenLaunched, 0, 1200),
            ev(Down, 1, 1500),
            ev(Recovered, 1, 1800),
            ev(Recovered, 0, 2000),
        ];
        let r = HandoverReport::from_events(&events);
        assert_eq!(r.deaths, 2);
        assert_eq!(r.recoveries, 2);
        assert_eq!(r.reopen_scheduled, 1);
        assert_eq!(r.reopen_launched, 1);
        assert_eq!(r.unrecovered, 0);
        // Recovery order: if1 closed at 1800 first, then if0 at 2000.
        assert_eq!(r.outages.len(), 2);
        assert_eq!(r.outages[0].if_index, 1);
        assert_eq!(r.outages[0].recovery(), dms(300));
        assert_eq!(r.outages[1].if_index, 0);
        assert_eq!(r.outages[1].recovery(), dms(1000));
        assert_eq!(r.outages[1].reopen_launches, 1);
        assert_eq!(r.recovery_ms.count(), 2);
        assert_eq!(r.recovery_ms.max(), 1000.0);
    }

    #[test]
    fn repeated_deaths_extend_the_open_outage() {
        use PathEventKind::*;
        // The replacement launched at 1200 dies in its turn at 4000; the
        // outage still runs from the first death at 1000.
        let events = [
            ev(Down, 0, 1000),
            ev(ReopenLaunched, 0, 1200),
            ev(Down, 0, 4000),
            ev(ReopenLaunched, 0, 4500),
            ev(Recovered, 0, 5000),
        ];
        let r = HandoverReport::from_events(&events);
        assert_eq!(r.deaths, 2);
        assert_eq!(r.outages.len(), 1);
        assert_eq!(r.outages[0].recovery(), dms(4000));
        assert_eq!(r.outages[0].reopen_launches, 2);
    }

    #[test]
    fn unclosed_outage_is_reported_unrecovered() {
        use PathEventKind::*;
        let r = HandoverReport::from_events(&[ev(Down, 0, 100)]);
        assert_eq!(r.unrecovered, 1);
        assert!(r.outages.is_empty());
        assert!(r.recovery_ms.is_empty());
        // A recovery with no preceding down (initial establishment) counts
        // but pairs with nothing.
        let r = HandoverReport::from_events(&[ev(Recovered, 0, 100)]);
        assert_eq!(r.recoveries, 1);
        assert!(r.outages.is_empty());
    }

    #[test]
    fn stall_report_finds_gaps_over_threshold() {
        let progress = [
            (ms(0), 0),
            (ms(100), 1000),
            (ms(200), 2000),
            // 1.3 s gap: samples keep arriving, bytes don't move.
            (ms(800), 2000),
            (ms(1500), 3000),
            (ms(1600), 4000),
        ];
        let r = stall_report(&progress, dms(500));
        assert_eq!(r.count(), 1);
        assert_eq!(r.spans[0], StallSpan { start: ms(200), end: ms(1500) });
        assert_eq!(r.total, dms(1300));
        assert_eq!(r.longest, dms(1300));
    }

    #[test]
    fn stall_report_counts_trailing_stall_and_respects_threshold() {
        let progress = [(ms(0), 0), (ms(100), 500), (ms(5000), 500)];
        let r = stall_report(&progress, dms(1000));
        assert_eq!(r.count(), 1);
        assert_eq!(r.spans[0], StallSpan { start: ms(100), end: ms(5000) });
        // Sub-threshold gaps are not stalls.
        let smooth = [(ms(0), 0), (ms(100), 1), (ms(200), 2), (ms(300), 3)];
        assert_eq!(stall_report(&smooth, dms(500)).count(), 0);
        // Empty and single-sample traces are stall-free.
        assert_eq!(stall_report(&[], dms(1)).count(), 0);
        assert_eq!(stall_report(&[(ms(5), 5)], dms(1)).count(), 0);
    }

    #[test]
    fn bytes_in_transition_reads_the_step_function() {
        let progress = [(ms(0), 0), (ms(1000), 10_000), (ms(2000), 10_000), (ms(3000), 40_000)];
        assert_eq!(bytes_at(&progress, SimTime::ZERO), 0);
        assert_eq!(bytes_at(&progress, ms(1500)), 10_000);
        assert_eq!(bytes_at(&progress, ms(9999)), 40_000);
        let outage = Outage {
            if_index: 0,
            down_at: ms(500),
            recovered_at: ms(3000),
            reopen_launches: 1,
        };
        assert_eq!(bytes_in_transition(&progress, &[outage]), 40_000);
        assert_eq!(bytes_in_transition(&progress, &[]), 0);
    }

    #[test]
    fn epoch_shares_attribute_deltas_to_labelled_spans() {
        let epochs = [
            EpochSpan { label: "start".into(), start: ms(0), end: ms(1000) },
            EpochSpan { label: "fade".into(), start: ms(1000), end: ms(3000) },
            EpochSpan { label: "restored".into(), start: ms(3000), end: ms(4000) },
        ];
        let deltas = [
            (ms(100), 0u8, 700u64),
            (ms(900), 1, 300),
            (ms(1000), 1, 400), // epoch starts are inclusive
            (ms(2999), 1, 600),
            (ms(3500), 0, 250),
            (ms(3500), 0, 250), // same path accumulates
            (ms(4000), 0, 999), // past the last epoch end: dropped
        ];
        let shares = epoch_shares(&deltas, &epochs);
        assert_eq!(shares.len(), 3);
        assert_eq!(shares[0].total, 1000);
        assert!((shares[0].share(0) - 0.7).abs() < 1e-12);
        assert!((shares[0].non_primary_share() - 0.3).abs() < 1e-12);
        assert_eq!(shares[1].total, 1000);
        assert!((shares[1].non_primary_share() - 1.0).abs() < 1e-12);
        assert_eq!(shares[2].by_path, vec![PathBytes { path: 0, bytes: 500 }]);
        // Empty epochs still appear, with zero shares.
        let empty = epoch_shares(&[], &epochs);
        assert_eq!(empty.len(), 3);
        assert_eq!(empty[0].total, 0);
        assert_eq!(empty[0].share(0), 0.0);
    }

    #[test]
    fn handover_types_serde_round_trip() {
        use PathEventKind::*;
        let r = HandoverReport::from_events(&[
            ev(Down, 0, 1000),
            ev(ReopenLaunched, 0, 1200),
            ev(Recovered, 0, 2000),
        ]);
        let json = crate::to_json(&r);
        let v = serde_json::from_str::<serde_json::Value>(&json).expect("parse");
        let back = HandoverReport::from_value(&v).expect("roundtrip");
        assert_eq!(back.outages, r.outages);
        assert_eq!(back.deaths, r.deaths);
        let s = EpochShare {
            label: "fade".into(),
            start: ms(1),
            end: ms(2),
            by_path: vec![PathBytes { path: 1, bytes: 9 }],
            total: 9,
        };
        let v = serde_json::from_str::<serde_json::Value>(&crate::to_json(&s)).expect("parse");
        assert_eq!(EpochShare::from_value(&v).expect("roundtrip"), s);
    }
}

//! Result rendering: aligned ASCII tables (what the experiment drivers
//! print), CSV, and JSON export for regeneration/diffing.

use serde::Serialize;

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as aligned ASCII.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (quotes cells containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Serialize any result object as pretty JSON (the machine-readable twin of
/// each printed table/figure).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("results serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["carrier", "rtt (ms)", "loss (%)"]);
        t.row(vec!["AT&T".into(), "70.06".into(), "0.03".into()]);
        t.row(vec!["Verizon".into(), "92.41".into(), "~".into()]);
        t
    }

    #[test]
    fn renders_aligned() {
        let s = sample().render();
        assert!(s.contains("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header and both rows present.
        assert!(lines[1].starts_with("carrier"));
        assert!(lines[3].starts_with("AT&T"));
        assert!(lines[4].starts_with("Verizon"));
        // Columns align: "rtt" begins at the same offset in header and rows.
        let off = lines[1].find("rtt").unwrap();
        assert_eq!(&lines[3][off..off + 5], "70.06");
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "\"1,5\",\"say \"\"hi\"\"\"");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_is_enforced() {
        Table::new("x", &["a", "b"]).row(vec!["only one".into()]);
    }

    #[test]
    fn json_roundtrips() {
        #[derive(serde::Serialize)]
        struct R {
            x: u32,
        }
        assert!(to_json(&R { x: 5 }).contains("\"x\": 5"));
    }
}

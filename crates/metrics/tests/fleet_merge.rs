//! Property: a [`FleetReport`] assembled by merging K shard reports — for
//! *arbitrary* K and an arbitrary assignment of flows to shards — is
//! byte-identical (as JSON) to the unsharded fold over the same records.
//! This is the contract the fleet campaign's worker pool relies on: worker
//! count and shard split must be pure implementation detail.

use mpw_metrics::{to_json, FleetReport, FlowRecord};
use proptest::prelude::*;

const CLASSES: [&str; 4] = ["wifi", "lte", "mp2", "mp4"];

fn arb_record() -> impl Strategy<Value = FlowRecord> {
    (
        0u32..2000,
        0usize..CLASSES.len(),
        0u64..600_000,
        any::<bool>(),
        0u64..120_000_000,
        0u64..64_000_000,
        0u64..10_000,
        0u64..20,
    )
        .prop_map(
            |(client, class, started_ms, completed, fct_us, bytes, rate_kbps, late_blocks)| {
                let wifi_bytes = bytes / 3;
                FlowRecord {
                    client,
                    class: CLASSES[class].into(),
                    started_ms,
                    completed,
                    fct_us,
                    bytes,
                    wifi_bytes,
                    cell_bytes: bytes - wifi_bytes,
                    rate_kbps,
                    late_blocks,
                }
            },
        )
}

proptest! {
    #[test]
    fn sharded_merge_is_byte_identical(
        records in proptest::collection::vec(arb_record(), 0..300),
        shards in 1usize..9,
        assignment in proptest::collection::vec(0usize..8, 0..300),
        merge_order_rev in any::<bool>(),
    ) {
        let whole = FleetReport::from_records(100, records.len() as u64, &records);

        // Deal each record to a shard (the assignment vector may be shorter
        // than the record list; wrap it).
        let mut parts: Vec<Vec<FlowRecord>> = vec![Vec::new(); shards];
        for (i, r) in records.iter().enumerate() {
            let s = assignment.get(i).copied().unwrap_or(i) % shards;
            parts[s].push(r.clone());
        }
        let mut reports: Vec<FleetReport> = parts
            .iter()
            .map(|p| FleetReport::from_records(100, p.len() as u64, p))
            .collect();
        if merge_order_rev {
            reports.reverse();
        }

        let mut merged = FleetReport::new(100);
        // `clients` is the one field shards don't own disjointly in this
        // synthetic split, so align it by hand before comparing.
        for r in &reports {
            merged.merge(r);
        }
        merged.clients = whole.clients;

        prop_assert_eq!(to_json(&merged), to_json(&whole));
    }

    #[test]
    fn goodput_samples_merge_exactly(
        samples in proptest::collection::vec((0u64..100_000, 0u64..1_000_000), 0..200),
        split in 0usize..200,
    ) {
        let mut whole = FleetReport::new(250);
        for &(at, b) in &samples {
            whole.absorb_goodput(at, b);
        }
        let cut = split.min(samples.len());
        let mut a = FleetReport::new(250);
        let mut b = FleetReport::new(250);
        for &(at, bytes) in &samples[..cut] {
            a.absorb_goodput(at, bytes);
        }
        for &(at, bytes) in &samples[cut..] {
            b.absorb_goodput(at, bytes);
        }
        a.merge(&b);
        prop_assert_eq!(to_json(&a), to_json(&whole));
    }
}

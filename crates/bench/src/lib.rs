//! # mpw-bench — benchmark harness for the mpwild study
//!
//! The benches live in `benches/`:
//!
//! - `figures` — one Criterion bench per paper table/figure group; each
//!   iteration regenerates the artifact at quick scale and asserts its
//!   shape checks still pass.
//! - `engine` — micro-benchmarks of the hot paths: event queue, wire
//!   encode/parse, reassembly, and a full simulated MPTCP transfer.
//! - `ablations` — timed design-choice ablations (§3.1 knobs + substrate
//!   substitutions).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Paper artifact groups benched by `benches/figures.rs`, in run order.
pub fn benched_groups() -> Vec<&'static str> {
    mpw_experiments::groups().iter().map(|g| g.name).collect()
}

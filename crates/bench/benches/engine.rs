//! Micro-benchmarks of the simulation and protocol hot paths, plus the
//! allocation-regression gate: a counting global allocator measures heap
//! activity inside a steady-state window of a loss-free MPTCP download and
//! fails the run if it exceeds the checked-in budgets (zero for the plain
//! data path). `MPW_ALLOC_GATE_ONLY=1` runs just the gate (CI's
//! alloc-regression job); a full run also records the counts in
//! `BENCH_engine.json`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use criterion::{BatchSize, Criterion, Throughput};
use mpw_experiments::{
    run_lossfree_download_windowed, run_measurement, FlowConfig, Scenario, WifiKind,
};
use mpw_link::{Carrier, DayPeriod};
use mpw_mptcp::Coupling;
use mpw_sim::trace::TraceLevel;
use mpw_sim::{Agent, Ctx, Event, Frame, SimDuration, SimTime, TimerHandle, World};
use mpw_tcp::buf::Assembler;
use mpw_tcp::wire::{self, tcp_flags, DssMapping, MptcpOption, TcpOption, TcpSegment};
use mpw_tcp::SeqNum;

/// Heap-operation counter wrapping the system allocator. Counts every
/// `alloc`/`alloc_zeroed`/`realloc` (frees are not interesting to the
/// gate); one relaxed fetch_add per operation, cheap enough to leave on for
/// the timing benches too.
struct CountingAlloc;

static ALLOC_OPS: AtomicU64 = AtomicU64::new(0);
/// Debug aid: when armed (MPW_ALLOC_PANIC=N, counts down inside the
/// window), the N-th heap op panics with a backtrace pointing at the
/// offender. The swap-to-zero disarms before panicking so the panic
/// machinery's own allocations don't recurse.
static PANIC_AFTER: AtomicU64 = AtomicU64::new(0);

/// Debug aid: when MPW_ALLOC_SIZES is set, bucket window allocations by
/// requested size (log2 buckets) to identify offenders without backtraces.
static SIZE_HIST: [AtomicU64; 32] = [const { AtomicU64::new(0) }; 32];
static HIST_ON: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

static PANIC_SIZE_MIN: AtomicU64 = AtomicU64::new(0);
static PANIC_SIZE_MAX: AtomicU64 = AtomicU64::new(u64::MAX);

fn count_op_sized(size: usize) {
    ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
    if HIST_ON.load(Ordering::Relaxed) {
        let b = (usize::BITS - size.max(1).leading_zeros() - 1).min(31) as usize;
        SIZE_HIST[b].fetch_add(1, Ordering::Relaxed);
    }
    if PANIC_AFTER.load(Ordering::Relaxed) > 0
        && (size as u64) >= PANIC_SIZE_MIN.load(Ordering::Relaxed)
        && (size as u64) <= PANIC_SIZE_MAX.load(Ordering::Relaxed)
        && PANIC_AFTER.fetch_sub(1, Ordering::Relaxed) == 1
    {
        panic!("heap operation of {size} bytes inside the steady-state window (run with RUST_BACKTRACE=1)");
    }
}

// The counting allocator is the one deliberate unsafe island in
// first-party code: GlobalAlloc is an unsafe trait and every method
// merely counts, then delegates verbatim to std's System allocator.
unsafe impl GlobalAlloc for CountingAlloc { // lint: allow-unsafe(GlobalAlloc is an unsafe trait)
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 { // lint: allow-unsafe(GlobalAlloc method signature)
        count_op_sized(layout.size());
        unsafe { System.alloc(layout) } // lint: allow-unsafe(delegates to System)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 { // lint: allow-unsafe(GlobalAlloc method signature)
        count_op_sized(layout.size());
        unsafe { System.alloc_zeroed(layout) } // lint: allow-unsafe(delegates to System)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 { // lint: allow-unsafe(GlobalAlloc method signature)
        count_op_sized(new_size);
        unsafe { System.realloc(ptr, layout, new_size) } // lint: allow-unsafe(delegates to System)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) { // lint: allow-unsafe(GlobalAlloc method signature)
        unsafe { System.dealloc(ptr, layout) } // lint: allow-unsafe(delegates to System)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_ops() -> u64 {
    ALLOC_OPS.load(Ordering::Relaxed)
}

/// One allocation-gate measurement.
struct AllocRow {
    id: &'static str,
    allocs_in_window: u64,
    window_segments: u64,
}

/// Steady-state observation window: by 300 ms the handshake, MP_JOIN and
/// the slow-start ramp to the 512 KiB send-buffer cap are over; the 4 MiB
/// download over two 20 Mbit/s loss-free paths completes around 950 ms, so
/// [300 ms, 600 ms] is pure mid-transfer steady state.
const ALLOC_PROBE_SIZE: u64 = 4 << 20;
// Window start leaves ample room past the handshake, the slow-start ramp,
// and the coupled-CC climb to the pinned 64 KiB per-subflow in-flight cap
// (reached ~250-350 ms in): only once in-flight has plateaued do the frame
// pool and every queue stop growing.
const ALLOC_WINDOW_MS: (u64, u64) = (400, 700);

fn alloc_probe(capture: bool, seed: u64) -> (u64, u64) {
    let window = (
        SimTime::from_millis(ALLOC_WINDOW_MS.0),
        SimTime::from_millis(ALLOC_WINDOW_MS.1),
    );
    let mut snaps = [0u64; 2];
    // Environment reads happen out here: `std::env::var` allocates, and the
    // mark closure runs *inside* the measured window.
    let env_u64 = |k: &str, d: u64| {
        std::env::var(k)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(d)
    };
    let armed = env_u64("MPW_ALLOC_PANIC", 0);
    let size_min = env_u64("MPW_ALLOC_PANIC_MIN", 0);
    let size_max = env_u64("MPW_ALLOC_PANIC_MAX", u64::MAX);
    let sizes_on = std::env::var_os("MPW_ALLOC_SIZES").is_some();
    PANIC_SIZE_MIN.store(size_min, Ordering::Relaxed);
    PANIC_SIZE_MAX.store(size_max, Ordering::Relaxed);
    let probe = run_lossfree_download_windowed(
        ALLOC_PROBE_SIZE,
        seed,
        window,
        capture,
        &mut |phase| {
            snaps[usize::from(phase)] = alloc_ops();
            PANIC_AFTER.store(if phase == 0 { armed } else { 0 }, Ordering::Relaxed);
            if sizes_on {
                HIST_ON.store(phase == 0, Ordering::Relaxed);
                if phase == 1 {
                    for (b, c) in SIZE_HIST.iter().enumerate() {
                        let n = c.swap(0, Ordering::Relaxed);
                        if n > 0 {
                            eprintln!(
                                "  alloc size 2^{b} ({}..{}): {n}",
                                1usize << b,
                                (1usize << b) * 2 - 1
                            );
                        }
                    }
                }
            }
        },
    );
    assert_eq!(probe.bytes, ALLOC_PROBE_SIZE, "probe download must complete");
    assert_eq!(probe.rexmit_segs, 0, "probe must be loss-free");
    assert!(probe.window_segments > 0, "window saw no data segments");
    (snaps[1] - snaps[0], probe.window_segments)
}

/// Steady-state fleet pump probe: a 20-client mixed fleet mid-transfer.
/// Arrivals are done by 1 s and the 4 MB downloads are nowhere near
/// finished inside the window, so [2 s, 3 s] measures the many-flow pump
/// (shared-link multiplexing, switch fan-out, per-tick sampling) with no
/// handshake or harvest edges. The denominator is events processed over
/// the whole run — the fleet has no single-flow segment counter — so the
/// per-"segment" ratio in the JSON reads as allocs per event.
fn fleet_alloc_probe(seed: u64) -> (u64, u64) {
    let mut spec = mpw_fleet::FleetSpec::smoke(20, seed);
    spec.workload = mpw_fleet::FleetWorkload::Download { size: 4 << 20 };
    spec.arrival = mpw_fleet::Arrival::Staggered { gap_ms: 50 };
    spec.horizon_ms = 3_200;
    let window = (SimTime::from_millis(2_000), SimTime::from_millis(3_000));
    let mut snaps = [0u64; 2];
    let run = mpw_fleet::run_fleet_windowed(&spec, Some(window), &mut |phase| {
        snaps[usize::from(phase)] = alloc_ops();
    });
    assert!(snaps[1] >= snaps[0], "window marks fired out of order");
    assert!(run.report.bytes > 0, "fleet probe moved no bytes");
    (snaps[1] - snaps[0], run.world.events_processed())
}

/// Run the allocation probes: one warm-up pass per configuration populates
/// the thread-local buffer pool and grows every ring and queue to
/// steady-state capacity, then the measured pass counts heap operations
/// inside the window. Same seed both passes — the measured run is
/// event-identical to the warm-up.
fn run_alloc_probes() -> Vec<AllocRow> {
    let mut rows = Vec::new();
    for (id, capture) in [
        ("alloc/steady_state_segment_allocs", false),
        ("alloc/capture_path_allocs", true),
    ] {
        let _ = alloc_probe(capture, 7);
        let (allocs, segs) = alloc_probe(capture, 7);
        eprintln!(
            "{id}: {allocs} heap ops over {segs} segments in the {}..{} ms window",
            ALLOC_WINDOW_MS.0, ALLOC_WINDOW_MS.1
        );
        rows.push(AllocRow { id, allocs_in_window: allocs, window_segments: segs });
    }
    {
        let _ = fleet_alloc_probe(7);
        let (allocs, events) = fleet_alloc_probe(7);
        eprintln!("alloc/fleet_pump_allocs: {allocs} heap ops over {events} events in the 2000..3000 ms window");
        rows.push(AllocRow {
            id: "alloc/fleet_pump_allocs",
            allocs_in_window: allocs,
            window_segments: events,
        });
    }
    rows
}

/// Read a budget value out of `ALLOC_budgets.json` (flat `"key": number`
/// pairs; no JSON dependency needed for that).
fn budget_for(budgets: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\"");
    let at = budgets.find(&needle).unwrap_or_else(|| panic!("ALLOC_budgets.json lacks {key}"));
    let rest = &budgets[at + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':').expect("budget key not followed by ':'");
    let digits: String = rest.trim_start().chars().take_while(char::is_ascii_digit).collect();
    digits.parse().unwrap_or_else(|_| panic!("budget for {key} is not an integer"))
}

/// The regression gate: every probe must stay within its checked-in budget.
fn check_alloc_budgets(rows: &[AllocRow]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../ALLOC_budgets.json");
    let budgets = std::fs::read_to_string(path).expect("read ALLOC_budgets.json");
    let mut bad = false;
    for row in rows {
        let key = row.id.rsplit('/').next().unwrap_or(row.id);
        let budget = budget_for(&budgets, key);
        if row.allocs_in_window > budget {
            eprintln!(
                "ALLOC REGRESSION: {} = {} heap ops in the steady-state window, budget {}",
                row.id, row.allocs_in_window, budget
            );
            bad = true;
        } else {
            eprintln!("{}: {} heap ops <= budget {}", row.id, row.allocs_in_window, budget);
        }
    }
    if bad {
        std::process::exit(1);
    }
}

/// A pair of agents ping-ponging a timer — pure engine overhead.
struct PingPong {
    peer: u32,
    remaining: u32,
}

impl Agent for PingPong {
    fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        match ev {
            Event::Start => {}
            Event::Timer { .. } | Event::Frame { .. } => {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    ctx.send_frame(
                        self.peer,
                        0,
                        SimDuration::from_micros(10),
                        mpw_sim::Frame::new(Bytes::new()),
                    );
                }
            }
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    const EVENTS: u64 = 100_000;
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("event_loop_100k", |b| {
        b.iter(|| {
            let mut w = World::new(1, TraceLevel::Off);
            let a = w.add_agent(Box::new(PingPong { peer: 1, remaining: EVENTS as u32 / 2 }));
            let bb = w.add_agent(Box::new(PingPong { peer: a, remaining: EVENTS as u32 / 2 }));
            w.schedule(SimTime::ZERO, bb, Event::Timer { token: 0 });
            w.run_until_idle();
            assert!(w.events_processed() >= EVENTS);
        })
    });
    g.finish();
}

/// Arm/cancel churn mimicking per-segment RTO management: every firing
/// arms a fan of timers, immediately cancels all but one, and pulls the
/// survivor in — the pattern a TCP socket generates per ACK burst.
struct TimerChurn {
    remaining: u32,
}

/// Timers armed + cancelled + rescheduled + fired per `TimerChurn` round.
const TIMER_OPS_PER_ROUND: u64 = 8 + 7 + 1 + 1;

impl Agent for TimerChurn {
    fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        match ev {
            Event::Start | Event::Frame { .. } => {}
            Event::Timer { .. } => {
                if self.remaining == 0 {
                    return;
                }
                self.remaining -= 1;
                let mut keep = None;
                for i in 0..8u64 {
                    let h = ctx.arm_timer(SimDuration::from_millis(200), i);
                    if i == 0 {
                        keep = Some(h);
                    } else {
                        ctx.cancel_timer(h);
                    }
                }
                if let Some(h) = keep {
                    ctx.reschedule_timer(h, SimDuration::from_micros(50));
                }
            }
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn bench_timer_wheel(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    const ROUNDS: u64 = 10_000;
    g.throughput(Throughput::Elements(ROUNDS * TIMER_OPS_PER_ROUND));
    g.bench_function("timer_wheel_churn", |b| {
        b.iter(|| {
            let mut w = World::new(1, TraceLevel::Off);
            let a = w.add_agent(Box::new(TimerChurn { remaining: ROUNDS as u32 }));
            w.schedule(SimTime::ZERO, a, Event::Timer { token: 0 });
            w.run_until_idle();
            assert!(w.events_processed() >= ROUNDS);
        })
    });
    g.finish();
}

/// The socket hot path in miniature: every inbound frame answers with one
/// frame and re-arms a timeout, cancelling the previous one. Under a
/// generation-token scheme every re-arm leaves a stale heap entry behind;
/// with cancellable handles the heap stays at O(live timers).
struct FrameChurn {
    peer: u32,
    remaining: u32,
    timeout: Option<TimerHandle>,
}

impl Agent for FrameChurn {
    fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        match ev {
            Event::Start => {}
            // Token 0 is the kick-off; any other timer is the timeout firing.
            Event::Timer { token: 0 } => {
                ctx.send_frame(
                    self.peer,
                    0,
                    SimDuration::from_micros(10),
                    Frame::new(Bytes::new()),
                );
            }
            Event::Timer { .. } => {
                self.timeout = None;
            }
            Event::Frame { .. } => {
                if self.remaining == 0 {
                    return;
                }
                self.remaining -= 1;
                if let Some(h) = self.timeout.take() {
                    ctx.cancel_timer(h);
                }
                self.timeout = Some(ctx.arm_timer(SimDuration::from_millis(300), 1));
                ctx.send_frame(
                    self.peer,
                    0,
                    SimDuration::from_micros(10),
                    Frame::new(Bytes::new()),
                );
            }
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The same hot path under the engine's previous timer idiom: raw
/// `set_timer` plus a generation counter, so every re-arm strands a stale
/// heap entry that must still be popped and dispatched at its deadline.
/// Kept as the in-tree baseline for `event_churn_100k`.
struct FrameChurnRawTimers {
    peer: u32,
    remaining: u32,
    generation: u64,
}

impl Agent for FrameChurnRawTimers {
    fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        match ev {
            Event::Start => {}
            Event::Timer { token: 0 } => {
                ctx.send_frame(
                    self.peer,
                    0,
                    SimDuration::from_micros(10),
                    Frame::new(Bytes::new()),
                );
            }
            // Stale generations are recognized and dropped — after paying
            // for the heap traversal and the dispatch.
            Event::Timer { token } => {
                if token == self.generation {
                    self.generation += 1;
                }
            }
            Event::Frame { .. } => {
                if self.remaining == 0 {
                    return;
                }
                self.remaining -= 1;
                self.generation += 1;
                ctx.set_timer(SimDuration::from_millis(300), self.generation);
                ctx.send_frame(
                    self.peer,
                    0,
                    SimDuration::from_micros(10),
                    Frame::new(Bytes::new()),
                );
            }
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn bench_event_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    const EVENTS: u64 = 100_000;
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("event_churn_100k", |b| {
        b.iter(|| {
            let mut w = World::new(1, TraceLevel::Off);
            let a = w.add_agent(Box::new(FrameChurn {
                peer: 1,
                remaining: EVENTS as u32 / 2,
                timeout: None,
            }));
            let bb = w.add_agent(Box::new(FrameChurn {
                peer: a,
                remaining: EVENTS as u32 / 2,
                timeout: None,
            }));
            w.schedule(SimTime::ZERO, bb, Event::Timer { token: 0 });
            w.run_until_idle();
            assert!(w.events_processed() >= EVENTS);
        })
    });
    g.bench_function("event_churn_100k_raw_timers", |b| {
        b.iter(|| {
            let mut w = World::new(1, TraceLevel::Off);
            let a = w.add_agent(Box::new(FrameChurnRawTimers {
                peer: 1,
                remaining: EVENTS as u32 / 2,
                generation: 0,
            }));
            let bb = w.add_agent(Box::new(FrameChurnRawTimers {
                peer: a,
                remaining: EVENTS as u32 / 2,
                generation: 0,
            }));
            w.schedule(SimTime::ZERO, bb, Event::Timer { token: 0 });
            w.run_until_idle();
            assert!(w.events_processed() >= EVENTS);
        })
    });
    g.finish();
}

fn data_segment() -> TcpSegment {
    let mut seg = TcpSegment::bare(8080, 40000, SeqNum(12345), SeqNum(999), tcp_flags::ACK);
    seg.window = 5000;
    seg.payload = Bytes::from(vec![0x5a; 1400]);
    seg.options = [TcpOption::Mptcp(MptcpOption::Dss {
        data_ack: Some(1 << 33),
        mapping: Some(DssMapping {
            dseq: 1 << 32,
            subflow_seq: SeqNum(12345),
            len: 1400,
        }),
        data_fin: false,
    })]
    .into();
    seg
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let ip = wire::IpHeader {
        src: wire::Addr::new(10, 0, 1, 2),
        dst: wire::Addr::new(192, 168, 1, 1),
        protocol: wire::PROTO_TCP,
        ttl: 64,
    };
    let seg = data_segment();
    g.throughput(Throughput::Bytes(1452));
    g.bench_function("encode_data_segment", |b| {
        b.iter(|| wire::encode_packet(&ip, &seg))
    });
    let bytes = wire::encode_packet(&ip, &seg);
    g.bench_function("parse_data_segment", |b| {
        b.iter(|| wire::parse_packet(&bytes).expect("valid"))
    });
    g.finish();
}

fn bench_assembler(c: &mut Criterion) {
    let mut g = c.benchmark_group("assembler");
    // Worst-ish case: interleaved two-source arrival with a lagging source.
    g.bench_function("interleaved_insert_1000", |b| {
        b.iter_batched(
            || Assembler::new(0, true),
            |mut a| {
                let mut t = SimTime::ZERO;
                for i in 0..500u64 {
                    t += SimDuration::from_micros(100);
                    // Fast source: in-order block far ahead.
                    a.insert(700_000 + i * 1400, Bytes::from(vec![0u8; 1400]), t);
                    // Slow source: fills the head.
                    a.insert(i * 1400, Bytes::from(vec![0u8; 1400]), t);
                    while a.pop_ready().is_some() {}
                }
                a
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Capture overhead: the same MPTCP download with taps detached vs
/// attached at all four per-path vantages. Detached cost is one `Option`
/// branch per frame and must stay in the noise; attached cost is the
/// observer dispatch, record accumulation, and final pcapng serialization.
fn bench_capture_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("capture_overhead");
    g.sample_size(10);
    let scenario = Scenario {
        wifi: WifiKind::Home,
        carrier: Carrier::Att,
        flow: FlowConfig::mp2(Coupling::Coupled),
        size: 1 << 20,
        period: DayPeriod::Night,
        warmup: true,
    };
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("mptcp_1mb_taps_off", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let m = run_measurement(&scenario, seed);
            assert_eq!(m.bytes, 1 << 20);
            m
        })
    });
    g.bench_function("mptcp_1mb_taps_on", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let (m, _pcap) = mpw_experiments::run_measurement_captured(&scenario, seed);
            assert_eq!(m.bytes, 1 << 20);
            m
        })
    });
    g.finish();
}

fn bench_full_transfer(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    let scenario = Scenario {
        wifi: WifiKind::Home,
        carrier: Carrier::Att,
        flow: FlowConfig::mp2(Coupling::Coupled),
        size: 1 << 20,
        period: DayPeriod::Night,
        warmup: true,
    };
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("mptcp_1mb_download_sim", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let m = run_measurement(&scenario, seed);
            assert_eq!(m.bytes, 1 << 20);
            m
        })
    });
    g.finish();
}

/// Fleet scaling rows: wall-clock flows/sec and events/sec for a full
/// mixed-population fleet run (build + drive + harvest) at N=100 and
/// N=1000. Timed directly — one fleet run is far too coarse for
/// criterion's iteration model — with the fastest of `reps` runs, and the
/// flow/event counts read from the (deterministic) run itself.
fn bench_fleet_scale() -> Vec<String> {
    let mut rows = Vec::new();
    for (n, reps) in [(100u32, 3u32), (1000, 2)] {
        let spec = mpw_fleet::FleetSpec::smoke(n, 1);
        let mut best_ns = u64::MAX;
        let mut flows = 0u64;
        let mut events = 0u64;
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            let run = mpw_fleet::run_fleet(&spec);
            let dt = t0.elapsed().as_nanos() as u64;
            best_ns = best_ns.min(dt);
            flows = run.report.flows_started;
            events = run.world.events_processed();
        }
        let secs = best_ns as f64 / 1e9;
        let flows_per_sec = flows as f64 / secs;
        let events_per_sec = events as f64 / secs;
        eprintln!(
            "bench fleet/scale_n{n}: {flows} flows, {events} events in {secs:.2}s \
             ({flows_per_sec:.0} flows/s, {events_per_sec:.0} events/s)"
        );
        rows.push(format!(
            "  {{\"id\": \"fleet/scale_n{n}\", \"ns_per_iter\": {best_ns}, \"iters\": {reps}, \
             \"flows\": {flows}, \"events\": {events}, \"flows_per_second\": {flows_per_sec:.1}, \
             \"events_per_second\": {events_per_sec:.1}}}"
        ));
    }
    rows
}

/// Export machine-readable results at the workspace root so CI and the
/// docs can track engine throughput across changes. Allocation-gate rows
/// ride along after the timing rows.
fn write_summary(c: &Criterion, alloc_rows: &[AllocRow], extra_rows: &[String]) {
    let mut rows: Vec<String> = c
        .results()
        .iter()
        .map(|r| {
            let per_second = r
                .per_second()
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "null".into());
            format!(
                "  {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}, \"per_second\": {per_second}}}",
                r.id, r.ns_per_iter, r.iters
            )
        })
        .collect();
    rows.extend(extra_rows.iter().cloned());
    for a in alloc_rows {
        let per_seg = a.allocs_in_window as f64 / a.window_segments.max(1) as f64;
        rows.push(format!(
            "  {{\"id\": \"{}\", \"allocs_in_window\": {}, \"window_segments\": {}, \"allocs_per_segment\": {per_seg:.4}}}",
            a.id, a.allocs_in_window, a.window_segments
        ));
    }
    let out = format!("[\n{}\n]\n", rows.join(",\n"));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, out).expect("write BENCH_engine.json");
    eprintln!("wrote {path}");
}

fn main() {
    // The allocation gate runs first: it is the cheap, binary pass/fail
    // part, and CI's alloc-regression job stops after it.
    let alloc_rows = run_alloc_probes();
    check_alloc_budgets(&alloc_rows);
    if std::env::var_os("MPW_ALLOC_GATE_ONLY").is_some() {
        return;
    }
    let mut criterion = Criterion::default();
    bench_event_queue(&mut criterion);
    bench_timer_wheel(&mut criterion);
    bench_event_churn(&mut criterion);
    bench_wire(&mut criterion);
    bench_assembler(&mut criterion);
    bench_full_transfer(&mut criterion);
    bench_capture_overhead(&mut criterion);
    let fleet_rows = bench_fleet_scale();
    write_summary(&criterion, &alloc_rows, &fleet_rows);
}

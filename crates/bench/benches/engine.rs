//! Micro-benchmarks of the simulation and protocol hot paths.

use bytes::Bytes;
use criterion::{BatchSize, Criterion, Throughput};
use mpw_experiments::{run_measurement, FlowConfig, Scenario, WifiKind};
use mpw_link::{Carrier, DayPeriod};
use mpw_mptcp::Coupling;
use mpw_sim::trace::TraceLevel;
use mpw_sim::{Agent, Ctx, Event, Frame, SimDuration, SimTime, TimerHandle, World};
use mpw_tcp::buf::Assembler;
use mpw_tcp::wire::{self, tcp_flags, DssMapping, MptcpOption, TcpOption, TcpSegment};
use mpw_tcp::SeqNum;

/// A pair of agents ping-ponging a timer — pure engine overhead.
struct PingPong {
    peer: u32,
    remaining: u32,
}

impl Agent for PingPong {
    fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        match ev {
            Event::Start => {}
            Event::Timer { .. } | Event::Frame { .. } => {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    ctx.send_frame(
                        self.peer,
                        0,
                        SimDuration::from_micros(10),
                        mpw_sim::Frame::new(Bytes::new()),
                    );
                }
            }
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    const EVENTS: u64 = 100_000;
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("event_loop_100k", |b| {
        b.iter(|| {
            let mut w = World::new(1, TraceLevel::Off);
            let a = w.add_agent(Box::new(PingPong { peer: 1, remaining: EVENTS as u32 / 2 }));
            let bb = w.add_agent(Box::new(PingPong { peer: a, remaining: EVENTS as u32 / 2 }));
            w.schedule(SimTime::ZERO, bb, Event::Timer { token: 0 });
            w.run_until_idle();
            assert!(w.events_processed() >= EVENTS);
        })
    });
    g.finish();
}

/// Arm/cancel churn mimicking per-segment RTO management: every firing
/// arms a fan of timers, immediately cancels all but one, and pulls the
/// survivor in — the pattern a TCP socket generates per ACK burst.
struct TimerChurn {
    remaining: u32,
}

/// Timers armed + cancelled + rescheduled + fired per `TimerChurn` round.
const TIMER_OPS_PER_ROUND: u64 = 8 + 7 + 1 + 1;

impl Agent for TimerChurn {
    fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        match ev {
            Event::Start | Event::Frame { .. } => {}
            Event::Timer { .. } => {
                if self.remaining == 0 {
                    return;
                }
                self.remaining -= 1;
                let mut keep = None;
                for i in 0..8u64 {
                    let h = ctx.arm_timer(SimDuration::from_millis(200), i);
                    if i == 0 {
                        keep = Some(h);
                    } else {
                        ctx.cancel_timer(h);
                    }
                }
                if let Some(h) = keep {
                    ctx.reschedule_timer(h, SimDuration::from_micros(50));
                }
            }
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn bench_timer_wheel(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    const ROUNDS: u64 = 10_000;
    g.throughput(Throughput::Elements(ROUNDS * TIMER_OPS_PER_ROUND));
    g.bench_function("timer_wheel_churn", |b| {
        b.iter(|| {
            let mut w = World::new(1, TraceLevel::Off);
            let a = w.add_agent(Box::new(TimerChurn { remaining: ROUNDS as u32 }));
            w.schedule(SimTime::ZERO, a, Event::Timer { token: 0 });
            w.run_until_idle();
            assert!(w.events_processed() >= ROUNDS);
        })
    });
    g.finish();
}

/// The socket hot path in miniature: every inbound frame answers with one
/// frame and re-arms a timeout, cancelling the previous one. Under a
/// generation-token scheme every re-arm leaves a stale heap entry behind;
/// with cancellable handles the heap stays at O(live timers).
struct FrameChurn {
    peer: u32,
    remaining: u32,
    timeout: Option<TimerHandle>,
}

impl Agent for FrameChurn {
    fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        match ev {
            Event::Start => {}
            // Token 0 is the kick-off; any other timer is the timeout firing.
            Event::Timer { token: 0 } => {
                ctx.send_frame(
                    self.peer,
                    0,
                    SimDuration::from_micros(10),
                    Frame::new(Bytes::new()),
                );
            }
            Event::Timer { .. } => {
                self.timeout = None;
            }
            Event::Frame { .. } => {
                if self.remaining == 0 {
                    return;
                }
                self.remaining -= 1;
                if let Some(h) = self.timeout.take() {
                    ctx.cancel_timer(h);
                }
                self.timeout = Some(ctx.arm_timer(SimDuration::from_millis(300), 1));
                ctx.send_frame(
                    self.peer,
                    0,
                    SimDuration::from_micros(10),
                    Frame::new(Bytes::new()),
                );
            }
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The same hot path under the engine's previous timer idiom: raw
/// `set_timer` plus a generation counter, so every re-arm strands a stale
/// heap entry that must still be popped and dispatched at its deadline.
/// Kept as the in-tree baseline for `event_churn_100k`.
struct FrameChurnRawTimers {
    peer: u32,
    remaining: u32,
    generation: u64,
}

impl Agent for FrameChurnRawTimers {
    fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        match ev {
            Event::Start => {}
            Event::Timer { token: 0 } => {
                ctx.send_frame(
                    self.peer,
                    0,
                    SimDuration::from_micros(10),
                    Frame::new(Bytes::new()),
                );
            }
            // Stale generations are recognized and dropped — after paying
            // for the heap traversal and the dispatch.
            Event::Timer { token } => {
                if token == self.generation {
                    self.generation += 1;
                }
            }
            Event::Frame { .. } => {
                if self.remaining == 0 {
                    return;
                }
                self.remaining -= 1;
                self.generation += 1;
                ctx.set_timer(SimDuration::from_millis(300), self.generation);
                ctx.send_frame(
                    self.peer,
                    0,
                    SimDuration::from_micros(10),
                    Frame::new(Bytes::new()),
                );
            }
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn bench_event_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    const EVENTS: u64 = 100_000;
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("event_churn_100k", |b| {
        b.iter(|| {
            let mut w = World::new(1, TraceLevel::Off);
            let a = w.add_agent(Box::new(FrameChurn {
                peer: 1,
                remaining: EVENTS as u32 / 2,
                timeout: None,
            }));
            let bb = w.add_agent(Box::new(FrameChurn {
                peer: a,
                remaining: EVENTS as u32 / 2,
                timeout: None,
            }));
            w.schedule(SimTime::ZERO, bb, Event::Timer { token: 0 });
            w.run_until_idle();
            assert!(w.events_processed() >= EVENTS);
        })
    });
    g.bench_function("event_churn_100k_raw_timers", |b| {
        b.iter(|| {
            let mut w = World::new(1, TraceLevel::Off);
            let a = w.add_agent(Box::new(FrameChurnRawTimers {
                peer: 1,
                remaining: EVENTS as u32 / 2,
                generation: 0,
            }));
            let bb = w.add_agent(Box::new(FrameChurnRawTimers {
                peer: a,
                remaining: EVENTS as u32 / 2,
                generation: 0,
            }));
            w.schedule(SimTime::ZERO, bb, Event::Timer { token: 0 });
            w.run_until_idle();
            assert!(w.events_processed() >= EVENTS);
        })
    });
    g.finish();
}

fn data_segment() -> TcpSegment {
    let mut seg = TcpSegment::bare(8080, 40000, SeqNum(12345), SeqNum(999), tcp_flags::ACK);
    seg.window = 5000;
    seg.payload = Bytes::from(vec![0x5a; 1400]);
    seg.options = vec![TcpOption::Mptcp(MptcpOption::Dss {
        data_ack: Some(1 << 33),
        mapping: Some(DssMapping {
            dseq: 1 << 32,
            subflow_seq: SeqNum(12345),
            len: 1400,
        }),
        data_fin: false,
    })];
    seg
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let ip = wire::IpHeader {
        src: wire::Addr::new(10, 0, 1, 2),
        dst: wire::Addr::new(192, 168, 1, 1),
        protocol: wire::PROTO_TCP,
        ttl: 64,
    };
    let seg = data_segment();
    g.throughput(Throughput::Bytes(1452));
    g.bench_function("encode_data_segment", |b| {
        b.iter(|| wire::encode_packet(&ip, &seg))
    });
    let bytes = wire::encode_packet(&ip, &seg);
    g.bench_function("parse_data_segment", |b| {
        b.iter(|| wire::parse_packet(&bytes).expect("valid"))
    });
    g.finish();
}

fn bench_assembler(c: &mut Criterion) {
    let mut g = c.benchmark_group("assembler");
    // Worst-ish case: interleaved two-source arrival with a lagging source.
    g.bench_function("interleaved_insert_1000", |b| {
        b.iter_batched(
            || Assembler::new(0, true),
            |mut a| {
                let mut t = SimTime::ZERO;
                for i in 0..500u64 {
                    t += SimDuration::from_micros(100);
                    // Fast source: in-order block far ahead.
                    a.insert(700_000 + i * 1400, Bytes::from(vec![0u8; 1400]), t);
                    // Slow source: fills the head.
                    a.insert(i * 1400, Bytes::from(vec![0u8; 1400]), t);
                    while a.pop_ready().is_some() {}
                }
                a
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Capture overhead: the same MPTCP download with taps detached vs
/// attached at all four per-path vantages. Detached cost is one `Option`
/// branch per frame and must stay in the noise; attached cost is the
/// observer dispatch, record accumulation, and final pcapng serialization.
fn bench_capture_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("capture_overhead");
    g.sample_size(10);
    let scenario = Scenario {
        wifi: WifiKind::Home,
        carrier: Carrier::Att,
        flow: FlowConfig::mp2(Coupling::Coupled),
        size: 1 << 20,
        period: DayPeriod::Night,
        warmup: true,
    };
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("mptcp_1mb_taps_off", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let m = run_measurement(&scenario, seed);
            assert_eq!(m.bytes, 1 << 20);
            m
        })
    });
    g.bench_function("mptcp_1mb_taps_on", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let (m, _pcap) = mpw_experiments::run_measurement_captured(&scenario, seed);
            assert_eq!(m.bytes, 1 << 20);
            m
        })
    });
    g.finish();
}

fn bench_full_transfer(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    let scenario = Scenario {
        wifi: WifiKind::Home,
        carrier: Carrier::Att,
        flow: FlowConfig::mp2(Coupling::Coupled),
        size: 1 << 20,
        period: DayPeriod::Night,
        warmup: true,
    };
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("mptcp_1mb_download_sim", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let m = run_measurement(&scenario, seed);
            assert_eq!(m.bytes, 1 << 20);
            m
        })
    });
    g.finish();
}

/// Export machine-readable results at the workspace root so CI and the
/// docs can track engine throughput across changes.
fn write_summary(c: &Criterion) {
    let rows: Vec<String> = c
        .results()
        .iter()
        .map(|r| {
            let per_second = r
                .per_second()
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "null".into());
            format!(
                "  {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}, \"per_second\": {per_second}}}",
                r.id, r.ns_per_iter, r.iters
            )
        })
        .collect();
    let out = format!("[\n{}\n]\n", rows.join(",\n"));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, out).expect("write BENCH_engine.json");
    eprintln!("wrote {path}");
}

fn main() {
    let mut criterion = Criterion::default();
    bench_event_queue(&mut criterion);
    bench_timer_wheel(&mut criterion);
    bench_event_churn(&mut criterion);
    bench_wire(&mut criterion);
    bench_assembler(&mut criterion);
    bench_full_transfer(&mut criterion);
    bench_capture_overhead(&mut criterion);
    write_summary(&criterion);
}

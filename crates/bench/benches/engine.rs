//! Micro-benchmarks of the simulation and protocol hot paths.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mpw_experiments::{run_measurement, FlowConfig, Scenario, WifiKind};
use mpw_link::{Carrier, DayPeriod};
use mpw_mptcp::Coupling;
use mpw_sim::trace::TraceLevel;
use mpw_sim::{Agent, Ctx, Event, SimDuration, SimTime, World};
use mpw_tcp::buf::Assembler;
use mpw_tcp::wire::{self, tcp_flags, DssMapping, MptcpOption, TcpOption, TcpSegment};
use mpw_tcp::SeqNum;

/// A pair of agents ping-ponging a timer — pure engine overhead.
struct PingPong {
    peer: u32,
    remaining: u32,
}

impl Agent for PingPong {
    fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        match ev {
            Event::Start => {}
            Event::Timer { .. } | Event::Frame { .. } => {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    ctx.send_frame(
                        self.peer,
                        0,
                        SimDuration::from_micros(10),
                        mpw_sim::Frame::new(Bytes::new()),
                    );
                }
            }
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    const EVENTS: u64 = 100_000;
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("event_loop_100k", |b| {
        b.iter(|| {
            let mut w = World::new(1, TraceLevel::Off);
            let a = w.add_agent(Box::new(PingPong { peer: 1, remaining: EVENTS as u32 / 2 }));
            let bb = w.add_agent(Box::new(PingPong { peer: a, remaining: EVENTS as u32 / 2 }));
            w.schedule(SimTime::ZERO, bb, Event::Timer { token: 0 });
            w.run_until_idle();
            assert!(w.events_processed() >= EVENTS);
        })
    });
    g.finish();
}

fn data_segment() -> TcpSegment {
    let mut seg = TcpSegment::bare(8080, 40000, SeqNum(12345), SeqNum(999), tcp_flags::ACK);
    seg.window = 5000;
    seg.payload = Bytes::from(vec![0x5a; 1400]);
    seg.options = vec![TcpOption::Mptcp(MptcpOption::Dss {
        data_ack: Some(1 << 33),
        mapping: Some(DssMapping {
            dseq: 1 << 32,
            subflow_seq: SeqNum(12345),
            len: 1400,
        }),
        data_fin: false,
    })];
    seg
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let ip = wire::IpHeader {
        src: wire::Addr::new(10, 0, 1, 2),
        dst: wire::Addr::new(192, 168, 1, 1),
        protocol: wire::PROTO_TCP,
        ttl: 64,
    };
    let seg = data_segment();
    g.throughput(Throughput::Bytes(1452));
    g.bench_function("encode_data_segment", |b| {
        b.iter(|| wire::encode_packet(&ip, &seg))
    });
    let bytes = wire::encode_packet(&ip, &seg);
    g.bench_function("parse_data_segment", |b| {
        b.iter(|| wire::parse_packet(&bytes).expect("valid"))
    });
    g.finish();
}

fn bench_assembler(c: &mut Criterion) {
    let mut g = c.benchmark_group("assembler");
    // Worst-ish case: interleaved two-source arrival with a lagging source.
    g.bench_function("interleaved_insert_1000", |b| {
        b.iter_batched(
            || Assembler::new(0, true),
            |mut a| {
                let mut t = SimTime::ZERO;
                for i in 0..500u64 {
                    t += SimDuration::from_micros(100);
                    // Fast source: in-order block far ahead.
                    a.insert(700_000 + i * 1400, Bytes::from(vec![0u8; 1400]), t);
                    // Slow source: fills the head.
                    a.insert(i * 1400, Bytes::from(vec![0u8; 1400]), t);
                    while a.pop_ready().is_some() {}
                }
                a
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_full_transfer(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    let scenario = Scenario {
        wifi: WifiKind::Home,
        carrier: Carrier::Att,
        flow: FlowConfig::mp2(Coupling::Coupled),
        size: 1 << 20,
        period: DayPeriod::Night,
        warmup: true,
    };
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("mptcp_1mb_download_sim", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let m = run_measurement(&scenario, seed);
            assert_eq!(m.bytes, 1 << 20);
            m
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_wire,
    bench_assembler,
    bench_full_transfer
);
criterion_main!(benches);

//! One bench per paper table/figure group: each iteration regenerates the
//! artifact(s) at quick scale and asserts every shape check against the
//! paper still passes. `cargo bench -p mpw-bench --bench figures` therefore
//! both times and *re-validates* the full reproduction.
//!
//! | bench        | artifacts regenerated |
//! |--------------|-----------------------|
//! | `inventory`  | Table 1               |
//! | `baseline`   | Figures 2–3, Table 2  |
//! | `small`      | Figures 4–5, Table 3  |
//! | `hotspot`    | Figures 6–7, Table 4  |
//! | `simsyn`     | Figure 8              |
//! | `large`      | Figures 9–10, Table 5 |
//! | `backlog`    | Figure 11             |
//! | `latency`    | Figures 12–13, Table 6|
//! | `streaming`  | Table 7               |

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mpw_experiments::{groups, Scale};

fn bench_groups(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10).warm_up_time(Duration::from_millis(500));
    for group in groups() {
        g.bench_function(group.name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let artifacts = (group.run)(Scale::QUICK, seed, 1);
                for a in &artifacts {
                    for check in &a.checks {
                        // Individual quick-scale iterations can be noisy;
                        // report rather than abort, but keep the signal in
                        // the bench output.
                        if !check.pass {
                            eprintln!(
                                "[{} seed {seed}] shape check missed: {} — {}",
                                a.id, check.name, check.detail
                            );
                        }
                    }
                }
                artifacts
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_groups);
criterion_main!(benches);

//! Timed design-choice ablations (DESIGN.md §7): each bench toggles one
//! mechanism the paper's §3.1 configured (or one substrate substitution) and
//! prints the measured effect alongside the timing.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mpw_experiments::ablations;

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10).warm_up_time(Duration::from_millis(500));

    g.bench_function("ssthresh_64k_vs_infinite", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            ablations::ablate_ssthresh(1, seed)
        })
    });
    g.bench_function("penalization_off_vs_on", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            ablations::ablate_penalization(1, seed)
        })
    });
    g.bench_function("scheduler_minrtt_vs_roundrobin", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            ablations::ablate_scheduler(1, seed)
        })
    });
    g.bench_function("cellular_arq_on_vs_off", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            ablations::ablate_cellular_arq(1, seed)
        })
    });
    g.bench_function("recv_buffer_8mb_vs_192kb", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            ablations::ablate_recv_buffer(1, seed)
        })
    });
    g.finish();

    // Print one full ablation table so `cargo bench` output records the
    // effect sizes, not just the wall-clock cost of measuring them.
    let (table, _) = ablations::run_all(2, 1);
    eprintln!("\n{table}");
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);

//! The panic-free-parser lint wall.
//!
//! Every byte that crosses the simulated wire is untrusted: the paper's
//! methodology (tcpdump + tcptrace over real MPTCP traffic, §3) only works
//! because the offline tools are *total* over arbitrary input, and
//! longitudinal MPTCP measurements show real traces full of truncated and
//! middlebox-mangled options. The designated parser modules must therefore
//! never panic on wire-derived data. This lint textually forbids, outside
//! `#[cfg(test)]`:
//!
//! * **panicking macros/methods** — `panic!`, `unreachable!`, `todo!`,
//!   `unimplemented!`, `assert!`/`assert_eq!`/`assert_ne!` (and their
//!   `debug_` variants), `.unwrap()`, `.expect(`;
//! * **indexing an expression** — `buf[..]`-style slice/array indexing,
//!   which panics on out-of-range input. (Array *types* `[u8; 4]`, slice
//!   patterns, attributes and literals are not flagged.)
//!
//! A construct may opt out with a `lint: allow-panic(reason)` marker on the
//! same line or the line directly above — encode-side code patching
//! checksums into buffers it just built is the canonical use. A marker with
//! an empty reason, or one that allows nothing (stale), is itself a
//! finding, so the allowlist cannot rot silently.
//!
//! Like the determinism wall in [`crate::lint`], this is a textual scan:
//! deliberately dumb, zero-dependency, and immune to macro tricks that hide
//! constructs from clippy.

use std::fmt;
use std::path::{Path, PathBuf};

/// Parser modules covered by the wall, relative to the workspace root.
/// Every file must exist — a rename breaks the lint loudly rather than
/// silently dropping coverage.
pub const PARSER_MODULES: [&str; 4] = [
    "crates/tcp/src/wire.rs",
    "crates/capture/src/pcapng.rs",
    "crates/capture/src/analyze.rs",
    "crates/scenario/src/parse.rs",
];

/// The opt-out marker. Must be followed by `(reason)` with a non-empty
/// reason and sit on the flagged line or the line directly above it.
pub const MARKER: &str = "lint: allow-panic";

/// Panicking constructs searched for in code (comments and string literals
/// are stripped first). Dot-prefixed tokens match anywhere; bare tokens
/// require a non-identifier character before them, so `assert!` inside
/// `debug_assert!` is not double-counted.
const PANIC_TOKENS: [&str; 12] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "debug_assert_eq!",
    "debug_assert_ne!",
    "debug_assert!",
    "assert_eq!",
    "assert_ne!",
    "assert!",
];

/// One parser-lint hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParserFinding {
    /// File the construct was found in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// What was found.
    pub what: String,
}

impl fmt::Display for ParserFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file.display(), self.line, self.what)
    }
}

enum Marker {
    None,
    Valid,
    MissingReason,
}

fn marker_on(raw: &str) -> Marker {
    let Some(p) = raw.find(MARKER) else {
        return Marker::None;
    };
    let rest = &raw[p + MARKER.len()..];
    let trimmed = rest.trim_start();
    if let Some(after_paren) = trimmed.strip_prefix('(') {
        if let Some(close) = after_paren.find(')') {
            if !after_paren[..close].trim().is_empty() {
                return Marker::Valid;
            }
        }
    }
    Marker::MissingReason
}

/// Blank out comments and string/char literals, preserving byte positions
/// of real code so prev-character lookback works. `in_block` carries block
/// comment state across lines. Shared with [`crate::alloc_lint`].
pub(crate) fn strip_noncode(line: &str, in_block: &mut bool) -> String {
    let b = line.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut i = 0;
    while i < b.len() {
        if *in_block {
            if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                *in_block = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => break, // line comment
            b'/' if b.get(i + 1) == Some(&b'*') => {
                *in_block = true;
                i += 2;
            }
            b'"' => {
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'\'' => {
                // Char literal ('x' / '\n') vs lifetime tick ('a).
                if b.get(i + 1) == Some(&b'\\') {
                    let mut j = i + 2;
                    while j < b.len() && b[j] != b'\'' {
                        j += 1;
                    }
                    i = (j + 1).min(b.len());
                } else if b.get(i + 2) == Some(&b'\'') {
                    i += 3;
                } else {
                    out[i] = b[i]; // lifetime: harmless, keep
                    i += 1;
                }
            }
            c => {
                out[i] = c;
                i += 1;
            }
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

/// Flaggable constructs in one line of comment/string-stripped code.
fn flaggable(code: &str) -> Vec<String> {
    let mut hits = Vec::new();
    for tok in PANIC_TOKENS {
        let mut from = 0;
        while let Some(p) = code.get(from..).and_then(|s| s.find(tok)) {
            let at = from + p;
            let boundary = tok.starts_with('.')
                || !matches!(
                    code[..at].chars().next_back(),
                    Some(c) if c.is_ascii_alphanumeric() || c == '_'
                );
            if boundary {
                hits.push(format!("`{tok}` can panic on wire-derived data"));
            }
            from = at + tok.len();
        }
    }
    for (i, c) in code.char_indices() {
        if c != '[' {
            continue;
        }
        // An opening bracket immediately after an expression is an index;
        // after `#`, `&`, `<`, `(`, `=`, an operator, or whitespace it is
        // an attribute, type, pattern, or literal. (Indexing is never
        // written with a space before the bracket in this codebase.)
        let prev = code[..i].chars().next_back();
        if matches!(
            prev,
            Some(p) if p.is_ascii_alphanumeric() || p == '_' || p == ')' || p == ']' || p == '?'
        ) {
            hits.push("indexing `[...]` can panic on wire-derived data".into());
        }
    }
    hits
}

/// Scan one parser-module source text. `label` is used in findings.
pub fn scan_parser_source(label: &Path, src: &str) -> Vec<ParserFinding> {
    let mut out = Vec::new();
    let mut in_block = false;
    // A valid marker arms an allowance for its own line and the next line.
    let mut pending: Option<usize> = None;
    for (i, raw) in src.lines().enumerate() {
        if raw.trim_start().starts_with("#[cfg(test)]") {
            // Tests live in a trailing cfg(test) module in every designated
            // file; they may assert freely.
            break;
        }
        let carried = pending.take();
        let marker = marker_on(raw);
        if let Marker::MissingReason = marker {
            out.push(ParserFinding {
                file: label.to_path_buf(),
                line: i + 1,
                what: format!("`{MARKER}` marker without a (reason)"),
            });
        }
        let code = strip_noncode(raw, &mut in_block);
        let hits = flaggable(&code);
        if hits.is_empty() {
            if let Some(ml) = carried {
                out.push(ParserFinding {
                    file: label.to_path_buf(),
                    line: ml,
                    what: format!("stale `{MARKER}` marker allows nothing"),
                });
            }
            if let Marker::Valid = marker {
                pending = Some(i + 1);
            }
            continue;
        }
        let allowed = matches!(marker, Marker::Valid) || carried.is_some();
        if !allowed {
            for what in hits {
                out.push(ParserFinding {
                    file: label.to_path_buf(),
                    line: i + 1,
                    what,
                });
            }
        }
    }
    if let Some(ml) = pending {
        out.push(ParserFinding {
            file: PathBuf::from(label),
            line: ml,
            what: format!("stale `{MARKER}` marker allows nothing"),
        });
    }
    out
}

/// Scan every designated parser module, rooted at the workspace directory.
/// A missing module is an I/O error: renaming a parser file must update
/// [`PARSER_MODULES`] rather than silently dropping it from the wall.
pub fn scan_parser_workspace(root: &Path) -> std::io::Result<Vec<ParserFinding>> {
    let mut findings = Vec::new();
    for rel in PARSER_MODULES {
        let path = root.join(rel);
        let src = std::fs::read_to_string(&path).map_err(|e| {
            std::io::Error::new(e.kind(), format!("{rel}: {e} (renamed? update PARSER_MODULES)"))
        })?;
        findings.extend(scan_parser_source(Path::new(rel), &src));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<ParserFinding> {
        scan_parser_source(Path::new("x.rs"), src)
    }

    #[test]
    fn panicking_constructs_are_flagged() {
        for line in [
            "let x = buf.first().unwrap();",
            "let x = buf.first().expect(\"short\");",
            "panic!(\"bad byte\");",
            "unreachable!();",
            "assert!(len <= 40);",
            "assert_eq!(a, b);",
            "debug_assert!(ok);",
        ] {
            let hits = scan(line);
            assert_eq!(hits.len(), 1, "not flagged: {line} -> {hits:?}");
        }
    }

    #[test]
    fn assert_inside_debug_assert_is_counted_once() {
        assert_eq!(scan("debug_assert!(x);").len(), 1);
        assert_eq!(scan("debug_assert_eq!(x, y);").len(), 1);
    }

    #[test]
    fn expression_indexing_is_flagged_but_types_are_not() {
        assert_eq!(scan("let x = data[0];").len(), 1);
        assert_eq!(scan("let x = &buf[2..len];").len(), 1);
        assert_eq!(scan("let x = f()[1];").len(), 1);
        assert!(scan("fn f(b: &[u8]) -> [u8; 4] { todo }").is_empty());
        assert!(scan("#[derive(Debug)]").is_empty());
        assert!(scan("let a = [1, 2, 3];").is_empty());
        assert!(scan("if let [last] = chunks.remainder() {").is_empty());
        assert!(scan("let v = <[u8; 2]>::try_from(s);").is_empty());
    }

    #[test]
    fn comments_and_strings_are_not_flagged() {
        assert!(scan("// data[0].unwrap() would panic").is_empty());
        assert!(scan("let s = \"indexing like buf[0] or .unwrap()\";").is_empty());
        assert!(scan("/* assert!(x) */ let y = 1;").is_empty());
        // Block comment spanning lines.
        assert!(scan("/* start\n data[0]\n end */ let y = 1;").is_empty());
    }

    #[test]
    fn marker_on_same_or_previous_line_allows() {
        assert!(scan("assert!(x); // lint: allow-panic(caller contract)").is_empty());
        assert!(scan("// lint: allow-panic(caller contract)\nassert!(x);").is_empty());
    }

    #[test]
    fn marker_without_reason_is_a_finding() {
        let hits = scan("assert!(x); // lint: allow-panic()");
        assert!(hits.iter().any(|f| f.what.contains("without a (reason)")));
    }

    #[test]
    fn stale_marker_is_a_finding() {
        let hits = scan("// lint: allow-panic(left behind)\nlet x = 1;");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].what.contains("stale"));
        // ...including one dangling at end of file.
        let hits = scan("let y = 2;\n// lint: allow-panic(dangling)");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].what.contains("stale"));
    }

    #[test]
    fn cfg_test_tail_is_exempt() {
        let src = "fn parse() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\n";
        assert!(scan(src).is_empty());
    }

    /// The wall holds on the real workspace: every designated parser
    /// module is panic-free outside explained allowlist markers.
    #[test]
    fn designated_modules_are_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = scan_parser_workspace(&root).expect("scan");
        assert!(
            findings.is_empty(),
            "panic-free-parser lint findings:\n{}",
            findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
        );
    }
}

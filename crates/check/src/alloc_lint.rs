//! The allocation-discipline lint wall.
//!
//! The steady-state data path is allocation-free by construction: TCP
//! options live in the inline [`OptionList`](mpw_tcp::wire::OptionList)
//! (fixed capacity, no heap), frames are encoded into pooled buffers, and
//! payloads travel as refcounted sub-slices from the sender's buffer to the
//! capture file. The `mpw-bench` allocation gate *measures* that property;
//! this wall keeps the two easiest regressions from being reintroduced
//! textually, outside `#[cfg(test)]`, in the designated data-path modules:
//!
//! * **`Vec<TcpOption>`** — the pre-refactor per-segment option list. Any
//!   reappearance means a heap allocation per parsed or built segment.
//! * **`.to_vec()`** — the idiom that used to copy every captured packet
//!   out of its file buffer (and every payload out of its frame).
//!
//! Like the determinism wall in [`crate::lint`] and the panic wall in
//! [`crate::parser_lint`], this is a deliberately dumb textual scan with no
//! opt-out marker: the designated modules have zero legitimate uses of
//! either construct outside their trailing test modules.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::parser_lint::strip_noncode;

/// Data-path modules covered by the wall, relative to the workspace root.
/// Every file must exist — a rename breaks the lint loudly rather than
/// silently dropping coverage.
pub const ALLOC_MODULES: [&str; 3] = [
    "crates/tcp/src/wire.rs",
    "crates/capture/src/pcapng.rs",
    "crates/core/src/conn.rs",
];

/// Forbidden constructs and why.
const FORBIDDEN: [(&str, &str); 2] = [
    (
        "Vec<TcpOption>",
        "allocates per segment; use the inline `OptionList`",
    ),
    (
        ".to_vec()",
        "copies per packet; return a pooled/refcounted `Bytes` sub-slice",
    ),
];

/// One allocation-lint hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllocFinding {
    /// File the construct was found in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// What was found.
    pub what: String,
}

impl fmt::Display for AllocFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file.display(), self.line, self.what)
    }
}

/// Scan one data-path module source text. `label` is used in findings.
pub fn scan_alloc_source(label: &Path, src: &str) -> Vec<AllocFinding> {
    let mut out = Vec::new();
    let mut in_block = false;
    for (i, raw) in src.lines().enumerate() {
        if raw.trim_start().starts_with("#[cfg(test)]") {
            // Tests live in a trailing cfg(test) module in every designated
            // file; they may copy freely.
            break;
        }
        let code = strip_noncode(raw, &mut in_block);
        for (tok, why) in FORBIDDEN {
            if code.contains(tok) {
                out.push(AllocFinding {
                    file: label.to_path_buf(),
                    line: i + 1,
                    what: format!("`{tok}` on the data path: {why}"),
                });
            }
        }
    }
    out
}

/// Scan every designated data-path module, rooted at the workspace
/// directory. A missing module is an I/O error: renaming a file must update
/// [`ALLOC_MODULES`] rather than silently dropping it from the wall.
pub fn scan_alloc_workspace(root: &Path) -> std::io::Result<Vec<AllocFinding>> {
    let mut findings = Vec::new();
    for rel in ALLOC_MODULES {
        let path = root.join(rel);
        let src = std::fs::read_to_string(&path).map_err(|e| {
            std::io::Error::new(e.kind(), format!("{rel}: {e} (renamed? update ALLOC_MODULES)"))
        })?;
        findings.extend(scan_alloc_source(Path::new(rel), &src));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<AllocFinding> {
        scan_alloc_source(Path::new("x.rs"), src)
    }

    #[test]
    fn forbidden_constructs_are_flagged() {
        assert_eq!(scan("pub options: Vec<TcpOption>,").len(), 1);
        assert_eq!(scan("let d = pkt.to_vec();").len(), 1);
        assert_eq!(scan("let o: Vec<TcpOption> = x.to_vec();").len(), 2);
    }

    #[test]
    fn comments_strings_and_other_vecs_are_not_flagged() {
        assert!(scan("// a Vec<TcpOption> would allocate").is_empty());
        assert!(scan("let s = \"pkt.to_vec()\";").is_empty());
        assert!(scan("let v: Vec<u8> = Vec::new();").is_empty());
        assert!(scan("let v = data.to_owned();").is_empty());
    }

    #[test]
    fn cfg_test_tail_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n let v = pkt.to_vec();\n}\n";
        assert!(scan(src).is_empty());
    }

    /// The wall holds on the real workspace.
    #[test]
    fn designated_modules_are_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = scan_alloc_workspace(&root).expect("scan");
        assert!(
            findings.is_empty(),
            "allocation lint findings:\n{}",
            findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
        );
    }
}

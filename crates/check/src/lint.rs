//! The determinism lint wall.
//!
//! The protocol crates (`mpw-tcp`, `mpw-mptcp`, `mpw-sim`) must be bitwise
//! deterministic: same seed, same build → identical event order, identical
//! traces. Three classes of construct silently break that promise, and
//! each is walled off twice — by clippy (`disallowed-methods` /
//! `disallowed-types` in each crate's `clippy.toml`, enforced under
//! `-D warnings` in CI) and by this textual scan, which also catches uses
//! clippy cannot see (macros, strings that later get `eval`-style use,
//! commented-back-in code):
//!
//! * **wall clocks** — `Instant::now`, `SystemTime::now`: simulated time
//!   comes only from `mpw_sim::SimTime`;
//! * **ambient randomness** — `thread_rng`, `rand::random`: randomness
//!   comes only from the seeded `RngFactory`/`SimRng` streams;
//! * **hash-ordered collections** — `HashMap`, `HashSet`: iteration order
//!   varies across runs/platforms; protocol state uses `BTreeMap`/`BTreeSet`.
//!
//! A line may opt out with a `determinism-ok` marker comment plus a reason
//! (none of the protocol crates currently needs one).

use std::fmt;
use std::path::{Path, PathBuf};

/// Crates covered by the wall, relative to the workspace root.
pub const WALLED_CRATES: [&str; 3] = ["crates/tcp", "crates/core", "crates/sim"];

/// Forbidden tokens and why.
pub const FORBIDDEN: [(&str, &str); 6] = [
    ("Instant::now", "wall clock; use mpw_sim::SimTime"),
    ("SystemTime::now", "wall clock; use mpw_sim::SimTime"),
    ("thread_rng", "ambient randomness; use the seeded SimRng streams"),
    ("rand::random", "ambient randomness; use the seeded SimRng streams"),
    ("HashMap", "nondeterministic iteration order; use BTreeMap"),
    ("HashSet", "nondeterministic iteration order; use BTreeSet"),
];

/// One lint hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// File the token was found in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The forbidden token.
    pub token: &'static str,
    /// Why it is forbidden.
    pub reason: &'static str,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: `{}` — {}",
            self.file.display(),
            self.line,
            self.token,
            self.reason
        )
    }
}

/// Scan one source text. `label` is used in findings (usually the path).
pub fn scan_source(label: &Path, src: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if line.contains("determinism-ok") {
            continue;
        }
        for &(token, reason) in &FORBIDDEN {
            if line.contains(token) {
                out.push(Finding {
                    file: label.to_path_buf(),
                    line: i + 1,
                    token,
                    reason,
                });
            }
        }
    }
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<std::io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Scan every `.rs` file under the walled crates' `src/` (plus their
/// `tests/` and `benches/`, which must stay deterministic too), rooted at
/// the workspace directory.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for krate in WALLED_CRATES {
        for sub in ["src", "tests", "benches"] {
            let dir = root.join(krate).join(sub);
            if dir.is_dir() {
                walk(&dir, &mut files)?;
            }
        }
    }
    let mut findings = Vec::new();
    for f in files {
        let src = std::fs::read_to_string(&f)?;
        let rel = f.strip_prefix(root).unwrap_or(&f);
        findings.extend(scan_source(rel, &src));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanner_flags_each_forbidden_token() {
        for &(token, _) in &FORBIDDEN {
            let src = format!("fn f() {{ let _ = {token}(); }}\n");
            let hits = scan_source(Path::new("x.rs"), &src);
            assert_eq!(hits.len(), 1, "token {token} not flagged");
            assert_eq!(hits[0].token, token);
            assert_eq!(hits[0].line, 1);
        }
    }

    #[test]
    fn marker_comment_opts_a_line_out() {
        let src = "let t = Instant::now(); // determinism-ok: test harness timing\n";
        assert!(scan_source(Path::new("x.rs"), src).is_empty());
    }

    #[test]
    fn clean_source_has_no_findings() {
        let src = "use std::collections::BTreeMap;\nfn f(now: SimTime) {}\n";
        assert!(scan_source(Path::new("x.rs"), src).is_empty());
    }
}

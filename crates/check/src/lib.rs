//! mpw-check: correctness tooling for the mpwild MPTCP stack.
//!
//! Three facilities, described in DESIGN.md §5.8 and §5.12:
//!
//! * **Invariant oracles** live in the protocol crates themselves
//!   (`TcpSocket::validate`, `MptcpConnection::validate`,
//!   `World::validate_timers`, the coupled-CC per-ACK increase oracle).
//!   They are always compiled; the event-processing paths run them under
//!   `debug_assertions` or the `check-invariants` feature, which this
//!   crate's default features force onto its dependencies so the model
//!   checker checks them even in `--release`.
//! * **[`explore`]** — a bespoke explicit-state model checker that
//!   exhaustively enumerates bounded adversarial network schedules (drop /
//!   reorder / duplicate / timer races) over a real client–server pair of
//!   [`mpw_mptcp::MptcpConnection`] machines, checking every invariant plus
//!   end-to-end data integrity and eventual delivery, and printing a
//!   shrunk, replayable counterexample trace on failure.
//! * **[`lint_engine`]** — the token-level analysis engine behind every
//!   lint wall (DESIGN.md §5.12): a hand-rolled Rust lexer plus an
//!   item/call-graph pass, grounding six rules — `determinism` (wall
//!   clocks, ambient randomness, hash-ordered collections in the protocol
//!   crates), `panic` (a strict no-panic surface over the designated
//!   parser modules *and* call-graph panic-reachability from the protocol
//!   entry points), `seq-arith` (wraparound arithmetic on sequence-number
//!   values must funnel through the audited `tcp/seq.rs`), `alloc` (no
//!   per-segment heap constructs on the data path), and `unsafe`
//!   (forbid-or-justify across first-party crates, `vendor/` inventoried).
//!   Opt-outs are per-token `// lint: allow-<rule>(reason)` markers,
//!   counted and ratcheted by `LINT_budgets.json`. The `lint` binary
//!   emits the human and JSON reports CI gates on.
//!
//! The engine replaced three earlier line-based textual scanners
//! (`lint`, `parser_lint`, `alloc_lint`), whose `contains()` scans
//! false-positived on strings/comments, skipped whole lines on one
//! opt-out marker, and missed multi-line constructs; the fixture suite in
//! `tests/lint_fixtures.rs` keeps regression tests for each of those
//! soundness bugs.

#![forbid(unsafe_code)]

pub mod explore;
pub mod lint_engine;

//! mpw-check: correctness tooling for the mpwild MPTCP stack.
//!
//! Three facilities, described in DESIGN.md §5.8:
//!
//! * **Invariant oracles** live in the protocol crates themselves
//!   (`TcpSocket::validate`, `MptcpConnection::validate`,
//!   `World::validate_timers`, the coupled-CC per-ACK increase oracle).
//!   They are always compiled; the event-processing paths run them under
//!   `debug_assertions` or the `check-invariants` feature, which this
//!   crate's default features force onto its dependencies so the model
//!   checker checks them even in `--release`.
//! * **[`explore`]** — a bespoke explicit-state model checker that
//!   exhaustively enumerates bounded adversarial network schedules (drop /
//!   reorder / duplicate / timer races) over a real client–server pair of
//!   [`mpw_mptcp::MptcpConnection`] machines, checking every invariant plus
//!   end-to-end data integrity and eventual delivery, and printing a
//!   shrunk, replayable counterexample trace on failure.
//! * **[`lint`]** — the determinism lint wall: a textual scan of the
//!   protocol crates for wall-clock reads, ambient randomness, and
//!   hash-ordered collections, backing up the per-crate `clippy.toml`
//!   `disallowed-methods` / `disallowed-types` walls.
//! * **[`parser_lint`]** — the panic-free-parser wall (DESIGN.md §5.9): in
//!   the designated parser modules (`tcp/wire.rs`, `capture/pcapng.rs`,
//!   `capture/analyze.rs`), panicking macros and expression indexing on
//!   wire-derived bytes are forbidden outside `#[cfg(test)]`, allowlisted
//!   only by explicit `lint: allow-panic(reason)` markers. It is the static
//!   half of the adversarial-input story whose dynamic half is `mpw-fuzz`.
//! * **[`alloc_lint`]** — the allocation-discipline wall (DESIGN.md §5.10):
//!   the data-path modules (`tcp/wire.rs`, `capture/pcapng.rs`) must not
//!   reintroduce `Vec<TcpOption>` or `.to_vec()` outside `#[cfg(test)]`. It
//!   is the static half of the zero-allocation story whose dynamic half is
//!   the `mpw-bench` allocation gate.

pub mod alloc_lint;
pub mod explore;
pub mod lint;
pub mod parser_lint;

//! CLI for the lint engine (DESIGN.md §5.12–§5.13).
//!
//! Runs all six walls — determinism, panic (strict decode surface +
//! typed call-graph reachability), seq-arith (taint), handler-oracle,
//! alloc, unsafe — over the workspace, prints the human report,
//! optionally emits the JSON artifact, and gates against
//! `LINT_budgets.json`: any unallowed finding fails, and per-rule
//! allow-marker counts may not exceed their budgeted ceiling.
//!
//! ```text
//! lint [--root DIR] [--json] [--out PATH] [--budgets PATH] [--no-gate]
//!      [--dot PATH] [--explain ID]
//! ```
//!
//! `--dot PATH` writes the resolved call graph as Graphviz. `--explain
//! ID` (ID as printed in the JSON report: `rule@file:line:col`) prints
//! the full story behind one finding — including suppressed ones — with
//! the typed entry path for panic findings, then exits.
//!
//! Exit codes: 0 = clean and within budgets, 1 = findings or budget
//! violations, 2 = I/O or usage error (or unknown --explain id).

use std::path::PathBuf;

use mpw_check::lint_engine::{self, resolve::Resolved, rules, Config, Workspace};

fn main() {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut out_path: Option<PathBuf> = None;
    let mut budgets_path: Option<PathBuf> = None;
    let mut gate = true;
    let mut dot_path: Option<PathBuf> = None;
    let mut explain: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = || -> ! {
        eprintln!(
            "usage: lint [--root DIR] [--json] [--out PATH] [--budgets PATH] [--no-gate] \
             [--dot PATH] [--explain ID]"
        );
        std::process::exit(2);
    };
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                root = PathBuf::from(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--json" => json = true,
            "--out" => {
                i += 1;
                out_path = Some(PathBuf::from(args.get(i).cloned().unwrap_or_else(|| usage())));
            }
            "--budgets" => {
                i += 1;
                budgets_path =
                    Some(PathBuf::from(args.get(i).cloned().unwrap_or_else(|| usage())));
            }
            "--no-gate" => gate = false,
            "--dot" => {
                i += 1;
                dot_path = Some(PathBuf::from(args.get(i).cloned().unwrap_or_else(|| usage())));
            }
            "--explain" => {
                i += 1;
                explain = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }
    // Fall back to the workspace root when invoked via `cargo run` from
    // somewhere else: the manifest dir is crates/check.
    if !root.join("crates").is_dir() {
        if let Ok(md) = std::env::var("CARGO_MANIFEST_DIR") {
            let ws = PathBuf::from(md).join("../..");
            if ws.join("crates").is_dir() {
                root = ws;
            }
        }
    }

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("lint: failed to load workspace at {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    let cfg = Config::default_workspace();

    if let Some(p) = dot_path {
        let r = Resolved::build(&ws);
        if let Err(e) = std::fs::write(&p, r.to_dot(&ws)) {
            eprintln!("lint: writing {} failed: {e}", p.display());
            std::process::exit(2);
        }
        println!("lint: call graph written to {}", p.display());
    }

    if let Some(id) = explain {
        std::process::exit(run_explain(&ws, &cfg, &id));
    }

    let mut report = match lint_engine::run(&ws, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = report.inventory_vendor(&root) {
        eprintln!("lint: vendor inventory failed: {e}");
        std::process::exit(2);
    }

    print!("{}", report.human());
    if json {
        print!("{}", report.json());
    }
    if let Some(p) = out_path {
        if let Err(e) = std::fs::write(&p, report.json()) {
            eprintln!("lint: writing {} failed: {e}", p.display());
            std::process::exit(2);
        }
        println!("lint: JSON report written to {}", p.display());
    }

    let mut dirty = !report.findings.is_empty();
    if gate {
        let bp = budgets_path.unwrap_or_else(|| root.join("LINT_budgets.json"));
        match std::fs::read_to_string(&bp) {
            Ok(src) => {
                let (violations, hints) = report.gate(&src);
                for h in hints {
                    println!("lint (ratchet): {h}");
                }
                for v in &violations {
                    eprintln!("lint (gate): {v}");
                }
                dirty |= !violations.is_empty();
            }
            Err(e) => {
                eprintln!("lint: reading budgets {} failed: {e}", bp.display());
                std::process::exit(2);
            }
        }
    }
    if dirty {
        std::process::exit(1);
    }
    println!("lint: clean");
}

/// `--explain ID`: print the full story behind one finding, allowed or
/// not. Returns the process exit code.
fn run_explain(ws: &Workspace, cfg: &Config, id: &str) -> i32 {
    let raw = lint_engine::raw_findings(ws, cfg);
    let Some(f) = raw.iter().find(|f| f.id() == id) else {
        eprintln!("lint: no finding with id {id} (ids look like panic@crates/x/src/a.rs:10:5)");
        return 2;
    };
    println!("{f}");

    // Is it suppressed by an allow marker?
    let allow = ws
        .file(&f.file)
        .and_then(|sf| {
            sf.allows
                .iter()
                .find(|a| a.rule == f.rule && a.target_line == f.line)
        });
    match allow {
        Some(a) => println!(
            "  suppressed by `allow-{}` on line {} (reason: {})",
            a.rule, a.marker_line, a.reason
        ),
        None => println!("  not suppressed: this finding fails the gate"),
    }

    // Panic findings carry a typed entry path — print it hop by hop.
    if f.rule == "panic" {
        let r = Resolved::build(ws);
        let (_, paths) = rules::panic_v2_with_paths(ws, cfg, &r);
        if let Some(p) = paths
            .iter()
            .find(|p| p.file == f.file && p.lines.0 <= f.line && f.line <= p.lines.1)
        {
            println!("  typed call path from entry:");
            for (qname, file, line) in &p.hops {
                println!("    {qname} ({file}:{line})");
            }
        }
    }
    0
}

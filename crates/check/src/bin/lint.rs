//! CLI for the token-level lint engine (DESIGN.md §5.12).
//!
//! Runs all six walls — determinism, panic (surface + reachability),
//! seq-arith, alloc, unsafe — over the workspace, prints the human
//! report, optionally emits the JSON artifact, and gates against
//! `LINT_budgets.json`: any unallowed finding fails, and per-rule
//! allow-marker counts may not exceed their budgeted ceiling.
//!
//! ```text
//! lint [--root DIR] [--json] [--out PATH] [--budgets PATH] [--no-gate]
//! ```
//!
//! Exit codes: 0 = clean and within budgets, 1 = findings or budget
//! violations, 2 = I/O or usage error.

use std::path::PathBuf;

use mpw_check::lint_engine::{self, Config, Workspace};

fn main() {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut out_path: Option<PathBuf> = None;
    let mut budgets_path: Option<PathBuf> = None;
    let mut gate = true;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = || -> ! {
        eprintln!("usage: lint [--root DIR] [--json] [--out PATH] [--budgets PATH] [--no-gate]");
        std::process::exit(2);
    };
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                root = PathBuf::from(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--json" => json = true,
            "--out" => {
                i += 1;
                out_path = Some(PathBuf::from(args.get(i).cloned().unwrap_or_else(|| usage())));
            }
            "--budgets" => {
                i += 1;
                budgets_path =
                    Some(PathBuf::from(args.get(i).cloned().unwrap_or_else(|| usage())));
            }
            "--no-gate" => gate = false,
            _ => usage(),
        }
        i += 1;
    }
    // Fall back to the workspace root when invoked via `cargo run` from
    // somewhere else: the manifest dir is crates/check.
    if !root.join("crates").is_dir() {
        if let Ok(md) = std::env::var("CARGO_MANIFEST_DIR") {
            let ws = PathBuf::from(md).join("../..");
            if ws.join("crates").is_dir() {
                root = ws;
            }
        }
    }

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("lint: failed to load workspace at {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    let cfg = Config::default_workspace();
    let mut report = match lint_engine::run(&ws, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = report.inventory_vendor(&root) {
        eprintln!("lint: vendor inventory failed: {e}");
        std::process::exit(2);
    }

    print!("{}", report.human());
    if json {
        print!("{}", report.json());
    }
    if let Some(p) = out_path {
        if let Err(e) = std::fs::write(&p, report.json()) {
            eprintln!("lint: writing {} failed: {e}", p.display());
            std::process::exit(2);
        }
        println!("lint: JSON report written to {}", p.display());
    }

    let mut dirty = !report.findings.is_empty();
    if gate {
        let bp = budgets_path.unwrap_or_else(|| root.join("LINT_budgets.json"));
        match std::fs::read_to_string(&bp) {
            Ok(src) => {
                let (violations, hints) = report.gate(&src);
                for h in hints {
                    println!("lint (ratchet): {h}");
                }
                for v in &violations {
                    eprintln!("lint (gate): {v}");
                }
                dirty |= !violations.is_empty();
            }
            Err(e) => {
                eprintln!("lint: reading budgets {} failed: {e}", bp.display());
                std::process::exit(2);
            }
        }
    }
    if dirty {
        std::process::exit(1);
    }
    println!("lint: clean");
}

//! CLI for the lint walls: the determinism wall (wall-clock reads, ambient
//! randomness, hash-ordered collections in the protocol crates), the
//! panic-free-parser wall (panicking byte access in the designated parser
//! modules), and the allocation wall (per-segment heap constructs in the
//! data-path modules). Exit codes: 0 = clean, 1 = findings, 2 = I/O error.

use std::path::PathBuf;

fn main() {
    let mut root = PathBuf::from(".");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                root = PathBuf::from(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("usage: lint [--root DIR]");
                    std::process::exit(2);
                }));
            }
            _ => {
                eprintln!("usage: lint [--root DIR]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // Fall back to the workspace root when invoked via `cargo run` from
    // somewhere else: the manifest dir is crates/check.
    if !root.join("crates").is_dir() {
        if let Ok(md) = std::env::var("CARGO_MANIFEST_DIR") {
            let ws = PathBuf::from(md).join("../..");
            if ws.join("crates").is_dir() {
                root = ws;
            }
        }
    }
    let mut dirty = false;
    match mpw_check::lint::scan_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("determinism lint: clean");
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("determinism lint: {} finding(s)", findings.len());
            dirty = true;
        }
        Err(e) => {
            eprintln!("determinism lint: scan failed: {e}");
            std::process::exit(2);
        }
    }
    match mpw_check::parser_lint::scan_parser_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("panic-free-parser lint: clean");
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("panic-free-parser lint: {} finding(s)", findings.len());
            dirty = true;
        }
        Err(e) => {
            eprintln!("panic-free-parser lint: scan failed: {e}");
            std::process::exit(2);
        }
    }
    match mpw_check::alloc_lint::scan_alloc_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("allocation lint: clean");
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("allocation lint: {} finding(s)", findings.len());
            dirty = true;
        }
        Err(e) => {
            eprintln!("allocation lint: scan failed: {e}");
            std::process::exit(2);
        }
    }
    if dirty {
        std::process::exit(1);
    }
}

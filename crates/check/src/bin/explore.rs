//! CLI for the explicit-state model checker. See EXPERIMENTS.md §"mpw-check".
//!
//! Exit codes: 0 = clean (or violation found under `--expect-violation`),
//! 1 = violation found, 2 = usage / expectation errors.

use mpw_check::explore::{explore, format_trace, CheckConfig, Inject};
use mpw_mptcp::conn::SynMode;
use mpw_mptcp::Coupling;

fn usage() -> ! {
    eprintln!(
        "usage: explore [--depth N] [--max-states N] [--max-drops N] [--max-dups N]\n\
         \x20              [--reorder N] [--data BYTES] [--mss BYTES] [--ssthresh BYTES]\n\
         \x20              [--coupling coupled|olia|reno] [--syn-mode delayed|simultaneous]\n\
         \x20              [--inject unclamped-cc|overlapping-dss] [--expect-violation]\n\
         \x20              [--min-states N] [--json]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = CheckConfig::default();
    let mut expect_violation = false;
    let mut min_states = 0usize;
    let mut json = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let take = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--depth" => cfg.depth = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--max-states" => cfg.max_states = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--max-drops" => cfg.max_drops = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--max-dups" => cfg.max_dups = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--reorder" => cfg.reorder = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--data" => cfg.data_len = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--mss" => cfg.mss = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--ssthresh" => cfg.ssthresh = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--coupling" => {
                cfg.coupling = match take(&mut i).as_str() {
                    "coupled" => Coupling::Coupled,
                    "olia" => Coupling::Olia,
                    "reno" | "uncoupled" => Coupling::Reno,
                    _ => usage(),
                }
            }
            "--syn-mode" => {
                cfg.syn_mode = match take(&mut i).as_str() {
                    "delayed" => SynMode::Delayed,
                    "simultaneous" => SynMode::Simultaneous,
                    _ => usage(),
                }
            }
            "--inject" => {
                cfg.inject = match take(&mut i).as_str() {
                    "unclamped-cc" => Some(Inject::UnclampedCc),
                    "overlapping-dss" => Some(Inject::OverlappingDss),
                    _ => usage(),
                }
            }
            "--expect-violation" => expect_violation = true,
            "--min-states" => min_states = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--json" => json = true,
            _ => usage(),
        }
        i += 1;
    }

    let res = explore(&cfg);

    if json {
        let violation = match &res.violation {
            Some(v) => format!(
                "{{\"message\":{:?},\"path\":[{}]}}",
                v.message,
                v.path
                    .iter()
                    .map(|a| format!("{:?}", a.to_string()))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            None => "null".into(),
        };
        println!(
            "{{\"states\":{},\"transitions\":{},\"quiescent\":{},\"deepest\":{},\"truncated\":{},\"violation\":{}}}",
            res.states, res.transitions, res.quiescent, res.deepest, res.truncated, violation
        );
    } else {
        println!(
            "explored {} distinct states, {} transitions (deepest {}, {} quiescent{})",
            res.states,
            res.transitions,
            res.deepest,
            res.quiescent,
            if res.truncated { ", truncated by --max-states" } else { "" },
        );
    }

    match res.violation {
        Some(v) => {
            eprintln!("VIOLATION: {}", v.message);
            eprintln!(
                "counterexample ({} actions, shrunk): {}",
                v.path.len(),
                v.path.iter().map(|a| a.to_string()).collect::<Vec<_>>().join("; ")
            );
            eprintln!("replay:\n{}", format_trace(&cfg, &v.path));
            if expect_violation {
                eprintln!("(expected: planted bug was caught)");
                std::process::exit(0);
            }
            std::process::exit(1);
        }
        None => {
            if expect_violation {
                eprintln!("expected a violation (planted bug NOT caught)");
                std::process::exit(2);
            }
            if res.states < min_states {
                eprintln!(
                    "explored only {} states, --min-states {} required",
                    res.states, min_states
                );
                std::process::exit(2);
            }
        }
    }
}

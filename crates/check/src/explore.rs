//! An explicit-state model checker for the MPTCP machines.
//!
//! The system under test is a real client [`MptcpConnection`] talking to a
//! real server one through two explicit frame queues — no event loop, no
//! link models, no wall clock. The checker owns the only nondeterminism in
//! that closed system: *which queued frame is delivered next* (within a
//! bounded reorder window), whether it is dropped or duplicated (bounded
//! budgets), and when pending retransmission/delayed-ACK timers fire. It
//! enumerates every such adversarial schedule up to a depth bound with DFS
//! and state-fingerprint deduplication, checking after every transition:
//!
//! * every protocol-invariant oracle (`MptcpConnection::validate`, which
//!   recurses into each subflow's `TcpSocket::validate` and the coupled-CC
//!   increase oracle) — both explicitly and via the `debug_check` panics
//!   the `check-invariants` feature arms inside the stack;
//! * the wire codec: every emitted segment must survive an
//!   encode→parse round trip bit-identically;
//! * end-to-end data integrity: bytes the server app receives must be a
//!   prefix of exactly what the client app wrote;
//! * byte conservation: drained app bytes always equal the connection's
//!   `delivered_offset`.
//!
//! A state with no enabled action is *quiescent*: no frames in flight, no
//! timer armed. The only legitimate quiescent state is full completion —
//! all data delivered, both directions closed — so anything else is
//! reported as a deadlock / eventual-delivery violation.
//!
//! States are re-reached by deterministic replay of their action prefix
//! from the fixed initial state (connections are not cloneable, and replay
//! keeps the checker honest: a counterexample *is* its action list). On a
//! violation the path is shrunk by greedy action deletion and printed as a
//! tcpdump-style trace replayed through [`mpw_sim::trace`].

use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::hash::Hasher;
use std::panic::{catch_unwind, AssertUnwindSafe};

use bytes::Bytes;
use mpw_mptcp::conn::{MptcpConfig, MptcpConnection, SynMode};
use mpw_mptcp::Coupling;
use mpw_sim::trace::{flags, Dir as TraceDir, SegmentRecord, Trace, TraceEvent, TraceLevel};
use mpw_sim::{SimDuration, SimRng, SimTime};
use mpw_tcp::wire::{encode_packet, parse_packet, tcp_flags, Addr, Endpoint, IpHeader, PROTO_TCP};
use mpw_tcp::TcpSegment;

/// Which planted bug to arm (see ISSUE 3's acceptance criteria).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inject {
    /// Disable the RFC 6356 TCP-compatibility clamp in the coupled
    /// controller; caught by the per-ACK increase oracle.
    UnclampedCc,
    /// Shift recorded DSS mappings back one byte, silently corrupting the
    /// dseq space; caught by the data-integrity / eventual-delivery checks.
    OverlappingDss,
}

/// Exploration bounds and scenario shape.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Maximum schedule length (actions per path).
    pub depth: usize,
    /// Stop after this many distinct states (0 = unbounded).
    pub max_states: usize,
    /// Frame-drop budget per schedule.
    pub max_drops: usize,
    /// Frame-duplication budget per schedule.
    pub max_dups: usize,
    /// A queued frame may be delivered from any of the first `reorder`
    /// positions (1 = strictly in-order delivery).
    pub reorder: usize,
    /// Application bytes the client uploads.
    pub data_len: usize,
    /// MSS for both subflows (small, so the upload spans several DSS
    /// mappings and reassembly/reinjection paths are reachable).
    pub mss: usize,
    /// Initial ssthresh in bytes (small values put the coupled controller
    /// into congestion avoidance where RFC 6356 applies).
    pub ssthresh: usize,
    /// Coupled congestion-control variant.
    pub coupling: Coupling,
    /// SYN timing for the join subflow (the paper's §4.1.2 axis; in
    /// `Simultaneous` mode the MP_JOIN SYN can race the MP_CAPABLE one).
    pub syn_mode: SynMode,
    /// Planted bug, if any.
    pub inject: Option<Inject>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            depth: 11,
            max_states: 200_000,
            max_drops: 1,
            max_dups: 1,
            reorder: 2,
            data_len: 600,
            mss: 200,
            ssthresh: 400,
            coupling: Coupling::Olia,
            syn_mode: SynMode::Delayed,
            inject: None,
        }
    }
}

/// Direction of a frame queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetDir {
    /// Client → server.
    C2s,
    /// Server → client.
    S2c,
}

/// Which endpoint a timer action fires on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// The connecting endpoint.
    Client,
    /// The accepting endpoint.
    Server,
}

/// One adversarial scheduling choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Deliver the frame at queue position `1` (< reorder window).
    Deliver(NetDir, usize),
    /// Drop the frame at the head of the queue.
    Drop(NetDir),
    /// Re-queue a copy of the frame at the head of the queue.
    Dup(NetDir),
    /// Jump the clock to the side's earliest timer deadline and fire it.
    Timer(Side),
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = |d: NetDir| match d {
            NetDir::C2s => "c→s",
            NetDir::S2c => "s→c",
        };
        match self {
            Action::Deliver(d, i) => write!(f, "deliver {}[{}]", dir(*d), i),
            Action::Drop(d) => write!(f, "drop {}", dir(*d)),
            Action::Dup(d) => write!(f, "dup {}", dir(*d)),
            Action::Timer(Side::Client) => write!(f, "timer client"),
            Action::Timer(Side::Server) => write!(f, "timer server"),
        }
    }
}

/// A violation: the failing schedule (already shrunk by the search entry
/// points) and what went wrong at its last action.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Action schedule from the initial state to the failure.
    pub path: Vec<Action>,
    /// Violation message (oracle error, panic payload, or deadlock report).
    pub message: String,
}

/// Exploration outcome.
#[derive(Clone, Debug, Default)]
pub struct ExploreResult {
    /// Distinct states visited (by fingerprint).
    pub states: usize,
    /// Transitions taken (including ones landing on known states).
    pub transitions: usize,
    /// Quiescent (fully terminated) states reached.
    pub quiescent: usize,
    /// Deepest schedule explored.
    pub deepest: usize,
    /// Whether `max_states` truncated the search.
    pub truncated: bool,
    /// First violation found, with a shrunk schedule.
    pub violation: Option<Violation>,
}

const CLIENT_ADDRS: [Addr; 2] = [Addr::new(10, 0, 0, 1), Addr::new(10, 0, 1, 1)];
const SERVER_ADDR: Addr = Addr::new(10, 9, 0, 1);
const SERVER_PORT: u16 = 80;

/// The deterministic upload payload: position-dependent so any byte landing
/// at the wrong connection-level offset is detected.
fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i.wrapping_mul(31) ^ (i >> 8)) as u8).collect()
}

/// A frame in flight.
#[derive(Clone, Debug)]
struct Wire {
    src: Endpoint,
    dst: Endpoint,
    seg: TcpSegment,
}

/// The closed two-endpoint system the checker drives.
struct Sut {
    cfg: CheckConfig,
    now: SimTime,
    client: MptcpConnection,
    server: Option<MptcpConnection>,
    server_closed: bool,
    c2s: VecDeque<Wire>,
    s2c: VecDeque<Wire>,
    /// MP_JOIN SYNs that arrived before the MP_CAPABLE created the server
    /// (reachable under reordering in Simultaneous mode).
    held_joins: Vec<Wire>,
    drops_used: usize,
    dups_used: usize,
    expected: Vec<u8>,
    server_rx: Vec<u8>,
    client_rx: Vec<u8>,
    /// Optional replay trace (counterexample printing).
    trace: Option<Trace>,
}

fn mptcp_config(cfg: &CheckConfig) -> MptcpConfig {
    let mut c = MptcpConfig::default();
    c.tcp.mss = cfg.mss;
    c.cc.mss = cfg.mss;
    c.cc.initial_ssthresh = cfg.ssthresh;
    c.coupling = cfg.coupling;
    c.syn_mode = cfg.syn_mode;
    c.max_subflows = 2;
    c.record_ofo_samples = false;
    c
}

impl Sut {
    fn new(cfg: &CheckConfig, with_trace: bool) -> Result<Sut, String> {
        let mut client = MptcpConnection::connect(
            mptcp_config(cfg),
            1,
            CLIENT_ADDRS.to_vec(),
            Endpoint::new(SERVER_ADDR, SERVER_PORT),
            SimRng::seeded(0xC0FFEE),
            SimTime::ZERO,
        );
        match cfg.inject {
            Some(Inject::OverlappingDss) => client.inject_overlapping_dss(),
            Some(Inject::UnclampedCc) => client.inject_unclamped_cc(),
            None => {}
        }
        let expected = pattern(cfg.data_len);
        let pushed = client.send(Bytes::from(expected.clone()));
        if pushed != cfg.data_len {
            return Err(format!(
                "send buffer refused upload: {pushed} of {} bytes",
                cfg.data_len
            ));
        }
        client.close();
        let mut sut = Sut {
            cfg: cfg.clone(),
            now: SimTime::ZERO,
            client,
            server: None,
            server_closed: false,
            c2s: VecDeque::new(),
            s2c: VecDeque::new(),
            held_joins: Vec::new(),
            drops_used: 0,
            dups_used: 0,
            expected,
            server_rx: Vec::new(),
            client_rx: Vec::new(),
            trace: with_trace.then(|| Trace::new(TraceLevel::Full)),
        };
        sut.pump()?;
        sut.health_check()?;
        Ok(sut)
    }

    /// Send a segment into a queue, round-tripping it through the wire
    /// codec (an oracle in itself: encode→parse must be the identity).
    fn enqueue(&mut self, from_client: bool, subflow: usize, w: Wire) -> Result<(), String> {
        let ip = IpHeader {
            src: w.src.addr,
            dst: w.dst.addr,
            protocol: PROTO_TCP,
            ttl: 64,
        };
        let bytes = encode_packet(&ip, &w.seg);
        let (pip, pseg) =
            parse_packet(&bytes).map_err(|e| format!("wire codec: encode→parse failed: {e:?}"))?;
        if pip != ip || pseg != w.seg {
            return Err(format!(
                "wire codec: segment not preserved across encode→parse\n  sent:   {:?}\n  parsed: {:?}",
                w.seg, pseg
            ));
        }
        if let Some(t) = &mut self.trace {
            t.emit(self.now, TraceEvent::SegSent(record(from_client, subflow, &pseg)));
        }
        let q = if from_client { &mut self.c2s } else { &mut self.s2c };
        q.push_back(Wire { seg: pseg, ..w });
        Ok(())
    }

    /// Drain owed segments and app-level deliveries from both endpoints
    /// until neither makes progress.
    fn pump(&mut self) -> Result<(), String> {
        for _ in 0..100_000 {
            let mut progressed = false;
            if let Some((idx, seg)) = self.client.poll_transmit(self.now) {
                let (src, dst) = {
                    let sf = &self.client.subflows[idx];
                    (sf.local, sf.remote)
                };
                self.enqueue(true, idx, Wire { src, dst, seg })?;
                progressed = true;
            }
            let server_out = match &mut self.server {
                Some(server) => server.poll_transmit(self.now).map(|(idx, seg)| {
                    let sf = &server.subflows[idx];
                    (idx, sf.local, sf.remote, seg)
                }),
                None => None,
            };
            if let Some((idx, src, dst, seg)) = server_out {
                self.enqueue(false, idx, Wire { src, dst, seg })?;
                progressed = true;
            }
            while let Some(b) = self.client.recv() {
                self.client_rx.extend_from_slice(&b);
                progressed = true;
            }
            if let Some(server) = &mut self.server {
                while let Some(b) = server.recv() {
                    self.server_rx.extend_from_slice(&b);
                    progressed = true;
                }
                // Server app: half-close back once the upload direction is
                // done, so teardown (DATA_FIN both ways, subflow FINs) is
                // part of the explored space.
                if !self.server_closed && server.peer_closed() {
                    server.close();
                    server.post_event(self.now);
                    self.server_closed = true;
                    progressed = true;
                }
            }
            if !progressed {
                return Ok(());
            }
        }
        Err("livelock: pump did not converge in 100000 iterations".into())
    }

    fn deliver(&mut self, dir: NetDir, i: usize) -> Result<bool, String> {
        let q = match dir {
            NetDir::C2s => &mut self.c2s,
            NetDir::S2c => &mut self.s2c,
        };
        if i >= q.len() || i >= self.cfg.reorder {
            return Ok(false);
        }
        let w = q.remove(i).expect("bounds checked");
        self.now += SimDuration::from_millis(1);
        match dir {
            NetDir::C2s => self.deliver_to_server(w)?,
            NetDir::S2c => self.deliver_to_client(w)?,
        }
        self.pump()?;
        Ok(true)
    }

    fn deliver_to_client(&mut self, w: Wire) -> Result<(), String> {
        let idx = self
            .client
            .subflows
            .iter()
            .position(|sf| sf.local == w.dst && sf.remote == w.src);
        if let Some(t) = &mut self.trace {
            t.emit(self.now, TraceEvent::SegRecvd(record(false, idx.unwrap_or(0), &w.seg)));
        }
        if let Some(idx) = idx {
            self.client.on_segment(idx, &w.seg, self.now);
        }
        Ok(())
    }

    fn deliver_to_server(&mut self, w: Wire) -> Result<(), String> {
        if self.server.is_some() {
            let idx = self
                .server
                .as_ref()
                .and_then(|s| {
                    s.subflows
                        .iter()
                        .position(|sf| sf.local == w.dst && sf.remote == w.src)
                });
            if let Some(t) = &mut self.trace {
                t.emit(self.now, TraceEvent::SegRecvd(record(true, idx.unwrap_or(0), &w.seg)));
            }
            if let Some(server) = self.server.as_mut() {
                if let Some(idx) = idx {
                    server.on_segment(idx, &w.seg, self.now);
                } else if w.seg.has(tcp_flags::SYN) && !w.seg.has(tcp_flags::ACK) {
                    // New subflow: an MP_JOIN for this connection.
                    server.accept_join(w.dst, w.src, &w.seg, self.now);
                    server.post_event(self.now);
                }
            }
            return Ok(());
        }
        if let Some(t) = &mut self.trace {
            t.emit(self.now, TraceEvent::SegRecvd(record(true, 0, &w.seg)));
        }
        if !w.seg.has(tcp_flags::SYN) || w.seg.has(tcp_flags::ACK) {
            return Ok(()); // no listener state for this frame; drop
        }
        let is_join = w.seg.mptcp().is_some_and(|m| {
            matches!(m, mpw_tcp::wire::MptcpOption::Join { .. })
        });
        if is_join {
            // JOIN beat the MP_CAPABLE (simultaneous SYNs + reordering):
            // hold it the way the host does.
            self.held_joins.push(w);
            return Ok(());
        }
        let server = MptcpConnection::accept(
            mptcp_config(&self.cfg),
            1,
            w.dst,
            w.src,
            vec![SERVER_ADDR],
            &w.seg,
            SimRng::seeded(0xBEEF),
            self.now,
        )
        .ok_or("accept: MP_CAPABLE SYN rejected")?;
        self.server = Some(server);
        let held = std::mem::take(&mut self.held_joins);
        let server = self.server.as_mut().expect("just created");
        for j in held {
            server.accept_join(j.dst, j.src, &j.seg, self.now);
        }
        server.post_event(self.now);
        Ok(())
    }

    fn fire_timer(&mut self, side: Side) -> Result<bool, String> {
        let conn = match side {
            Side::Client => Some(&mut self.client),
            Side::Server => self.server.as_mut(),
        };
        let Some(conn) = conn else { return Ok(false) };
        let Some(t) = conn.next_timeout() else {
            return Ok(false);
        };
        // Untimed abstraction: a pending timer may always fire "next"; the
        // clock jumps straight to its deadline.
        self.now = self.now.max(t);
        let now = self.now;
        conn.on_timer(now);
        self.pump()?;
        Ok(true)
    }

    /// Apply one action. `Ok(false)` = action infeasible in this state
    /// (state unchanged apart from a possible no-op), `Err` = violation.
    fn apply(&mut self, a: Action) -> Result<bool, String> {
        match a {
            Action::Deliver(dir, i) => self.deliver(dir, i),
            Action::Drop(dir) => {
                if self.drops_used >= self.cfg.max_drops {
                    return Ok(false);
                }
                let q = match dir {
                    NetDir::C2s => &mut self.c2s,
                    NetDir::S2c => &mut self.s2c,
                };
                if q.pop_front().is_none() {
                    return Ok(false);
                }
                self.drops_used += 1;
                Ok(true)
            }
            Action::Dup(dir) => {
                if self.dups_used >= self.cfg.max_dups {
                    return Ok(false);
                }
                let q = match dir {
                    NetDir::C2s => &mut self.c2s,
                    NetDir::S2c => &mut self.s2c,
                };
                let Some(front) = q.front().cloned() else {
                    return Ok(false);
                };
                q.push_back(front);
                self.dups_used += 1;
                Ok(true)
            }
            Action::Timer(side) => self.fire_timer(side),
        }
    }

    /// All actions enabled in this state, in a fixed deterministic order.
    fn enabled(&self) -> Vec<Action> {
        let mut out = Vec::new();
        for (dir, q) in [(NetDir::C2s, &self.c2s), (NetDir::S2c, &self.s2c)] {
            for i in 0..q.len().min(self.cfg.reorder) {
                out.push(Action::Deliver(dir, i));
            }
        }
        if self.drops_used < self.cfg.max_drops {
            for (dir, q) in [(NetDir::C2s, &self.c2s), (NetDir::S2c, &self.s2c)] {
                if !q.is_empty() {
                    out.push(Action::Drop(dir));
                }
            }
        }
        if self.dups_used < self.cfg.max_dups {
            for (dir, q) in [(NetDir::C2s, &self.c2s), (NetDir::S2c, &self.s2c)] {
                if !q.is_empty() {
                    out.push(Action::Dup(dir));
                }
            }
        }
        if self.client.next_timeout().is_some() {
            out.push(Action::Timer(Side::Client));
        }
        if self.server.as_ref().is_some_and(|s| s.next_timeout().is_some()) {
            out.push(Action::Timer(Side::Server));
        }
        out
    }

    /// The safety oracle, run after every transition.
    fn health_check(&self) -> Result<(), String> {
        self.client.validate().map_err(|e| format!("client: {e}"))?;
        if let Some(s) = &self.server {
            s.validate().map_err(|e| format!("server: {e}"))?;
        }
        // End-to-end data integrity: what the server app read must be a
        // prefix of what the client app wrote.
        if self.server_rx.len() > self.expected.len() {
            return Err(format!(
                "integrity: server received {} bytes, client only sent {}",
                self.server_rx.len(),
                self.expected.len()
            ));
        }
        if let Some(i) = (0..self.server_rx.len()).find(|&i| self.server_rx[i] != self.expected[i])
        {
            return Err(format!(
                "integrity: server byte {} is {:#04x}, client sent {:#04x}",
                i, self.server_rx[i], self.expected[i]
            ));
        }
        if !self.client_rx.is_empty() {
            return Err(format!(
                "integrity: client app received {} bytes; server never writes",
                self.client_rx.len()
            ));
        }
        // Conservation: the app-visible stream and the connection's own
        // delivered-offset accounting must agree (recv is fully drained).
        if let Some(s) = &self.server {
            if s.delivered_offset() != self.server_rx.len() as u64 {
                return Err(format!(
                    "conservation: server delivered_offset {} != {} bytes drained",
                    s.delivered_offset(),
                    self.server_rx.len()
                ));
            }
        }
        Ok(())
    }

    /// At quiescence (no frames, no timers) the only legal state is full
    /// completion: everything delivered and both directions closed.
    fn quiescent_ok(&self) -> Result<(), String> {
        let Some(s) = &self.server else {
            return Err("deadlock: quiescent before the server ever accepted".into());
        };
        if self.server_rx != self.expected {
            return Err(format!(
                "eventual delivery: quiescent with {} of {} bytes delivered",
                self.server_rx.len(),
                self.expected.len()
            ));
        }
        if !s.peer_closed() {
            return Err("deadlock: quiescent but the server never saw DATA_FIN".into());
        }
        if !self.client.peer_closed() {
            return Err("deadlock: quiescent but the client never saw the server's DATA_FIN".into());
        }
        Ok(())
    }

    /// Hash of everything that defines the state, *excluding* absolute
    /// times (untimed abstraction — schedules differing only in clock
    /// values collapse).
    fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.client.fingerprint(&mut h);
        match &self.server {
            Some(s) => {
                h.write_u8(1);
                s.fingerprint(&mut h);
            }
            None => h.write_u8(0),
        }
        for q in [&self.c2s, &self.s2c] {
            h.write_usize(q.len());
            for w in q {
                hash_wire(&mut h, w);
            }
        }
        h.write_usize(self.held_joins.len());
        for w in &self.held_joins {
            hash_wire(&mut h, w);
        }
        h.write_usize(self.drops_used);
        h.write_usize(self.dups_used);
        h.write_usize(self.server_rx.len());
        h.write_usize(self.client_rx.len());
        h.write_u8(self.server_closed as u8);
        h.finish()
    }
}

fn record(sent_by_client: bool, subflow: usize, seg: &TcpSegment) -> SegmentRecord {
    SegmentRecord {
        conn: 1,
        subflow: subflow as u8,
        dir: if sent_by_client {
            TraceDir::ClientToServer
        } else {
            TraceDir::ServerToClient
        },
        seq: seg.seq.0,
        ack: seg.ack.0,
        len: seg.payload.len() as u32,
        flags: flags::from_wire(seg.flags),
        dseq: seg.dss().and_then(|(_, m, _)| m.map(|mm| mm.dseq)),
        is_rexmit: false,
    }
}

fn hash_wire(h: &mut impl Hasher, w: &Wire) {
    h.write_u32(w.src.addr.0);
    h.write_u16(w.src.port);
    h.write_u32(w.dst.addr.0);
    h.write_u16(w.dst.port);
    h.write_u32(w.seg.seq.0);
    h.write_u32(w.seg.ack.0);
    h.write_u8(w.seg.flags);
    h.write_u16(w.seg.window);
    h.write(&w.seg.payload);
    // Options influence behaviour; hash their debug form (deterministic
    // derive output, and this is not a hot path).
    h.write(format!("{:?}", w.seg.options).as_bytes());
}

/// How a replayed schedule ended.
enum Replayed {
    /// Schedule fully applied; state attached.
    Ok(Box<Sut>),
    /// An action in the schedule was not enabled (arises during shrinking).
    Infeasible,
    /// A violation fired at action `index` (counting the initial pump as 0).
    Violation { message: String },
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Deterministically re-execute `path` from the initial state. Oracle
/// panics (the `debug_check` walls inside the stack) are caught and
/// converted into violations.
fn replay(cfg: &CheckConfig, path: &[Action], with_trace: bool) -> Replayed {
    let mut sut = match catch_unwind(AssertUnwindSafe(|| Sut::new(cfg, with_trace))) {
        Ok(Ok(s)) => s,
        Ok(Err(e)) => return Replayed::Violation { message: e },
        Err(p) => {
            return Replayed::Violation { message: panic_message(p) }
        }
    };
    for &a in path {
        let r = catch_unwind(AssertUnwindSafe(|| {
            sut.apply(a).and_then(|feasible| {
                if feasible {
                    sut.health_check().map(|()| true)
                } else {
                    Ok(false)
                }
            })
        }));
        match r {
            Ok(Ok(true)) => {}
            Ok(Ok(false)) => return Replayed::Infeasible,
            Ok(Err(e)) => return Replayed::Violation { message: e },
            Err(p) => {
                return Replayed::Violation { message: panic_message(p) }
            }
        }
    }
    Replayed::Ok(Box::new(sut))
}

fn violates(cfg: &CheckConfig, path: &[Action]) -> Option<String> {
    match replay(cfg, path, false) {
        Replayed::Violation { message } => Some(message),
        Replayed::Infeasible => None,
        Replayed::Ok(sut) => {
            if sut.enabled().is_empty() {
                sut.quiescent_ok().err()
            } else {
                None
            }
        }
    }
}

/// Greedy-deletion shrink: repeatedly drop any action whose removal keeps
/// the schedule violating, until no single deletion does.
fn shrink(cfg: &CheckConfig, mut path: Vec<Action>) -> Vec<Action> {
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < path.len() {
            let mut cand = path.clone();
            cand.remove(i);
            if violates(cfg, &cand).is_some() {
                path = cand;
                improved = true;
            } else {
                i += 1;
            }
        }
        if !improved {
            return path;
        }
    }
}

/// Install a silent panic hook for the duration of `f`: the checker turns
/// oracle panics into counterexamples, so the default stderr backtrace
/// spam (especially during shrinking, which re-triggers the panic dozens
/// of times) is pure noise.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// Exhaustively explore every schedule up to the config's bounds.
///
/// DFS over action prefixes with fingerprint deduplication; states are
/// re-entered by replay (the machines are deliberately not cloneable).
/// Stops at the first violation and returns it with a shrunk schedule.
pub fn explore(cfg: &CheckConfig) -> ExploreResult {
    with_quiet_panics(|| explore_inner(cfg))
}

fn explore_inner(cfg: &CheckConfig) -> ExploreResult {
    let mut res = ExploreResult::default();
    let root = match replay(cfg, &[], false) {
        Replayed::Ok(s) => s,
        Replayed::Infeasible => unreachable!("empty schedule is always feasible"),
        Replayed::Violation { message } => {
            res.violation = Some(Violation { path: Vec::new(), message });
            return res;
        }
    };
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(root.fingerprint());
    res.states = 1;
    let mut stack: Vec<Vec<Action>> = vec![Vec::new()];

    while let Some(path) = stack.pop() {
        res.deepest = res.deepest.max(path.len());
        let node = match replay(cfg, &path, false) {
            Replayed::Ok(s) => s,
            // Both arms are unreachable for paths the search itself built
            // (they were replayed cleanly once already), but stay defensive.
            Replayed::Infeasible => continue,
            Replayed::Violation { message } => {
                res.violation = Some(Violation { path: shrink(cfg, path), message });
                return res;
            }
        };
        let actions = node.enabled();
        if actions.is_empty() {
            res.quiescent += 1;
            if let Err(message) = node.quiescent_ok() {
                res.violation = Some(Violation { path: shrink(cfg, path), message });
                return res;
            }
            continue;
        }
        if path.len() >= cfg.depth {
            continue;
        }
        drop(node);
        for a in actions {
            let mut child = path.clone();
            child.push(a);
            res.transitions += 1;
            match replay(cfg, &child, false) {
                Replayed::Ok(s) => {
                    if seen.insert(s.fingerprint()) {
                        res.states += 1;
                        if cfg.max_states > 0 && res.states >= cfg.max_states {
                            res.truncated = true;
                            return res;
                        }
                        stack.push(child);
                    }
                }
                Replayed::Infeasible => {}
                Replayed::Violation { message } => {
                    res.violation = Some(Violation { path: shrink(cfg, child), message });
                    return res;
                }
            }
        }
    }
    res
}

/// Replay a (counterexample) schedule through [`mpw_sim::trace`] and render
/// it as a step-by-step tcpdump-style transcript.
pub fn format_trace(cfg: &CheckConfig, path: &[Action]) -> String {
    with_quiet_panics(|| {
        let mut out = String::new();
        let mut sut = match catch_unwind(AssertUnwindSafe(|| Sut::new(cfg, true))) {
            Ok(Ok(s)) => s,
            Ok(Err(e)) => return format!("<initial pump violated: {e}>\n"),
            Err(p) => return format!("<initial pump panicked: {}>\n", panic_message(p)),
        };
        let mut cursor = 0;
        let flush = |sut: &Sut, out: &mut String, cursor: &mut usize| {
            if let Some(t) = &sut.trace {
                for (at, ev) in &t.records()[*cursor..] {
                    out.push_str(&format!("    {}\n", render_event(*at, ev)));
                }
                *cursor = t.records().len();
            }
        };
        out.push_str("  #0 <initial pump>\n");
        flush(&sut, &mut out, &mut cursor);
        for (i, &a) in path.iter().enumerate() {
            out.push_str(&format!("  #{} {a}\n", i + 1));
            let r = catch_unwind(AssertUnwindSafe(|| {
                sut.apply(a).and_then(|f| if f { sut.health_check().map(|()| true) } else { Ok(false) })
            }));
            flush(&sut, &mut out, &mut cursor);
            match r {
                Ok(Ok(true)) => {}
                Ok(Ok(false)) => {
                    out.push_str("    <action infeasible — schedule out of date>\n");
                    return out;
                }
                Ok(Err(e)) => {
                    out.push_str(&format!("    VIOLATION: {e}\n"));
                    return out;
                }
                Err(p) => {
                    out.push_str(&format!("    VIOLATION (oracle panic): {}\n", panic_message(p)));
                    return out;
                }
            }
        }
        if sut.enabled().is_empty() {
            if let Err(e) = sut.quiescent_ok() {
                out.push_str(&format!("  <quiescent> VIOLATION: {e}\n"));
            }
        }
        out
    })
}

fn render_event(at: SimTime, ev: &TraceEvent) -> String {
    let fmt_rec = |verb: &str, r: &SegmentRecord| {
        let dir = match r.dir {
            TraceDir::ClientToServer => "c→s",
            TraceDir::ServerToClient => "s→c",
        };
        let dseq = match r.dseq {
            Some(d) => format!(" dseq {d}"),
            None => String::new(),
        };
        format!(
            "{:>9} {verb} {dir} sf{} {} seq {} ack {} len {}{dseq}",
            format!("{at:?}"),
            r.subflow,
            flags::tcpdump_str(r.flags),
            r.seq,
            r.ack,
            r.len,
        )
    };
    match ev {
        TraceEvent::SegSent(r) => fmt_rec("snd", r),
        TraceEvent::SegRecvd(r) => fmt_rec("rcv", r),
        other => format!("{at:?} {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_is_position_dependent() {
        let p = pattern(600);
        // A one-byte shift must be detectable everywhere a DSS chunk can
        // start (the planted overlapping-dss bug shifts by exactly one).
        let shifted_matches = (1..600).filter(|&i| p[i] == p[i - 1]).count();
        assert!(shifted_matches < 60, "pattern too repetitive: {shifted_matches}");
    }

    #[test]
    fn replay_is_deterministic() {
        let cfg = CheckConfig { depth: 4, ..CheckConfig::default() };
        let a = replay(&cfg, &[], false);
        let b = replay(&cfg, &[], false);
        let (Replayed::Ok(a), Replayed::Ok(b)) = (a, b) else {
            panic!("root replay failed");
        };
        assert_eq!(a.fingerprint(), b.fingerprint());
        // One in-order handshake step, replayed twice, agrees too.
        let p = [Action::Deliver(NetDir::C2s, 0)];
        let (Replayed::Ok(a), Replayed::Ok(b)) =
            (replay(&cfg, &p, false), replay(&cfg, &p, false))
        else {
            panic!("step replay failed");
        };
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn in_order_schedule_completes_cleanly() {
        // Alternate-until-quiescent delivery must finish the whole story:
        // handshake, join, upload, DATA_FIN both ways, subflow teardown.
        let cfg = CheckConfig { depth: 0, ..CheckConfig::default() };
        let Replayed::Ok(mut sut) = replay(&cfg, &[], false) else {
            panic!("root replay failed");
        };
        for _ in 0..10_000 {
            let Some(&a) = sut.enabled().first() else { break };
            // Only deliveries and timers: budget actions would shrink
            // nothing here anyway, but keep the happy path pure.
            let a = match a {
                Action::Deliver(..) | Action::Timer(..) => a,
                _ => Action::Deliver(NetDir::C2s, 0),
            };
            assert_eq!(sut.apply(a), Ok(true), "{a} infeasible");
            sut.health_check().unwrap();
        }
        assert!(sut.enabled().is_empty(), "never quiesced");
        sut.quiescent_ok().unwrap();
        assert_eq!(sut.server_rx, sut.expected);
    }
}

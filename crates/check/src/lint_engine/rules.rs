//! The six engine-backed walls.
//!
//! Each rule is a pure function from a scanned [`Workspace`] + [`Config`]
//! to raw [`Finding`]s; the engine in [`super::run`] filters them through
//! the per-token allow markers afterwards. All rules operate on the token
//! stream (comments and string literals can never fire a wall) and exempt
//! `#[cfg(test)]` code exactly — except the determinism wall, where test
//! schedules must stay deterministic too.

use super::items::FnItem;
use super::lexer::{Tok, TokKind};
use super::resolve::Resolved;
use super::{Config, Finding, SourceFile, Workspace};

/// Keywords that can directly precede `[` without it being an index
/// expression (`if let [a] = …`, `return [x]`, `in [..]`).
fn keyword_before_bracket(s: &str) -> bool {
    matches!(
        s,
        "let" | "in" | "return" | "else" | "match" | "if" | "while" | "box" | "mut" | "ref"
            | "move" | "as" | "const" | "static" | "break" | "continue" | "yield" | "do" | "dyn"
            | "impl" | "for" | "where" | "loop" | "unsafe" | "fn" | "pub" | "use" | "mod"
            | "struct" | "enum" | "trait" | "type"
    )
}

fn finding(rule: &str, f: &SourceFile, t: &Tok, message: String) -> Finding {
    Finding {
        rule: rule.to_string(),
        file: f.rel.clone(),
        line: t.line,
        col: t.col,
        message,
    }
}

/// Index of the next non-comment token after `i`, within `f`.
fn next_code(f: &SourceFile, i: usize) -> Option<usize> {
    f.toks[i + 1..]
        .iter()
        .position(|t| !t.is_comment())
        .map(|p| i + 1 + p)
}

/// Index of the previous non-comment token before `i`, within `f`.
fn prev_code(f: &SourceFile, i: usize) -> Option<usize> {
    (0..i).rev().find(|&j| !f.toks[j].is_comment())
}

fn text(f: &SourceFile, i: usize) -> &str {
    f.toks[i].text(&f.src)
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

/// Forbidden sources of nondeterminism and why (`ident` form and
/// `base :: method` form).
const NONDET_IDENTS: [(&str, &str); 3] = [
    ("HashMap", "nondeterministic iteration order; use BTreeMap"),
    ("HashSet", "nondeterministic iteration order; use BTreeSet"),
    ("thread_rng", "ambient randomness; use the seeded SimRng streams"),
];
const NONDET_PATHS: [(&str, &str, &str); 3] = [
    ("Instant", "now", "wall clock; use mpw_sim::SimTime"),
    ("SystemTime", "now", "wall clock; use mpw_sim::SimTime"),
    ("rand", "random", "ambient randomness; use the seeded SimRng streams"),
];

/// The determinism wall: wall clocks, ambient randomness, and hash-ordered
/// collections are forbidden in the protocol crates — including their
/// tests and benches, whose schedules feed determinism proofs.
pub fn determinism(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in ws.files.iter().filter(|f| f.under_any(&cfg.determinism_paths)) {
        for (i, t) in f.toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let name = t.text(&f.src);
            for (tok, why) in NONDET_IDENTS {
                if name == tok {
                    out.push(finding("determinism", f, t, format!("`{tok}` — {why}")));
                }
            }
            for (base, method, why) in NONDET_PATHS {
                if name == base {
                    let colon = next_code(f, i);
                    let m = colon.and_then(|c| {
                        (text(f, c) == "::").then(|| next_code(f, c)).flatten()
                    });
                    if m.is_some_and(|m| text(f, m) == method) {
                        out.push(finding(
                            "determinism",
                            f,
                            t,
                            format!("`{base}::{method}` — {why}"),
                        ));
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// panic (strict surface on the designated parser modules)
// ---------------------------------------------------------------------------

/// Macros that abort on wire-derived data.
const PANIC_MACROS: [&str; 10] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Macros flagged by the reachability pass (asserts are exempt there: they
/// *are* the invariant-oracle mechanism outside the parser surface).
const PANIC_MACROS_REACH: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Scan one fn-body-or-file token range for panicking constructs.
/// `strict` adds asserts and expression indexing (the parser surface);
/// the reachability pass passes `strict = false`.
fn panic_tokens_in(
    f: &SourceFile,
    range: std::ops::Range<usize>,
    strict: bool,
    via: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let macros: &[&str] = if strict { &PANIC_MACROS } else { &PANIC_MACROS_REACH };
    for i in range.clone() {
        let t = &f.toks[i];
        if t.is_comment() || f.items.in_test(i) {
            continue;
        }
        if t.kind == TokKind::Ident {
            let name = t.text(&f.src);
            if macros.contains(&name)
                && next_code(f, i).is_some_and(|n| text(f, n) == "!")
            {
                out.push(finding(
                    "panic",
                    f,
                    t,
                    format!("`{name}!` can panic{via}"),
                ));
                continue;
            }
            if (name == "unwrap" || name == "expect")
                && prev_code(f, i).is_some_and(|p| text(f, p) == ".")
                && next_code(f, i).is_some_and(|n| text(f, n) == "(")
            {
                out.push(finding(
                    "panic",
                    f,
                    t,
                    format!("`.{name}()` can panic{via}"),
                ));
                continue;
            }
        }
        if strict && t.kind == TokKind::Punct && t.text(&f.src) == "[" {
            let Some(p) = prev_code(f, i) else { continue };
            let pt = &f.toks[p];
            let ptxt = pt.text(&f.src);
            let indexes = match pt.kind {
                TokKind::Ident => !keyword_before_bracket(ptxt),
                TokKind::Num => true,
                TokKind::Punct => matches!(ptxt, ")" | "]" | "?"),
                _ => false,
            };
            if indexes {
                out.push(finding(
                    "panic",
                    f,
                    t,
                    format!("indexing `[...]` can panic{via}"),
                ));
            }
        }
    }
    out
}

/// The strict panic surface: in the designated parser modules every
/// panicking macro, `.unwrap()`/`.expect(`, and expression index is
/// forbidden outside test code — wire-derived bytes reach these files
/// unsanitized.
pub fn panic_surface(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for rel in &cfg.parser_modules {
        if let Some(f) = ws.file(rel) {
            out.extend(panic_tokens_in(f, 0..f.toks.len(), true, " on wire-derived data"));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// panic (call-graph reachability from the protocol entry points)
// ---------------------------------------------------------------------------

/// A fn in the reachability graph.
#[derive(Clone, Copy)]
struct FnRef {
    file: usize,
    item: usize,
}

/// The panic-reachability wall: from every parser-module fn and every
/// `on_*`/`handle_*` event handler, walk the name-based intra-workspace
/// call graph and flag panicking constructs in every reachable fn. Edges
/// resolve a called name against *every* workspace fn bearing it — an
/// over-approximation that can only over-flag, never miss a real path.
pub fn panic_reachability(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    // Collect the graph's nodes.
    let mut nodes: Vec<FnRef> = Vec::new();
    let mut by_name: std::collections::BTreeMap<&str, Vec<usize>> = Default::default();
    for (fi, f) in ws.files.iter().enumerate() {
        if !f.under_any(&cfg.reach_paths) {
            continue;
        }
        for (ii, it) in f.items.fns.iter().enumerate() {
            if it.is_test {
                continue;
            }
            let n = nodes.len();
            nodes.push(FnRef { file: fi, item: ii });
            by_name.entry(it.name.as_str()).or_default().push(n);
        }
    }
    let item = |n: usize| -> &FnItem { &ws.files[nodes[n].file].items.fns[nodes[n].item] };

    // Entry points: all parser-module fns + prefix-named handlers in the
    // designated event-handler files.
    let mut entries: Vec<usize> = Vec::new();
    for (n, r) in nodes.iter().enumerate() {
        let f = &ws.files[r.file];
        let it = item(n);
        let is_parser = cfg.parser_modules.contains(&f.rel);
        let is_handler = cfg.entry_files.contains(&f.rel)
            && cfg.entry_prefixes.iter().any(|p| it.name.starts_with(p.as_str()));
        if is_parser || is_handler {
            entries.push(n);
        }
    }

    // BFS with parent pointers for path rendering.
    let mut parent: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut seen = vec![false; nodes.len()];
    let mut queue: std::collections::VecDeque<usize> = Default::default();
    for &e in &entries {
        if !seen[e] {
            seen[e] = true;
            queue.push_back(e);
        }
    }
    while let Some(n) = queue.pop_front() {
        for call in &item(n).calls {
            if let Some(targets) = by_name.get(call.as_str()) {
                for &t in targets {
                    if !seen[t] {
                        seen[t] = true;
                        parent[t] = Some(n);
                        queue.push_back(t);
                    }
                }
            }
        }
    }

    // Flag panic constructs in every reachable fn body, except in the
    // parser modules (already covered, more strictly, by the surface
    // rule).
    let mut out = Vec::new();
    for (n, r) in nodes.iter().enumerate() {
        if !seen[n] {
            continue;
        }
        let f = &ws.files[r.file];
        if cfg.parser_modules.contains(&f.rel) {
            continue;
        }
        let it = item(n);
        if it.body.is_empty() {
            continue;
        }
        // Render the call path back to an entry: `a ← b ← entry`.
        let mut path = vec![it.name.clone()];
        let mut cur = n;
        while let Some(p) = parent[cur] {
            path.push(item(p).name.clone());
            cur = p;
            if path.len() > 8 {
                path.push("…".into());
                break;
            }
        }
        let via = format!(
            " (reachable from entry point: {})",
            path.iter().rev().cloned().collect::<Vec<_>>().join(" → ")
        );
        out.extend(panic_tokens_in(f, it.body.clone(), false, &via));
    }
    out
}

// ---------------------------------------------------------------------------
// panic v2 (strict decode surface + relaxed reachability, both on the
// resolved call graph)
// ---------------------------------------------------------------------------

/// One fn's rendered call path for `lint --explain`: every hop from the
/// entry point down to the fn containing the finding.
pub struct PanicPath {
    /// Qualified name of the fn the findings sit in.
    pub qname: String,
    /// File of that fn.
    pub file: String,
    /// 1-based line range of the fn body (inclusive).
    pub lines: (u32, u32),
    /// Hops entry-first: (qualified name, file, line of the fn item).
    pub hops: Vec<(String, String, u32)>,
}

/// The v2 panic wall on the resolved call graph (DESIGN.md §5.13).
///
/// Two tiers, both BFS over [`Resolved::calls`] (typed edges where the
/// receiver resolves, name fallback otherwise — so same-named methods on
/// different types no longer conflate):
///
/// * **Strict decode surface.** Parser-module fns reachable from
///   parser-module fns whose name starts with a
///   [`Config::parse_entry_prefixes`] prefix (`parse_packet`,
///   `read_pcapng`, …). Wire bytes flow through these unsanitized: every
///   panicking macro, `.unwrap()`/`.expect(`, and expression index is
///   forbidden. Encoder fns in the same files are *not* decode-reachable
///   and drop to the relaxed tier — their asserts are invariant oracles
///   on data the program itself built.
/// * **Relaxed reachability.** Everything else reachable from the decode
///   entries or the `on_*`/`handle_*` handler entries: aborting macros
///   and `unwrap`/`expect` are flagged; asserts and indexing are the
///   legal oracle idiom.
pub fn panic_v2(ws: &Workspace, cfg: &Config, r: &Resolved) -> Vec<Finding> {
    panic_v2_with_paths(ws, cfg, r).0
}

/// [`panic_v2`] plus the per-fn entry paths (for `lint --explain`).
pub fn panic_v2_with_paths(
    ws: &Workspace,
    cfg: &Config,
    r: &Resolved,
) -> (Vec<Finding>, Vec<PanicPath>) {
    let in_scope = |fid: usize| -> bool {
        let node = &r.fns[fid];
        if node.is_test {
            return false;
        }
        let f = &ws.files[node.file];
        f.under_any(&cfg.reach_paths)
            || cfg.parser_modules.contains(&f.rel)
            || cfg.entry_files.contains(&f.rel)
    };
    let bfs = |starts: &[usize]| -> (Vec<bool>, Vec<Option<usize>>) {
        let mut seen = vec![false; r.fns.len()];
        let mut parent: Vec<Option<usize>> = vec![None; r.fns.len()];
        let mut queue: std::collections::VecDeque<usize> = Default::default();
        for &s in starts {
            if !seen[s] {
                seen[s] = true;
                queue.push_back(s);
            }
        }
        while let Some(n) = queue.pop_front() {
            for e in &r.calls[n] {
                if !seen[e.to] && in_scope(e.to) {
                    seen[e.to] = true;
                    parent[e.to] = Some(n);
                    queue.push_back(e.to);
                }
            }
        }
        (seen, parent)
    };

    let is_parser = |fid: usize| cfg.parser_modules.contains(&ws.files[r.fns[fid].file].rel);
    let decode_entries: Vec<usize> = (0..r.fns.len())
        .filter(|&fid| {
            in_scope(fid)
                && is_parser(fid)
                && cfg
                    .parse_entry_prefixes
                    .iter()
                    .any(|p| r.fns[fid].name.starts_with(p.as_str()))
        })
        .collect();
    let handler_entries: Vec<usize> = (0..r.fns.len())
        .filter(|&fid| {
            in_scope(fid)
                && cfg.entry_files.contains(&ws.files[r.fns[fid].file].rel)
                && cfg.entry_prefixes.iter().any(|p| r.fns[fid].name.starts_with(p.as_str()))
        })
        .collect();

    let (decode_seen, decode_parent) = bfs(&decode_entries);
    let all_entries: Vec<usize> =
        decode_entries.iter().chain(&handler_entries).copied().collect();
    let (all_seen, all_parent) = bfs(&all_entries);

    let render = |fid: usize, parent: &[Option<usize>]| -> (String, Vec<(String, String, u32)>) {
        let mut chain = vec![fid];
        let mut cur = fid;
        while let Some(p) = parent[cur] {
            chain.push(p);
            cur = p;
            if chain.len() > 12 {
                break;
            }
        }
        chain.reverse();
        let hops: Vec<(String, String, u32)> = chain
            .iter()
            .map(|&h| {
                let n = &r.fns[h];
                (n.qname.clone(), ws.files[n.file].rel.clone(), n.line)
            })
            .collect();
        let names: Vec<&str> = hops.iter().map(|(q, _, _)| q.as_str()).collect();
        (names.join(" → "), hops)
    };

    let mut out = Vec::new();
    let mut paths = Vec::new();
    for fid in 0..r.fns.len() {
        if !all_seen[fid] && !decode_seen[fid] {
            continue;
        }
        let node = &r.fns[fid];
        let Some((lo, hi)) = node.body else { continue };
        let f = &ws.files[node.file];
        let strict = decode_seen[fid] && is_parser(fid);
        let parent = if strict { &decode_parent } else { &all_parent };
        let (path, hops) = render(fid, parent);
        let via = if strict {
            format!(" on wire-derived data (decode path: {path})")
        } else {
            format!(" (reachable from entry point: {path})")
        };
        let found = panic_tokens_in(f, lo..hi, strict, &via);
        if !found.is_empty() {
            let lines = (
                f.toks.get(lo).map(|t| t.line).unwrap_or(0),
                f.toks.get(hi.saturating_sub(1)).map(|t| t.line).unwrap_or(u32::MAX),
            );
            paths.push(PanicPath {
                qname: node.qname.clone(),
                file: f.rel.clone(),
                lines,
                hops,
            });
        }
        out.extend(found);
    }
    (out, paths)
}

// ---------------------------------------------------------------------------
// seq-arith
// ---------------------------------------------------------------------------

/// Name segments marking a sequence-number value (the seq/dseq naming
/// contract), and segments that mark a *derived quantity* (lengths,
/// counts, indices) exempt from the wall.
const SEQ_SEGMENTS: [&str; 4] = ["seq", "dseq", "dsn", "seqno"];
const SEQ_EXEMPT_SEGMENTS: [&str; 6] = ["len", "count", "cnt", "idx", "off", "offset"];

/// Whether `name` names a sequence-number value under the contract.
pub fn seq_contract(name: &str) -> bool {
    let mut has_seq = false;
    for seg in name.split('_') {
        if SEQ_SEGMENTS.contains(&seg) {
            has_seq = true;
        }
        if SEQ_EXEMPT_SEGMENTS.contains(&seg) {
            return false;
        }
    }
    has_seq
}

/// The seq-arithmetic wall: raw `+`/`-`/`+=`/`-=`, `as u32` truncation,
/// and `wrapping_*` calls on sequence-number-named values are forbidden
/// outside the audited `tcp/seq.rs` — wraparound math must funnel through
/// `SeqNum`, whose 2³¹ ambiguity contract is documented and tested.
pub fn seq_arith(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &ws.files {
        if !f.under_any(&cfg.seq_paths) || cfg.seq_audited.contains(&f.rel) {
            continue;
        }
        for (i, t) in f.toks.iter().enumerate() {
            if t.kind != TokKind::Ident || t.is_comment() || f.items.in_test(i) {
                continue;
            }
            let name = t.text(&f.src);
            // `<chain>.wrapping_*(…)` where the receiver chain mentions a
            // contract ident.
            if name.starts_with("wrapping_")
                && prev_code(f, i).is_some_and(|p| text(f, p) == ".")
                && next_code(f, i).is_some_and(|n| text(f, n) == "(")
            {
                if let Some(seq_name) = chain_contract_ident(f, i) {
                    out.push(finding(
                        "seq-arith",
                        f,
                        t,
                        format!(
                            "`{name}` on seq-named `{seq_name}`: wraparound math must \
                             funnel through tcp/seq.rs (SeqNum)"
                        ),
                    ));
                }
                continue;
            }
            if !seq_contract(name) {
                continue;
            }
            // A call `dseq_of(…)` or path segment `seq::` is not a value
            // use.
            let Some(n) = next_code(f, i) else { continue };
            let nt = text(f, n);
            if nt == "(" || nt == "::" || nt == "!" {
                continue;
            }
            // Raw additive arithmetic on the value itself.
            if matches!(nt, "+" | "-" | "+=" | "-=") {
                out.push(finding(
                    "seq-arith",
                    f,
                    t,
                    format!(
                        "raw `{nt}` on seq-named `{name}`: wraparound math must funnel \
                         through tcp/seq.rs (SeqNum)"
                    ),
                ));
                continue;
            }
            // Truncating cast.
            if nt == "as" && next_code(f, n).is_some_and(|u| text(f, u) == "u32") {
                out.push(finding(
                    "seq-arith",
                    f,
                    t,
                    format!(
                        "`{name} as u32` truncates a seq-named value: conversions must \
                         funnel through tcp/seq.rs (SeqNum)"
                    ),
                ));
            }
        }
    }
    out
}

/// For a `.wrapping_*` method token at `i`, walk the receiver chain
/// (`a.b.0.wrapping_sub`) backwards and return the first contract-named
/// ident in it, if any. The chain stops at anything that is not an
/// ident/tuple-index/`.`, so call results (`f().wrapping_add`) break it.
fn chain_contract_ident(f: &SourceFile, i: usize) -> Option<&str> {
    let mut cur = prev_code(f, i)?; // the `.` before wrapping_*
    loop {
        if text(f, cur) != "." {
            return None;
        }
        let part = prev_code(f, cur)?;
        match f.toks[part].kind {
            TokKind::Ident => {
                let name = text(f, part);
                if seq_contract(name) {
                    return Some(name);
                }
                match prev_code(f, part) {
                    Some(p) if text(f, p) == "." => cur = p,
                    _ => return None,
                }
            }
            TokKind::Num => match prev_code(f, part) {
                Some(p) if text(f, p) == "." => cur = p,
                _ => return None,
            },
            _ => return None,
        }
    }
}

// ---------------------------------------------------------------------------
// alloc
// ---------------------------------------------------------------------------

/// The allocation wall: the data-path modules must not reintroduce a
/// per-segment `Vec<TcpOption>` or a per-packet `.to_vec()` copy outside
/// test code (DESIGN.md §5.10; the dynamic half is the `mpw-bench`
/// allocation gate).
pub fn alloc(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for rel in &cfg.alloc_modules {
        let Some(f) = ws.file(rel) else { continue };
        for (i, t) in f.toks.iter().enumerate() {
            if t.kind != TokKind::Ident || f.items.in_test(i) {
                continue;
            }
            let name = t.text(&f.src);
            if name == "Vec"
                && next_code(f, i).is_some_and(|n| text(f, n) == "<")
                && next_code(f, i)
                    .and_then(|n| next_code(f, n))
                    .is_some_and(|n2| text(f, n2) == "TcpOption")
            {
                out.push(finding(
                    "alloc",
                    f,
                    t,
                    "`Vec<TcpOption>` allocates per segment; use the inline `OptionList`"
                        .into(),
                ));
            }
            if name == "to_vec"
                && prev_code(f, i).is_some_and(|p| text(f, p) == ".")
                && next_code(f, i).is_some_and(|n| text(f, n) == "(")
            {
                out.push(finding(
                    "alloc",
                    f,
                    t,
                    "`.to_vec()` copies per packet; return a pooled/refcounted `Bytes` \
                     sub-slice"
                        .into(),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// unsafe
// ---------------------------------------------------------------------------

/// The unsafe audit: every first-party crate must carry
/// `#![forbid(unsafe_code)]` in its `lib.rs`, and any `unsafe` token in
/// first-party code (including benches and tests, which are separate
/// compilation units the lib attribute does not cover) needs a
/// per-token `allow-unsafe(reason)` justification. `vendor/` is exempt
/// but inventoried in the report.
pub fn unsafe_audit(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let _ = cfg;
    let mut out = Vec::new();
    let mut crates_seen: std::collections::BTreeSet<String> = Default::default();
    for f in &ws.files {
        if let Some(cd) = f.crate_dir() {
            crates_seen.insert(cd.to_string());
        }
        for t in &f.toks {
            if t.kind == TokKind::Ident && t.text(&f.src) == "unsafe" {
                // `unsafe_code` inside the forbid attribute itself is an
                // ident `unsafe_code`, not `unsafe` — no special case
                // needed.
                out.push(finding(
                    "unsafe",
                    f,
                    t,
                    "`unsafe` in first-party code: justify with allow-unsafe(reason) \
                     or remove"
                        .into(),
                ));
            }
        }
    }
    for cd in crates_seen {
        let lib = format!("{cd}/src/lib.rs");
        let Some(f) = ws.file(&lib) else { continue };
        if !has_forbid_unsafe(f) {
            out.push(Finding {
                rule: "unsafe".into(),
                file: lib,
                line: 1,
                col: 1,
                message: "crate lacks `#![forbid(unsafe_code)]`".into(),
            });
        }
    }
    out
}

/// Whether a lib root carries the inner `#![forbid(unsafe_code)]`.
fn has_forbid_unsafe(f: &SourceFile) -> bool {
    let code: Vec<&str> = f
        .toks
        .iter()
        .filter(|t| !t.is_comment())
        .map(|t| t.text(&f.src))
        .collect();
    code.windows(6).any(|w| {
        w[0] == "#" && w[1] == "!" && w[2] == "[" && w[3] == "forbid" && w[4] == "("
            && w[5] == "unsafe_code"
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_engine::Workspace;

    fn cfg_one(rel: &str) -> Config {
        Config {
            determinism_paths: vec!["crates/x".into()],
            parser_modules: vec![rel.to_string()],
            alloc_modules: vec![rel.to_string()],
            seq_paths: vec!["crates/x/src".into()],
            seq_audited: vec![],
            reach_paths: vec!["crates/x/src".into()],
            entry_files: vec![],
            entry_prefixes: vec![],
            parse_entry_prefixes: vec!["parse".into(), "read".into(), "decode".into()],
            unsafe_wall: true,
        }
    }

    fn one(src: &str) -> (Workspace, Config) {
        let rel = "crates/x/src/lib.rs";
        (
            Workspace::from_sources(vec![(rel, src.to_string())]),
            cfg_one(rel),
        )
    }

    #[test]
    fn determinism_flags_tokens_not_lines() {
        let (ws, cfg) = one("use std::collections::HashMap;\nfn f() { let t = Instant::now(); }\n");
        let fs = determinism(&ws, &cfg);
        assert_eq!(fs.len(), 2);
        assert!(fs[0].message.contains("HashMap"));
        assert!(fs[1].message.contains("Instant::now"));
    }

    #[test]
    fn determinism_ignores_comments_and_strings() {
        let (ws, cfg) = one("// a HashMap would break this\nfn f() { let s = \"HashSet\"; }\n");
        assert!(determinism(&ws, &cfg).is_empty());
    }

    #[test]
    fn determinism_catches_path_split_across_lines() {
        // The old line-based scanner searched for the exact substring
        // `Instant::now` and missed this; the token stream does not care
        // about the line break.
        let (ws, cfg) = one("fn f() { let t = Instant::\n    now(); }\n");
        assert_eq!(determinism(&ws, &cfg).len(), 1);
    }

    #[test]
    fn surface_flags_panics_indexing_but_not_patterns() {
        let (ws, cfg) = one(
            "fn p(b: &[u8]) -> [u8; 4] {\n    let x = b[0];\n    let y = b.first().unwrap();\n    \
             if let [a] = b { let _ = a; }\n    panic!(\"{x} {y}\");\n}\n",
        );
        let fs = panic_surface(&ws, &cfg);
        let msgs: Vec<&str> = fs.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(fs.len(), 3, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("indexing")));
        assert!(msgs.iter().any(|m| m.contains(".unwrap()")));
        assert!(msgs.iter().any(|m| m.contains("`panic!`")));
    }

    #[test]
    fn surface_ignores_test_mod_exactly() {
        let src = "fn p() {}\n#[cfg(test)]\nmod t { fn f() { x.unwrap(); } }\nfn q(v: &[u8]) -> u8 { v[0] }\n";
        let (ws, cfg) = one(src);
        let fs = panic_surface(&ws, &cfg);
        // The unwrap in the test mod is exempt; the indexing *after* the
        // test mod is caught (the old scanner stopped scanning at the
        // first `#[cfg(test)]` line and missed it).
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("indexing"));
    }

    #[test]
    fn reachability_walks_two_hops() {
        let rel_a = "crates/x/src/entry.rs";
        let rel_b = "crates/x/src/helper.rs";
        let ws = Workspace::from_sources(vec![
            (rel_a, "pub fn parse_entry(b: &[u8]) { hop_one(b); }".to_string()),
            (
                rel_b,
                "pub fn hop_one(b: &[u8]) { hop_two(b); }\n\
                 pub fn hop_two(b: &[u8]) { b.first().unwrap(); }\n\
                 pub fn not_reached() { never_called.unwrap(); }"
                    .to_string(),
            ),
        ]);
        let mut cfg = cfg_one(rel_a);
        cfg.alloc_modules = vec![];
        let fs = panic_reachability(&ws, &cfg);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("parse_entry → hop_one → hop_two"), "{}", fs[0].message);
        assert_eq!(fs[0].file, rel_b);
    }

    #[test]
    fn reachability_exempts_asserts_and_indexing() {
        let rel = "crates/x/src/entry.rs";
        let mut cfg = cfg_one(rel);
        // entry.rs is a parser module (strict); helper sits in another
        // file, covered only by reachability, where asserts and indexing
        // are the invariant-oracle idiom and stay legal.
        let rel_b = "crates/x/src/other.rs";
        let ws = Workspace::from_sources(vec![
            (rel, "pub fn parse_entry(v: &[u8]) { helper(v); }".to_string()),
            (
                rel_b,
                "pub fn helper(v: &[u8]) { debug_assert!(v.len() > 1); let x = v[0]; let _ = x; }"
                    .to_string(),
            ),
        ]);
        cfg.alloc_modules = vec![];
        assert!(panic_reachability(&ws, &cfg).is_empty());
    }

    #[test]
    fn seq_arith_flags_raw_ops_casts_and_wrapping() {
        let (ws, cfg) = one(
            "fn f(dseq: u64, seq: u32, len: u64) -> u64 {\n    let a = dseq\n        + len;\n    \
             let b = seq.wrapping_add(1);\n    let c = dseq as u32;\n    \
             a + u64::from(b) + u64::from(c)\n}\n",
        );
        let fs = seq_arith(&ws, &cfg);
        assert_eq!(fs.len(), 3, "{fs:?}");
        assert!(fs.iter().any(|f| f.message.contains("raw `+`")));
        assert!(fs.iter().any(|f| f.message.contains("wrapping_add")));
        assert!(fs.iter().any(|f| f.message.contains("as u32")));
    }

    #[test]
    fn seq_arith_receiver_chain_and_exemptions() {
        let (ws, cfg) = one(
            "fn f(s: S) {\n    let a = s.seq.wrapping_add(s.len);\n    let b = seq_len() + 4;\n    \
             let c = s.seq.before(x);\n    let _ = (a, b, c);\n}\n",
        );
        let fs = seq_arith(&ws, &cfg);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("wrapping_add"));
        assert!(fs[0].message.contains("`seq`"));
    }

    #[test]
    fn seq_arith_ignores_comparisons_ranges_and_calls() {
        let (ws, cfg) = one(
            "fn f(dseq: u64, end: u64) {\n    if dseq < end { }\n    for _ in dseq..end { }\n    \
             let m = dseq.max(end);\n    let _ = m;\n}\n",
        );
        assert!(seq_arith(&ws, &cfg).is_empty());
    }

    #[test]
    fn alloc_flags_multiline_vec_tcpoption() {
        let (ws, cfg) = one("struct S {\n    options: Vec<\n        TcpOption,\n    >,\n}\nfn f(d: &[u8]) { let v = d.to_vec(); let _ = v; }\n");
        let fs = alloc(&ws, &cfg);
        assert_eq!(fs.len(), 2, "{fs:?}");
    }

    #[test]
    fn unsafe_audit_requires_forbid_and_flags_tokens() {
        let (ws, cfg) = one("pub fn f() { let p = 0 as *const u8; let _ = unsafe { *p }; }\n");
        let fs = unsafe_audit(&ws, &cfg);
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs.iter().any(|f| f.message.contains("forbid")));
        assert!(fs.iter().any(|f| f.message.contains("justify")));
        let (ws2, cfg2) = one("#![forbid(unsafe_code)]\npub fn f() {}\n");
        assert!(unsafe_audit(&ws2, &cfg2).is_empty());
    }
}

//! Intraprocedural forward dataflow over the parsed AST (DESIGN.md §5.13).
//!
//! Two analyses share the local type environment below:
//!
//! * **Seq-number taint.** A value is *tainted* when it provably originates
//!   from sequence-number state: extraction of the `.0` payload of an
//!   audited wrapper type (`SeqNum`), a contract-named integer field of a
//!   wire struct (declared in a parser module) or of an unknown-typed
//!   receiver, a contract-named fn parameter or pattern binding, or the
//!   return value of a fn whose summary says it returns taint. Taint flows
//!   through `let` bindings, assignments, casts, arithmetic, branches, and
//!   (via bottom-up summaries) calls. Raw `+`/`-`/`+=`/`-=`, truncating
//!   `as u32`, and `.wrapping_*` on a tainted value **outside the audited
//!   seq module** is a finding regardless of what the value is named —
//!   renaming a sequence number does not launder it. Conversely, a
//!   contract-*named* counter whose declared type proves it is not a wire
//!   sequence (`engine.rs`'s u64 event tiebreakers) is no longer flagged,
//!   and arithmetic that dispatches to the audited wrapper's `impl Add`/
//!   `impl Sub` (an operand is `SeqNum`-typed) is recognized as funneling
//!   through `tcp/seq.rs` rather than bypassing it.
//!
//! * **Oracle-exit (handler exhaustiveness).** Every `on_*`/`handle_*`
//!   handler in the entry files must run a `debug_check`/`validate` oracle
//!   on every return path. A fn is **exit-checked** when every exit path —
//!   tail expression, every `if`/`match` branch tail, and every early
//!   `return` — ends in an oracle call, immediately follows an oracle
//!   statement, or tail-calls another exit-checked fn (the
//!   `post_event_inner → post_event → debug_check` delegation idiom).
//!   Handlers that are *not* exit-checked may instead be **covered**: every
//!   non-test caller is exit-checked or covered, so the oracle still runs
//!   after the handler's effects (the `on_segment → on_segment_inner`
//!   wrapper idiom). Both sets are fixpoints over the resolved call graph;
//!   a handler in neither set has a concrete unprotected exit, and each
//!   such exit is one finding.

use std::collections::BTreeSet;

use super::parse::{Block, Expr, ExprKind, Pat, PatKind, Stmt, StmtKind};
use super::resolve::{find_fn, strip_shells, Resolved};
use super::rules::seq_contract;
use super::{Config, Finding, SourceFile, Workspace};

// ---------------------------------------------------------------------------
// Seq-number taint
// ---------------------------------------------------------------------------

/// Why a value is tainted — threaded through the dataflow so findings can
/// explain their origin, not just their site.
type Taint = Option<String>;

/// One (type head, taint) dataflow fact.
#[derive(Clone, Default)]
struct Fact {
    ty: String,
    taint: Taint,
}

impl Fact {
    fn clean(ty: &str) -> Fact {
        Fact { ty: ty.to_string(), taint: None }
    }
}

/// The seq-arith wall, rebased on taint: see the module docs. Returns raw
/// findings for [`super::run`] to filter through allow markers.
pub fn seq_taint(ws: &Workspace, cfg: &Config, r: &Resolved) -> Vec<Finding> {
    // Types declared in the audited seq module carry their own audited
    // arithmetic impls; types declared in parser modules hold raw wire
    // fields.
    let mut audited_tys: BTreeSet<&str> = BTreeSet::new();
    let mut wire_tys: BTreeSet<&str> = BTreeSet::new();
    for (name, &fi) in &r.struct_file {
        let rel = &ws.files[fi].rel;
        if cfg.seq_audited.contains(rel) {
            audited_tys.insert(name);
        }
        if cfg.parser_modules.contains(rel) {
            wire_tys.insert(name);
        }
    }

    // Bottom-up return-taint summaries: iterate until stable (call cycles
    // settle in a couple of rounds; the cap is a safety net).
    let mut ret_taint: Vec<Taint> = vec![None; r.fns.len()];
    for round in 0..8 {
        let mut changed = false;
        let mut findings = Vec::new();
        for fid in 0..r.fns.len() {
            let node = &r.fns[fid];
            let f = &ws.files[node.file];
            if node.is_test
                || !f.under_any(&cfg.seq_paths)
                || cfg.seq_audited.contains(&f.rel)
            {
                continue;
            }
            let Some((fd, self_ty)) = find_fn(&f.ast.items, node) else { continue };
            let Some(body) = &fd.body else { continue };
            let mut cx = TaintCx {
                r,
                file: f,
                self_ty,
                audited_tys: &audited_tys,
                wire_tys: &wire_tys,
                ret_taint: &ret_taint,
                locals: Vec::new(),
                findings: &mut findings,
                returns: None,
            };
            for (pname, ty) in &fd.params {
                let Some(p) = pname else { continue };
                let head = strip_shells(ty);
                let taint = (seq_contract(p) && !audited_tys.contains(head.as_str()))
                    .then(|| format!("contract-named parameter `{p}`"));
                cx.locals.push((p.clone(), Fact { ty: head, taint }));
            }
            let tail = cx.block(body);
            let ret = cx.returns.take().or(tail.taint);
            if ret.is_some() != ret_taint[fid].is_some() {
                ret_taint[fid] = ret;
                changed = true;
            }
        }
        if !changed || round == 7 {
            // Findings from the converged round are the real ones.
            findings.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
            findings.dedup_by(|a, b| (&a.file, a.line, a.col) == (&b.file, b.line, b.col));
            return findings;
        }
    }
    unreachable!("loop always returns");
}

/// Per-body taint walker. Local type inference mirrors
/// [`super::resolve`]'s `BodyCx` (kept separate: this one threads taint
/// through every fact and records findings at the offending operator).
struct TaintCx<'a> {
    r: &'a Resolved,
    file: &'a SourceFile,
    self_ty: Option<String>,
    audited_tys: &'a BTreeSet<&'a str>,
    wire_tys: &'a BTreeSet<&'a str>,
    ret_taint: &'a [Taint],
    /// Shadowing stack of (name, fact).
    locals: Vec<(String, Fact)>,
    findings: &'a mut Vec<Finding>,
    /// Taint of the first tainted `return` value seen, if any.
    returns: Taint,
}

impl TaintCx<'_> {
    fn audited(&self, ty: &str) -> bool {
        self.audited_tys.contains(ty)
    }

    fn flag(&mut self, tok: usize, msg: String) {
        let Some(t) = self.file.toks.get(tok) else { return };
        if self.file.items.in_test(tok) {
            return;
        }
        self.findings.push(Finding {
            rule: "seq-arith".into(),
            file: self.file.rel.clone(),
            line: t.line,
            col: t.col,
            message: msg,
        });
    }

    fn field_ty(&self, base_ty: &str, name: &str) -> Option<String> {
        self.r
            .struct_fields
            .get(base_ty)
            .and_then(|tbl| tbl.get(name))
            .map(strip_shells)
    }

    /// Walk a block; returns the fact of its tail expression (unit/clean
    /// when the last statement is not a tail expression).
    fn block(&mut self, b: &Block) -> Fact {
        let depth = self.locals.len();
        let mut tail = Fact::default();
        for (i, s) in b.stmts.iter().enumerate() {
            let last = i + 1 == b.stmts.len();
            match &s.kind {
                StmtKind::Let { pat, ty, init, else_block } => {
                    let fact = match init {
                        Some(e) => self.eval(e),
                        None => Fact::default(),
                    };
                    if let Some(eb) = else_block {
                        self.block(eb);
                    }
                    let fact = match ty.as_ref().map(strip_shells) {
                        Some(h) if !h.is_empty() => Fact { ty: h, ..fact },
                        _ => fact,
                    };
                    self.bind_pat(pat, &fact);
                }
                StmtKind::Expr { expr, semi } => {
                    let f = self.eval(expr);
                    if last && !*semi {
                        tail = f;
                    }
                }
                StmtKind::Item(_) | StmtKind::Empty => {}
            }
        }
        self.locals.truncate(depth);
        tail
    }

    /// Bind a pattern against the scrutinee's fact. A contract-named ident
    /// binding seeds taint on its own (the naming contract marks sequence
    /// numbers destructured out of untyped tuples and records).
    fn bind_pat(&mut self, p: &Pat, scrut: &Fact) {
        match &p.kind {
            PatKind::Ident { name, sub } => {
                let mut fact = scrut.clone();
                if fact.taint.is_none()
                    && seq_contract(name)
                    && !self.audited(&fact.ty)
                {
                    fact.taint = Some(format!("contract-named binding `{name}`"));
                }
                self.locals.push((name.clone(), fact));
                if let Some(s) = sub {
                    self.bind_pat(s, scrut);
                }
            }
            PatKind::TupleStruct { elems, .. } => {
                // Variant payloads are untyped; element bindings may still
                // seed by name. The scrutinee's own taint flows in.
                let inner = Fact { ty: String::new(), taint: scrut.taint.clone() };
                for x in elems {
                    self.bind_pat(x, &inner);
                }
            }
            PatKind::Struct { path, fields } => {
                let sname = path.last().cloned().unwrap_or_default();
                for (fname, sub) in fields {
                    let fact = self.field_fact(&sname, scrut, fname);
                    match sub {
                        Some(sp) => self.bind_pat(sp, &fact),
                        None => self.locals.push((fname.clone(), fact)),
                    }
                }
            }
            PatKind::Tuple(es) | PatKind::Slice(es) | PatKind::Or(es) => {
                let inner = Fact { ty: String::new(), taint: scrut.taint.clone() };
                for x in es {
                    self.bind_pat(x, &inner);
                }
            }
            PatKind::Ref(inner) => self.bind_pat(inner, scrut),
            _ => {}
        }
    }

    /// The fact for field `name` read off a base of type `base_ty` (may be
    /// "" when unknown) carrying `base`'s taint.
    fn field_fact(&self, base_ty: &str, base: &Fact, name: &str) -> Fact {
        // `.0` of an audited wrapper extracts the raw sequence payload.
        if self.audited(base_ty) {
            if name == "0" {
                return Fact {
                    ty: "u32".into(),
                    taint: Some(format!("`.0` extraction of audited `{base_ty}`")),
                };
            }
            return Fact::default();
        }
        let fty = if base_ty.is_empty() { None } else { self.field_ty(base_ty, name) };
        let taint = if seq_contract(name) {
            match &fty {
                // An audited-wrapper field is already funneled: every op
                // on it dispatches to the audited impls.
                Some(t) if self.audited(t) => None,
                // Declared u32: wire sequence width. Declared in a parser
                // module: a raw wire field. Anything else typed (u64
                // counters on sim structs) is proven clean.
                Some(t) if t == "u32" || self.wire_tys.contains(base_ty) => Some(format!(
                    "contract-named field `{base_ty}.{name}: {t}`"
                )),
                Some(_) => None,
                // Unknown receiver: the naming contract stands.
                None => Some(format!("contract-named field `.{name}` (untyped receiver)")),
            }
        } else if name == "0" {
            // Tuple access forwards the base's taint.
            base.taint.clone()
        } else {
            None
        };
        Fact { ty: fty.unwrap_or_default(), taint }
    }

    /// Evaluate an expression to a fact, recording findings at raw
    /// arithmetic on tainted operands.
    fn eval(&mut self, e: &Expr) -> Fact {
        match &e.kind {
            ExprKind::Lit | ExprKind::Continue | ExprKind::Err => Fact::default(),
            ExprKind::Path(segs) => {
                if segs.len() == 1 {
                    let name = &segs[0].0;
                    if name == "self" {
                        return Fact::clean(self.self_ty.as_deref().unwrap_or(""));
                    }
                    for (n, fact) in self.locals.iter().rev() {
                        if n == name {
                            return fact.clone();
                        }
                    }
                    if self.r.struct_fields.contains_key(name) {
                        return Fact::clean(name);
                    }
                }
                Fact::default()
            }
            ExprKind::Field { base, name } => {
                let b = self.eval(base);
                self.field_fact(&b.ty.clone(), &b, name)
            }
            ExprKind::Unary { operand, .. } => self.eval(operand),
            ExprKind::Paren(x) | ExprKind::Try(x) | ExprKind::Ref { expr: x, .. } => self.eval(x),
            ExprKind::Cast { expr, ty, as_tok } => {
                let inner = self.eval(expr);
                let head = strip_shells(ty);
                if head == "u32" {
                    if let Some(origin) = &inner.taint {
                        self.flag(
                            *as_tok,
                            format!(
                                "`as u32` truncates a seq-tainted value ({origin}): \
                                 conversions must funnel through tcp/seq.rs (SeqNum)"
                            ),
                        );
                    }
                }
                Fact { ty: head, taint: inner.taint }
            }
            ExprKind::Binary { op, op_tok, lhs, rhs } => {
                let l = self.eval(lhs);
                let r_ = self.eval(rhs);
                let audited_op = self.audited(&l.ty) || self.audited(&r_.ty);
                if matches!(op.as_str(), "+" | "-") && !audited_op {
                    if let Some(origin) = l.taint.as_ref().or(r_.taint.as_ref()) {
                        self.flag(
                            *op_tok,
                            format!(
                                "raw `{op}` on a seq-tainted value ({origin}): wraparound \
                                 math must funnel through tcp/seq.rs (SeqNum)"
                            ),
                        );
                    }
                }
                if matches!(op.as_str(), "==" | "!=" | "<" | "<=" | ">" | ">=" | "&&" | "||") {
                    return Fact::clean("bool");
                }
                if audited_op {
                    // Dispatches to the audited impl: `SeqNum + u32` yields
                    // the wrapper, `SeqNum - SeqNum` a clean distance.
                    if self.audited(&l.ty) && self.audited(&r_.ty) {
                        return Fact::clean("u32");
                    }
                    return Fact::clean(if self.audited(&l.ty) { &l.ty } else { &r_.ty });
                }
                Fact {
                    ty: if l.ty.is_empty() { r_.ty } else { l.ty },
                    taint: l.taint.or(r_.taint),
                }
            }
            ExprKind::Assign { op, lhs, rhs } => {
                let rf = self.eval(rhs);
                let lf = self.eval(lhs);
                if matches!(op.as_str(), "+=" | "-=") && !self.audited(&lf.ty) {
                    if let Some(origin) = lf.taint.as_ref().or(rf.taint.as_ref()) {
                        let tok = lhs.span.hi.saturating_sub(1);
                        self.flag(
                            tok,
                            format!(
                                "raw `{op}` on a seq-tainted value ({origin}): wraparound \
                                 math must funnel through tcp/seq.rs (SeqNum)"
                            ),
                        );
                    }
                }
                // Plain re-assignment retargets a simple local's fact.
                if op == "=" {
                    if let ExprKind::Path(segs) = &lhs.kind {
                        if segs.len() == 1 {
                            if let Some(slot) =
                                self.locals.iter_mut().rev().find(|(n, _)| n == &segs[0].0)
                            {
                                slot.1.taint = rf.taint;
                            }
                        }
                    }
                }
                Fact::default()
            }
            ExprKind::MethodCall { recv, name, name_tok, args } => {
                let rv = self.eval(recv);
                for a in args {
                    self.eval(a);
                }
                if name.starts_with("wrapping_") {
                    if let Some(origin) = &rv.taint {
                        self.flag(
                            *name_tok,
                            format!(
                                "`{name}` on a seq-tainted value ({origin}): wraparound \
                                 math must funnel through tcp/seq.rs (SeqNum)"
                            ),
                        );
                    }
                    return rv;
                }
                // Width/ordering helpers preserve the receiver's fact.
                if matches!(
                    name.as_str(),
                    "min" | "max" | "clamp" | "clone" | "saturating_add" | "saturating_sub"
                        | "borrow" | "borrow_mut" | "as_ref" | "as_mut"
                ) {
                    return rv;
                }
                // Return-taint summary through a typed method resolution.
                if !rv.ty.is_empty() {
                    if let Some(&id) = self.r.by_qname.get(&format!("{}::{name}", rv.ty)) {
                        if let Some(origin) = &self.ret_taint[id] {
                            return Fact {
                                ty: String::new(),
                                taint: Some(format!(
                                    "return of `{}` ({origin})",
                                    self.r.fns[id].qname
                                )),
                            };
                        }
                    }
                }
                Fact::default()
            }
            ExprKind::Call { callee, args } => {
                for a in args {
                    self.eval(a);
                }
                if let ExprKind::Path(segs) = &callee.kind {
                    // Tuple-struct constructor: `SeqNum(x)` wraps the raw
                    // value back into the audited type — clean by design.
                    if segs.len() == 1 && self.r.struct_fields.contains_key(&segs[0].0) {
                        return Fact::clean(&segs[0].0);
                    }
                    if let Some(id) = self.resolve_call(segs) {
                        if let Some(origin) = &self.ret_taint[id] {
                            return Fact {
                                ty: String::new(),
                                taint: Some(format!(
                                    "return of `{}` ({origin})",
                                    self.r.fns[id].qname
                                )),
                            };
                        }
                        // Constructor-style typing as in resolve.
                        let node = &self.r.fns[id];
                        if let Some(st) = &node.self_ty {
                            if node.name == "new"
                                || node.name == "default"
                                || node.name.starts_with("from")
                            {
                                return Fact::clean(st);
                            }
                        }
                    }
                } else {
                    self.eval(callee);
                }
                Fact::default()
            }
            ExprKind::StructLit { path, fields, base } => {
                for (_, v) in fields {
                    if let Some(v) = v {
                        self.eval(v);
                    }
                }
                if let Some(b) = base {
                    self.eval(b);
                }
                let name = path.last().map(|(s, _)| s.as_str()).unwrap_or("");
                Fact::clean(if name == "Self" {
                    self.self_ty.as_deref().unwrap_or("")
                } else {
                    name
                })
            }
            ExprKind::Tuple(xs) | ExprKind::Array { elems: xs } => {
                let mut taint = None;
                for x in xs {
                    let f = self.eval(x);
                    taint = taint.or(f.taint);
                }
                Fact { ty: String::new(), taint }
            }
            ExprKind::Index { base, index } => {
                let b = self.eval(base);
                self.eval(index);
                Fact { ty: String::new(), taint: b.taint }
            }
            ExprKind::Block(b) => self.block(b),
            ExprKind::If { cond, then, else_ } => {
                self.eval(cond);
                let t = self.block(then);
                let e = else_.as_ref().map(|x| self.eval(x)).unwrap_or_default();
                Fact {
                    ty: if t.ty.is_empty() { e.ty } else { t.ty },
                    taint: t.taint.or(e.taint),
                }
            }
            ExprKind::IfLet { pat, scrutinee, then, else_ } => {
                let s = self.eval(scrutinee);
                let depth = self.locals.len();
                self.bind_pat(pat, &s);
                let t = self.block(then);
                self.locals.truncate(depth);
                let e = else_.as_ref().map(|x| self.eval(x)).unwrap_or_default();
                Fact {
                    ty: if t.ty.is_empty() { e.ty } else { t.ty },
                    taint: t.taint.or(e.taint),
                }
            }
            ExprKind::Match { scrutinee, arms } => {
                let s = self.eval(scrutinee);
                let mut out = Fact::default();
                for a in arms {
                    let depth = self.locals.len();
                    self.bind_pat(&a.pat, &s);
                    if let Some(g) = &a.guard {
                        self.eval(g);
                    }
                    let f = self.eval(&a.body);
                    self.locals.truncate(depth);
                    if out.ty.is_empty() {
                        out.ty = f.ty;
                    }
                    out.taint = out.taint.or(f.taint);
                }
                out
            }
            ExprKind::While { cond, body } => {
                self.eval(cond);
                self.block(body);
                Fact::default()
            }
            ExprKind::WhileLet { pat, scrutinee, body } => {
                let s = self.eval(scrutinee);
                let depth = self.locals.len();
                self.bind_pat(pat, &s);
                self.block(body);
                self.locals.truncate(depth);
                Fact::default()
            }
            ExprKind::Loop { body } => {
                self.block(body);
                Fact::default()
            }
            ExprKind::For { pat, iter, body } => {
                let it = self.eval(iter);
                let depth = self.locals.len();
                // Iterating a tainted collection yields tainted elements.
                self.bind_pat(pat, &Fact { ty: String::new(), taint: it.taint });
                self.block(body);
                self.locals.truncate(depth);
                Fact::default()
            }
            ExprKind::Closure { params, body } => {
                let depth = self.locals.len();
                for (pname, ty) in params {
                    let Some(p) = pname else { continue };
                    let head = ty.as_ref().map(strip_shells).unwrap_or_default();
                    let taint = (seq_contract(p) && !self.audited(&head))
                        .then(|| format!("contract-named closure parameter `{p}`"));
                    self.locals.push((p.clone(), Fact { ty: head, taint }));
                }
                self.eval(body);
                self.locals.truncate(depth);
                Fact::default()
            }
            ExprKind::Return(v) => {
                if let Some(v) = v {
                    let f = self.eval(v);
                    if self.returns.is_none() {
                        self.returns = f.taint;
                    }
                }
                Fact::default()
            }
            ExprKind::Break(v) => {
                if let Some(v) = v {
                    self.eval(v);
                }
                Fact::default()
            }
            ExprKind::Range { lo, hi } => {
                if let Some(l) = lo {
                    self.eval(l);
                }
                if let Some(h) = hi {
                    self.eval(h);
                }
                Fact::default()
            }
            ExprKind::MacroCall { .. } => Fact::default(),
        }
    }

    /// Resolve a path call to a unique fn id (typed head, module tail, or
    /// an unambiguous bare name).
    fn resolve_call(&self, segs: &[(String, usize)]) -> Option<usize> {
        let (last, _) = segs.last()?;
        if segs.len() >= 2 {
            let head = &segs[segs.len() - 2].0;
            let head = if head == "Self" {
                self.self_ty.clone().unwrap_or_default()
            } else {
                head.clone()
            };
            if let Some(&id) = self.r.by_qname.get(&format!("{head}::{last}")) {
                return Some(id);
            }
        }
        match self.r.candidates(last) {
            [only] => Some(*only),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Oracle-exit analysis
// ---------------------------------------------------------------------------

/// Names that *are* the oracle: a call to either satisfies an exit path.
pub const ORACLE_NAMES: [&str; 2] = ["debug_check", "validate"];

/// Result of the two call-graph fixpoints (indexed by fn id).
pub struct OracleSets {
    /// Every exit path ends in an oracle action.
    pub exit_checked: Vec<bool>,
    /// Every non-test caller is exit-checked or covered.
    pub covered: Vec<bool>,
}

/// One unprotected exit out of a fn body.
struct BadExit {
    /// Token index to attach the finding to.
    tok: usize,
    what: &'static str,
}

/// Compute the exit-checked and covered sets over the resolved graph.
pub fn oracle_sets(ws: &Workspace, cfg: &Config, r: &Resolved) -> OracleSets {
    // Least fixpoint for exit-checked: a tail call into the set counts as
    // an oracle action, so delegation chains settle over a few rounds.
    let mut exit_checked = vec![false; r.fns.len()];
    loop {
        let mut changed = false;
        for fid in 0..r.fns.len() {
            if exit_checked[fid] || r.fns[fid].is_test {
                continue;
            }
            let f = &ws.files[r.fns[fid].file];
            if !f.under_any(&cfg.reach_paths) && !cfg.entry_files.contains(&f.rel) {
                continue;
            }
            let Some((fd, _)) = find_fn(&f.ast.items, &r.fns[fid]) else { continue };
            let Some(body) = &fd.body else { continue };
            if bad_exits(body, fid, r, &exit_checked).is_empty() {
                exit_checked[fid] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Least fixpoint for covered: seeded from exit-checked callers only —
    // call cycles with no checked ancestor can never cover each other.
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); r.fns.len()];
    for (from, edges) in r.calls.iter().enumerate() {
        if r.fns[from].is_test {
            continue;
        }
        for e in edges {
            if e.to != from {
                callers[e.to].push(from);
            }
        }
    }
    let mut covered = vec![false; r.fns.len()];
    loop {
        let mut changed = false;
        for fid in 0..r.fns.len() {
            if covered[fid] || exit_checked[fid] || callers[fid].is_empty() {
                continue;
            }
            if callers[fid].iter().all(|&c| exit_checked[c] || covered[c]) {
                covered[fid] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    OracleSets { exit_checked, covered }
}

/// The handler-oracle wall: every `on_*`/`handle_*` fn in the entry files
/// must be exit-checked or covered; each unprotected exit of a handler
/// that is neither becomes one finding.
pub fn handler_oracle(ws: &Workspace, cfg: &Config, r: &Resolved) -> Vec<Finding> {
    let sets = oracle_sets(ws, cfg, r);
    let mut out = Vec::new();
    for fid in 0..r.fns.len() {
        let node = &r.fns[fid];
        let f = &ws.files[node.file];
        if node.is_test
            || !cfg.entry_files.contains(&f.rel)
            || !cfg.entry_prefixes.iter().any(|p| node.name.starts_with(p.as_str()))
        {
            continue;
        }
        if sets.exit_checked[fid] || sets.covered[fid] {
            continue;
        }
        let Some((fd, _)) = find_fn(&f.ast.items, node) else { continue };
        let Some(body) = &fd.body else { continue };
        for bad in bad_exits(body, fid, r, &sets.exit_checked) {
            let t = &f.toks[bad.tok.min(f.toks.len().saturating_sub(1))];
            out.push(Finding {
                rule: "handler-oracle".into(),
                file: f.rel.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "handler `{}` {} without a debug_check/validate oracle \
                     (every return path must end in the invariant check)",
                    node.qname, bad.what
                ),
            });
        }
    }
    out
}

/// Collect the unprotected exits of a body: the tail path (recursively
/// through `if`/`match`/block tails) plus every early `return`.
fn bad_exits(body: &Block, fid: usize, r: &Resolved, exit_checked: &[bool]) -> Vec<BadExit> {
    let mut bad = Vec::new();
    scan_returns(body, fid, r, exit_checked, &mut bad);
    tail_of_block(body, fid, r, exit_checked, &mut bad);
    bad
}

/// Whether `e` (paren-stripped) is an oracle action: a call to an
/// oracle-named fn/method, or a call whose every possible callee is
/// already exit-checked (delegation). `fid` is excluded so self-recursion
/// cannot vouch for itself.
fn oracle_action(e: &Expr, fid: usize, r: &Resolved, exit_checked: &[bool]) -> bool {
    let name = match &e.kind {
        ExprKind::Paren(x) => return oracle_action(x, fid, r, exit_checked),
        ExprKind::MethodCall { name, .. } => name,
        ExprKind::Call { callee, .. } => match &callee.kind {
            ExprKind::Path(segs) => match segs.last() {
                Some((n, _)) => n,
                None => return false,
            },
            _ => return false,
        },
        _ => return false,
    };
    if ORACLE_NAMES.contains(&name.as_str()) {
        return true;
    }
    let cands: Vec<usize> = r
        .candidates(name)
        .iter()
        .copied()
        .filter(|&c| c != fid && !r.fns[c].is_test)
        .collect();
    !cands.is_empty() && cands.iter().all(|&c| exit_checked[c])
}

/// Whether a statement is an oracle statement (used for "immediately
/// preceded by the oracle" checks on early returns and value tails).
fn oracle_stmt(s: &Stmt, fid: usize, r: &Resolved, exit_checked: &[bool]) -> bool {
    match &s.kind {
        StmtKind::Expr { expr, .. } => oracle_action(expr, fid, r, exit_checked),
        _ => false,
    }
}

/// Recursively flag `return` statements not protected by a preceding
/// oracle statement (or returning an oracle call's value). Closure bodies
/// are skipped — their returns exit the closure, not the handler.
fn scan_returns(b: &Block, fid: usize, r: &Resolved, ec: &[bool], bad: &mut Vec<BadExit>) {
    for (i, s) in b.stmts.iter().enumerate() {
        let StmtKind::Expr { expr, .. } = &s.kind else { continue };
        if let ExprKind::Return(v) = &expr.kind {
            let value_ok = v.as_ref().is_some_and(|x| oracle_action(x, fid, r, ec));
            let prev_ok = i > 0 && oracle_stmt(&b.stmts[i - 1], fid, r, ec);
            if !value_ok && !prev_ok {
                bad.push(BadExit { tok: expr.span.lo, what: "returns early" });
            }
            continue;
        }
        scan_returns_expr(expr, fid, r, ec, bad);
    }
}

fn scan_returns_expr(e: &Expr, fid: usize, r: &Resolved, ec: &[bool], bad: &mut Vec<BadExit>) {
    use ExprKind::*;
    match &e.kind {
        Closure { .. } => {} // separate exit domain
        Return(_) => {
            // A bare-expression `return` nested in some larger expression
            // (`x.then(|| …)` handled above; `let y = return` is illegal):
            // reaching here means it had no preceding statement to check.
            bad.push(BadExit { tok: e.span.lo, what: "returns early" });
        }
        Block(b) => scan_returns(b, fid, r, ec, bad),
        If { cond, then, else_ } => {
            scan_returns_expr(cond, fid, r, ec, bad);
            scan_returns(then, fid, r, ec, bad);
            if let Some(x) = else_ {
                scan_returns_expr(x, fid, r, ec, bad);
            }
        }
        IfLet { scrutinee, then, else_, .. } => {
            scan_returns_expr(scrutinee, fid, r, ec, bad);
            scan_returns(then, fid, r, ec, bad);
            if let Some(x) = else_ {
                scan_returns_expr(x, fid, r, ec, bad);
            }
        }
        Match { scrutinee, arms } => {
            scan_returns_expr(scrutinee, fid, r, ec, bad);
            for a in arms {
                if let Some(g) = &a.guard {
                    scan_returns_expr(g, fid, r, ec, bad);
                }
                scan_returns_expr(&a.body, fid, r, ec, bad);
            }
        }
        While { cond, body } => {
            scan_returns_expr(cond, fid, r, ec, bad);
            scan_returns(body, fid, r, ec, bad);
        }
        WhileLet { scrutinee, body, .. } => {
            scan_returns_expr(scrutinee, fid, r, ec, bad);
            scan_returns(body, fid, r, ec, bad);
        }
        Loop { body } => scan_returns(body, fid, r, ec, bad),
        For { iter, body, .. } => {
            scan_returns_expr(iter, fid, r, ec, bad);
            scan_returns(body, fid, r, ec, bad);
        }
        Unary { operand: x, .. } | Paren(x) | Try(x) | Ref { expr: x, .. }
        | Cast { expr: x, .. } => scan_returns_expr(x, fid, r, ec, bad),
        Binary { lhs, rhs, .. } | Assign { lhs, rhs, .. } | Index { base: lhs, index: rhs } => {
            scan_returns_expr(lhs, fid, r, ec, bad);
            scan_returns_expr(rhs, fid, r, ec, bad);
        }
        Field { base, .. } => scan_returns_expr(base, fid, r, ec, bad),
        Call { callee, args } => {
            scan_returns_expr(callee, fid, r, ec, bad);
            for a in args {
                scan_returns_expr(a, fid, r, ec, bad);
            }
        }
        MethodCall { recv, args, .. } => {
            scan_returns_expr(recv, fid, r, ec, bad);
            for a in args {
                scan_returns_expr(a, fid, r, ec, bad);
            }
        }
        Tuple(xs) | Array { elems: xs } => {
            for x in xs {
                scan_returns_expr(x, fid, r, ec, bad);
            }
        }
        StructLit { fields, base, .. } => {
            for (_, v) in fields {
                if let Some(v) = v {
                    scan_returns_expr(v, fid, r, ec, bad);
                }
            }
            if let Some(b) = base {
                scan_returns_expr(b, fid, r, ec, bad);
            }
        }
        Range { lo, hi } => {
            for x in [lo, hi].into_iter().flatten() {
                scan_returns_expr(x, fid, r, ec, bad);
            }
        }
        Break(Some(x)) => scan_returns_expr(x, fid, r, ec, bad),
        _ => {}
    }
}

/// Check the implicit tail exit of a block: the last statement must be an
/// oracle action, a branch whose every arm tail-checks, or a value tail
/// immediately preceded by an oracle statement.
fn tail_of_block(b: &Block, fid: usize, r: &Resolved, ec: &[bool], bad: &mut Vec<BadExit>) {
    let last = b.stmts.iter().rposition(|s| !matches!(s.kind, StmtKind::Empty));
    let Some(i) = last else {
        bad.push(BadExit { tok: b.span.hi.saturating_sub(1), what: "falls off an empty body" });
        return;
    };
    let prev_oracle = || i > 0 && oracle_stmt(&b.stmts[i - 1], fid, r, ec);
    match &b.stmts[i].kind {
        StmtKind::Expr { expr, semi } => {
            if oracle_action(expr, fid, r, ec) {
                return;
            }
            match &expr.kind {
                // `return` tails were already judged by scan_returns.
                ExprKind::Return(_) => {}
                ExprKind::Block(inner) => tail_of_block(inner, fid, r, ec, bad),
                ExprKind::If { then, else_, .. } => {
                    tail_of_block(then, fid, r, ec, bad);
                    match else_ {
                        Some(x) => tail_expr(x, fid, r, ec, bad),
                        // No else: the false path falls through unchecked
                        // unless an oracle statement precedes the `if`.
                        None => {
                            if !prev_oracle() {
                                bad.push(BadExit {
                                    tok: expr.span.lo,
                                    what: "falls through an `if` without an else",
                                });
                            }
                        }
                    }
                }
                ExprKind::IfLet { then, else_, .. } => {
                    tail_of_block(then, fid, r, ec, bad);
                    match else_ {
                        Some(x) => tail_expr(x, fid, r, ec, bad),
                        None => {
                            if !prev_oracle() {
                                bad.push(BadExit {
                                    tok: expr.span.lo,
                                    what: "falls through an `if let` without an else",
                                });
                            }
                        }
                    }
                }
                ExprKind::Match { arms, .. } => {
                    for a in arms {
                        tail_expr(&a.body, fid, r, ec, bad);
                    }
                }
                // A `loop` tail only exits via `return`/`break`, both
                // covered elsewhere; other tails are a plain unprotected
                // exit unless the previous statement ran the oracle.
                ExprKind::Loop { .. } => {}
                _ => {
                    let value_tail = !*semi;
                    if !(value_tail && prev_oracle()) {
                        bad.push(BadExit {
                            tok: expr.span.hi.saturating_sub(1),
                            what: if value_tail {
                                "returns its tail value"
                            } else {
                                "falls off the end"
                            },
                        });
                    }
                }
            }
        }
        _ => bad.push(BadExit {
            tok: b.span.hi.saturating_sub(1),
            what: "falls off the end",
        }),
    }
}

/// Tail-check an arm/else expression (block or bare expression).
fn tail_expr(e: &Expr, fid: usize, r: &Resolved, ec: &[bool], bad: &mut Vec<BadExit>) {
    if oracle_action(e, fid, r, ec) {
        return;
    }
    match &e.kind {
        ExprKind::Block(b) => tail_of_block(b, fid, r, ec, bad),
        ExprKind::If { then, else_, .. } | ExprKind::IfLet { then, else_, .. } => {
            tail_of_block(then, fid, r, ec, bad);
            match else_ {
                Some(x) => tail_expr(x, fid, r, ec, bad),
                None => bad.push(BadExit {
                    tok: e.span.lo,
                    what: "falls through an `if` without an else",
                }),
            }
        }
        ExprKind::Match { arms, .. } => {
            for a in arms {
                tail_expr(&a.body, fid, r, ec, bad);
            }
        }
        ExprKind::Return(_) | ExprKind::Loop { .. } => {}
        _ => bad.push(BadExit {
            tok: e.span.hi.saturating_sub(1),
            what: "returns its tail value",
        }),
    }
}

// ---------------------------------------------------------------------------
// Unit tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_engine::Workspace;

    fn cfg() -> Config {
        Config {
            determinism_paths: vec![],
            parser_modules: vec!["crates/x/src/wire.rs".into()],
            alloc_modules: vec![],
            seq_paths: vec!["crates/x/src".into()],
            seq_audited: vec!["crates/x/src/seq.rs".into()],
            reach_paths: vec!["crates/x/src".into()],
            entry_files: vec!["crates/x/src/host.rs".into()],
            entry_prefixes: vec!["on_".into(), "handle_".into()],
            parse_entry_prefixes: vec!["parse".into(), "read".into(), "decode".into()],
            unsafe_wall: false,
        }
    }

    const SEQ_RS: &str = "pub struct SeqNum(pub u32);\n\
        impl SeqNum { pub fn dist(self, o: SeqNum) -> u32 { self.0.wrapping_sub(o.0) } }\n";

    fn taint(files: Vec<(&str, &str)>) -> Vec<Finding> {
        let mut all = vec![("crates/x/src/seq.rs", SEQ_RS.to_string())];
        all.extend(files.into_iter().map(|(r, s)| (r, s.to_string())));
        let ws = Workspace::from_sources(all);
        let r = Resolved::build(&ws);
        seq_taint(&ws, &cfg(), &r)
    }

    #[test]
    fn taint_flows_through_renamed_local() {
        let fs = taint(vec![
            ("crates/x/src/wire.rs", "pub struct Hdr { pub seq: u32 }\n"),
            (
                "crates/x/src/use.rs",
                "use crate::wire::Hdr;\n\
                 pub fn f(h: &Hdr) -> u32 { let cursor = h.seq; cursor + 1 }\n",
            ),
        ]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("raw `+`"), "{}", fs[0].message);
        assert!(fs[0].message.contains("Hdr.seq"), "{}", fs[0].message);
    }

    #[test]
    fn named_counter_with_clean_type_is_not_tainted() {
        // A u64 field named `seq` on a non-wire struct is an event counter
        // under the declared-type rule; the v1 name heuristic flagged it.
        let fs = taint(vec![(
            "crates/x/src/eng.rs",
            "pub struct Eng { seq: u64 }\n\
             impl Eng { pub fn push(&mut self) { self.seq += 1; } }\n",
        )]);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn seqnum_extraction_taints_and_wrapper_arith_does_not() {
        let fs = taint(vec![(
            "crates/x/src/hot.rs",
            "use crate::seq::SeqNum;\n\
             pub fn f(a: SeqNum, n: u32) -> u32 {\n\
                 let safe = a + n;\n\
                 let raw = a.0;\n\
                 raw + 1\n\
             }\n",
        )]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains(".0"), "{}", fs[0].message);
    }

    #[test]
    fn return_summary_carries_taint_across_calls() {
        let fs = taint(vec![(
            "crates/x/src/lib.rs",
            "pub struct W;\n\
             impl W { pub fn cur(&self, dseq: u64) -> u64 { dseq } }\n\
             pub fn g(w: &W) -> u64 { w.cur(7) - 1 }\n",
        )]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("W::cur"), "{}", fs[0].message);
    }

    #[test]
    fn wrapping_on_tainted_pattern_binding_fires() {
        let fs = taint(vec![(
            "crates/x/src/lib.rs",
            "pub fn f(v: &[(u64, u64)]) -> u64 {\n\
                 let mut out = 0u64;\n\
                 for &(dseq, len) in v { out = dseq.wrapping_add(len); }\n\
                 out\n\
             }\n",
        )]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("wrapping_add"));
    }

    fn oracle(files: Vec<(&str, &str)>) -> Vec<Finding> {
        let ws =
            Workspace::from_sources(files.into_iter().map(|(r, s)| (r, s.to_string())).collect());
        let r = Resolved::build(&ws);
        handler_oracle(&ws, &cfg(), &r)
    }

    const HOST_OK: &str = "pub struct H;\n\
        impl H {\n\
            fn validate(&self) -> Result<(), String> { Ok(()) }\n\
            fn debug_check(&self, _s: &str) {}\n\
            pub fn on_tick(&mut self) { self.on_tick_inner(); self.debug_check(\"t\"); }\n\
            fn on_tick_inner(&mut self) { if true { return; } }\n\
        }\n";

    #[test]
    fn wrapper_idiom_passes_and_covers_inner() {
        assert!(oracle(vec![("crates/x/src/host.rs", HOST_OK)]).is_empty());
    }

    #[test]
    fn early_return_without_oracle_is_one_finding() {
        let fs = oracle(vec![(
            "crates/x/src/host.rs",
            "pub struct H;\n\
             impl H {\n\
                 fn debug_check(&self, _s: &str) {}\n\
                 pub fn on_tick(&mut self, stop: bool) {\n\
                     if stop { return; }\n\
                     self.debug_check(\"t\");\n\
                 }\n\
             }\n",
        )]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("returns early"), "{}", fs[0].message);
        assert_eq!(fs[0].line, 5);
    }

    #[test]
    fn delegation_to_exit_checked_fn_counts() {
        let fs = oracle(vec![(
            "crates/x/src/host.rs",
            "pub struct H;\n\
             impl H {\n\
                 fn debug_check(&self, _s: &str) {}\n\
                 fn post(&mut self) { self.debug_check(\"p\"); }\n\
                 pub fn on_tick(&mut self) { self.post(); }\n\
             }\n",
        )]);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn match_tails_must_all_check() {
        let fs = oracle(vec![(
            "crates/x/src/host.rs",
            "pub struct H;\n\
             impl H {\n\
                 fn debug_check(&self, _s: &str) {}\n\
                 pub fn on_tick(&mut self, k: u32) {\n\
                     match k {\n\
                         0 => self.debug_check(\"a\"),\n\
                         _ => {}\n\
                     }\n\
                 }\n\
             }\n",
        )]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("falls off"), "{}", fs[0].message);
    }

    #[test]
    fn value_tail_preceded_by_oracle_passes() {
        let fs = oracle(vec![(
            "crates/x/src/host.rs",
            "pub struct H;\n\
             impl H {\n\
                 fn debug_check(&self, _s: &str) {}\n\
                 pub fn on_make(&mut self) -> u32 {\n\
                     let v = 7;\n\
                     self.debug_check(\"m\");\n\
                     v\n\
                 }\n\
             }\n",
        )]);
        assert!(fs.is_empty(), "{fs:?}");
    }
}

//! Lint report: human and machine-readable output, plus the
//! `LINT_budgets.json` ratchet.
//!
//! The JSON report is what CI uploads as an artifact: every finding with
//! `rule`/`file`/`line`/`col`/`message`, every *used* allow marker with
//! its reason, per-rule allow counts, and the `vendor/` unsafe inventory.
//! The budgets file pins the per-rule allow counts: any unallowed finding
//! fails the gate outright, and allow-count *growth* beyond the checked-in
//! budget fails too, so opt-outs cannot accrete silently. Shrinking below
//! budget prints a ratchet hint instead.
//!
//! JSON is emitted by hand (sorted keys, `\u{…}`-free ASCII escapes) —
//! the engine is dependency-free, and byte-stable output keeps artifact
//! diffs meaningful.

use std::collections::BTreeMap;
use std::path::Path;

use super::{Allow, Finding, Workspace};
use crate::lint_engine::lexer::{lex, TokKind};

/// Everything one engine run produced.
pub struct Report {
    /// Unallowed findings (the gate fails if non-empty).
    pub findings: Vec<Finding>,
    /// Used allow markers, each carrying its reason.
    pub allows: Vec<(String, Allow)>,
    /// Per-rule used-allow counts.
    pub allow_counts: BTreeMap<String, usize>,
    /// Files scanned.
    pub files: usize,
    /// Fn items discovered.
    pub fns: usize,
    /// AST parse fallbacks across the workspace (must be zero: a fallback
    /// is a construct the v2 analyses silently cannot see into).
    pub parse_fallbacks: usize,
    /// `unsafe` token counts per vendored crate (exempt, inventoried).
    pub vendor_unsafe: BTreeMap<String, usize>,
}

impl Report {
    /// Assemble a report from an engine run's outputs. Each allow is
    /// tagged with the workspace-relative file its marker lives in.
    pub fn new(ws: &Workspace, findings: Vec<Finding>, allows: Vec<(String, Allow)>) -> Report {
        let mut allow_counts: BTreeMap<String, usize> = BTreeMap::new();
        for (_, a) in &allows {
            *allow_counts.entry(a.rule.clone()).or_insert(0) += 1;
        }
        Report {
            findings,
            allows,
            allow_counts,
            files: ws.files.len(),
            fns: ws.files.iter().map(|f| f.items.fns.len()).sum(),
            parse_fallbacks: ws.files.iter().map(|f| f.ast.fallbacks.len()).sum(),
            vendor_unsafe: BTreeMap::new(),
        }
    }

    /// Count `unsafe` tokens per vendored crate under `root/vendor/`.
    /// Exempt from the wall, but the inventory keeps the report honest
    /// about how much unsafety the build actually links.
    pub fn inventory_vendor(&mut self, root: &Path) -> std::io::Result<()> {
        let vendor = root.join("vendor");
        if !vendor.is_dir() {
            return Ok(());
        }
        let mut dirs: Vec<_> = std::fs::read_dir(&vendor)?
            .collect::<std::io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for d in dirs {
            let name = d.file_name().unwrap_or_default().to_string_lossy().to_string();
            let mut count = 0usize;
            let mut files = Vec::new();
            super::walk(&d, &mut files)?;
            for p in files {
                let src = std::fs::read_to_string(&p)?;
                count += lex(&src)
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident && t.text(&src) == "unsafe")
                    .count();
            }
            self.vendor_unsafe.insert(name, count);
        }
        Ok(())
    }

    /// Human-readable summary to a writer-ish string.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        let allows: Vec<String> = self
            .allow_counts
            .iter()
            .map(|(r, n)| format!("{r}={n}"))
            .collect();
        let vendor: Vec<String> = self
            .vendor_unsafe
            .iter()
            .map(|(c, n)| format!("{c}={n}"))
            .collect();
        out.push_str(&format!(
            "lint: {} finding(s), {} allow marker(s) [{}] across {} files / {} fns \
             ({} parse fallbacks); vendor unsafe inventory [{}]\n",
            self.findings.len(),
            self.allow_counts.values().sum::<usize>(),
            allows.join(", "),
            self.files,
            self.fns,
            self.parse_fallbacks,
            vendor.join(", "),
        ));
        out
    }

    /// The machine-readable artifact.
    pub fn json(&self) -> String {
        let mut s = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"id\": {}, \"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \
                 \"message\": {}}}",
                js(&f.id()),
                js(&f.rule),
                js(&f.file),
                f.line,
                f.col,
                js(&f.message)
            ));
        }
        s.push_str(if self.findings.is_empty() { "],\n" } else { "\n  ],\n" });
        s.push_str("  \"allows\": [");
        for (i, (file, a)) in self.allows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
                js(&a.rule),
                js(file),
                a.marker_line,
                js(&a.reason)
            ));
        }
        s.push_str(if self.allows.is_empty() { "],\n" } else { "\n  ],\n" });
        s.push_str("  \"allow_counts\": {");
        for (i, (r, n)) in self.allow_counts.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{}: {}", js(r), n));
        }
        s.push_str("},\n");
        s.push_str("  \"vendor_unsafe\": {");
        for (i, (c, n)) in self.vendor_unsafe.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{}: {}", js(c), n));
        }
        s.push_str("},\n");
        s.push_str(&format!(
            "  \"files\": {},\n  \"fns\": {},\n  \"parse_fallbacks\": {}\n}}\n",
            self.files, self.fns, self.parse_fallbacks
        ));
        s
    }

    /// Gate against `LINT_budgets.json`: unallowed findings always fail;
    /// per-rule allow counts may not exceed their budgeted ceiling.
    /// Returns human-readable violations (empty = pass) and ratchet hints.
    pub fn gate(&self, budgets_src: &str) -> (Vec<String>, Vec<String>) {
        let mut violations = Vec::new();
        let mut hints = Vec::new();
        if !self.findings.is_empty() {
            violations.push(format!("{} unallowed finding(s)", self.findings.len()));
        }
        for (rule, &n) in &self.allow_counts {
            match budget_value(budgets_src, &format!("allow/{rule}")) {
                Some(max) if n > max => violations.push(format!(
                    "allow-{rule} count {n} exceeds budget {max} (LINT_budgets.json): \
                     justify by raising the budget in the same change, or fix the code"
                )),
                Some(max) if n < max => hints.push(format!(
                    "allow-{rule} count {n} is below budget {max}: ratchet LINT_budgets.json down"
                )),
                Some(_) => {}
                None => violations.push(format!(
                    "LINT_budgets.json lacks \"allow/{rule}\" (count {n})"
                )),
            }
        }
        (violations, hints)
    }
}

/// Read a flat `"key": number` value out of a budgets file (same format
/// family as `ALLOC_budgets.json`).
fn budget_value(src: &str, key: &str) -> Option<usize> {
    let needle = format!("\"{key}\"");
    let at = src.find(&needle)?;
    let rest = src[at + needle.len()..].trim_start().strip_prefix(':')?;
    let digits: String = rest.trim_start().chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Minimal JSON string escaping.
fn js(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_value_parses_flat_json() {
        let src = "{\n  \"allow/panic\": 12,\n  \"allow/seq-arith\": 6\n}\n";
        assert_eq!(budget_value(src, "allow/panic"), Some(12));
        assert_eq!(budget_value(src, "allow/seq-arith"), Some(6));
        assert_eq!(budget_value(src, "allow/alloc"), None);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(js("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn gate_flags_growth_and_hints_shrink() {
        let ws = Workspace::from_sources(vec![]);
        let mut rep = Report::new(&ws, vec![], vec![]);
        rep.allow_counts.insert("panic".into(), 3);
        let budgets = "{\"allow/panic\": 2}";
        let (v, _) = rep.gate(budgets);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("exceeds budget"));
        let budgets = "{\"allow/panic\": 5}";
        let (v, h) = rep.gate(budgets);
        assert!(v.is_empty());
        assert_eq!(h.len(), 1);
        assert!(h[0].contains("ratchet"));
    }

    #[test]
    fn json_shape_is_stable() {
        let ws = Workspace::from_sources(vec![]);
        let rep = Report::new(&ws, vec![], vec![]);
        let j = rep.json();
        assert!(j.contains("\"findings\": []"));
        assert!(j.contains("\"allow_counts\": {}"));
        assert!(j.contains("\"vendor_unsafe\": {}"));
    }
}

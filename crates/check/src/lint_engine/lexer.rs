//! A hand-rolled, dependency-free Rust lexer.
//!
//! The lint walls need to reason about *tokens*, not lines: a doc comment
//! mentioning `HashMap` is not a finding, a `.expect(` split across two
//! lines is, and a raw string containing `panic!` is neither. This lexer
//! produces exactly the token stream the rules need — identifiers,
//! lifetimes, literals (including raw/byte strings and nested block
//! comments), and multi-character punctuation — with byte spans and
//! line/column positions, in the same hand-rolled spirit as the repo's
//! TOML-subset parser (`mpw-scenario`).
//!
//! It is *not* a full rustc lexer: it does not classify keywords (rules
//! check identifier text), does not parse attributes or macros (the item
//! pass layers that on), and treats every numeric literal uniformly. It
//! is, however, exact on the constructs that made the old line-based
//! scanners unsound: string/char/comment boundaries, raw strings with
//! arbitrary `#` counts, nested `/* /* */ */`, and lifetimes vs char
//! literals.

/// What kind of token a [`Tok`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, `r#type`, ...).
    Ident,
    /// Lifetime (`'a`, `'static`) — the tick and the name, one token.
    Lifetime,
    /// Numeric literal (`0`, `0xFF_u32`, `1.5e3`).
    Num,
    /// String-ish literal: `"..."`, `r"..."`, `r#"..."#`, `b"..."`,
    /// `br#"..."#` — possibly spanning multiple lines.
    Str,
    /// Char or byte literal: `'x'`, `'\n'`, `b'\0'`.
    Char,
    /// `// ...` comment, including `///` and `//!` doc comments.
    LineComment,
    /// `/* ... */` comment, nesting tracked, possibly multi-line.
    BlockComment,
    /// Punctuation, possibly multi-character (`::`, `->`, `+=`, `..=`).
    Punct,
}

/// One lexed token. Text is recovered as `&src[start..end]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the first byte.
    pub col: u32,
}

impl Tok {
    /// The token's text within its source.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// Whether this token is a comment (trivia for most rules).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Multi-character punctuation, longest first so greedy matching is
/// correct (`..=` before `..` before `.`).
const MULTI_PUNCT: [&str; 24] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into a token stream. Total over arbitrary input: unterminated
/// literals and stray bytes produce best-effort tokens rather than errors,
/// so the walls can still scan a file that does not compile.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    b: &'s [u8],
    i: usize,
    line: u32,
    col: u32,
    out: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.i < self.b.len() {
            let (line, col, start) = (self.line, self.col, self.i);
            let kind = self.next_kind();
            match kind {
                None => continue, // whitespace
                Some(kind) => self.out.push(Tok {
                    kind,
                    start,
                    end: self.i,
                    line,
                    col,
                }),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    /// Advance one byte, tracking line/column.
    fn bump(&mut self) {
        if self.b[self.i] == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.i += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.i < self.b.len() {
                self.bump();
            }
        }
    }

    /// Consume one token's worth of input; `None` means whitespace.
    fn next_kind(&mut self) -> Option<TokKind> {
        let c = self.b[self.i];
        if c.is_ascii_whitespace() {
            self.bump();
            return None;
        }
        // Comments.
        if c == b'/' {
            match self.peek(1) {
                Some(b'/') => {
                    while self.i < self.b.len() && self.b[self.i] != b'\n' {
                        self.bump();
                    }
                    return Some(TokKind::LineComment);
                }
                Some(b'*') => {
                    self.bump_n(2);
                    let mut depth = 1usize;
                    while self.i < self.b.len() && depth > 0 {
                        if self.b[self.i] == b'/' && self.peek(1) == Some(b'*') {
                            depth += 1;
                            self.bump_n(2);
                        } else if self.b[self.i] == b'*' && self.peek(1) == Some(b'/') {
                            depth -= 1;
                            self.bump_n(2);
                        } else {
                            self.bump();
                        }
                    }
                    return Some(TokKind::BlockComment);
                }
                _ => {}
            }
        }
        // Raw strings / byte strings / raw identifiers: r" r#" r#ident
        // b" b' br" br#".
        if c == b'r' || c == b'b' {
            if let Some(kind) = self.try_prefixed_literal() {
                return Some(kind);
            }
        }
        if c == b'"' {
            self.eat_string();
            return Some(TokKind::Str);
        }
        if c == b'\'' {
            return Some(self.eat_char_or_lifetime());
        }
        if is_ident_start(c) {
            self.bump();
            while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                self.bump();
            }
            return Some(TokKind::Ident);
        }
        if c.is_ascii_digit() {
            self.eat_number();
            return Some(TokKind::Num);
        }
        // Punctuation, greedy.
        for m in MULTI_PUNCT {
            if self.b[self.i..].starts_with(m.as_bytes()) {
                self.bump_n(m.len());
                return Some(TokKind::Punct);
            }
        }
        self.bump();
        Some(TokKind::Punct)
    }

    /// `r`/`b`-prefixed literal starting at `self.i`, or None if the
    /// prefix is just the start of an ordinary identifier.
    fn try_prefixed_literal(&mut self) -> Option<TokKind> {
        let c = self.b[self.i];
        let rest = &self.b[self.i..];
        // br" / br#" — raw byte string.
        if c == b'b' && rest.len() >= 2 && rest[1] == b'r' {
            let hashes = count_hashes(&rest[2..]);
            if rest.get(2 + hashes) == Some(&b'"') {
                self.bump_n(2);
                self.eat_raw_string();
                return Some(TokKind::Str);
            }
        }
        // b" — byte string; b' — byte char.
        if c == b'b' {
            if rest.get(1) == Some(&b'"') {
                self.bump();
                self.eat_string();
                return Some(TokKind::Str);
            }
            if rest.get(1) == Some(&b'\'') {
                self.bump();
                // A byte char is always a char literal, never a lifetime.
                self.eat_char_literal();
                return Some(TokKind::Char);
            }
        }
        // r" / r#" — raw string; r#ident — raw identifier.
        if c == b'r' {
            let hashes = count_hashes(&rest[1..]);
            if rest.get(1 + hashes) == Some(&b'"') {
                self.eat_raw_string();
                return Some(TokKind::Str);
            }
            if hashes == 1 && rest.get(2).is_some_and(|&b| is_ident_start(b)) {
                self.bump_n(2);
                while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                    self.bump();
                }
                return Some(TokKind::Ident);
            }
        }
        None
    }

    /// Starting at `r`, consume `r#*"..."#*` with matching hash counts.
    fn eat_raw_string(&mut self) {
        self.bump(); // r
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) == Some(b'"') {
            self.bump();
        }
        while self.i < self.b.len() {
            if self.b[self.i] == b'"' {
                let close = &self.b[self.i + 1..];
                if close.len() >= hashes && close[..hashes].iter().all(|&b| b == b'#') {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }

    /// Starting at `"`, consume an escaped (possibly multi-line) string.
    fn eat_string(&mut self) {
        self.bump(); // opening quote
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Starting at `'`, consume a char literal body through its closing
    /// tick (used where the prefix guarantees a literal, e.g. `b'…'`).
    fn eat_char_literal(&mut self) {
        self.bump(); // opening tick
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.bump_n(2),
                b'\'' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Starting at `'`: decide char literal vs lifetime.
    ///
    /// `'\…'` is always a char. `'x…` is a char iff the identifier-shaped
    /// run after the tick is followed by a closing tick (`'a'`), otherwise
    /// a lifetime (`'a`, `'static`). `'('`-style punctuation chars are
    /// chars.
    fn eat_char_or_lifetime(&mut self) -> TokKind {
        if self.peek(1) == Some(b'\\') {
            self.eat_char_literal();
            return TokKind::Char;
        }
        if self.peek(1).is_some_and(is_ident_start) {
            let mut j = self.i + 1;
            while j < self.b.len() && is_ident_continue(self.b[j]) {
                j += 1;
            }
            if self.b.get(j) == Some(&b'\'') {
                self.bump_n(j + 1 - self.i);
                return TokKind::Char;
            }
            // Lifetime: consume tick + name.
            self.bump_n(j - self.i);
            return TokKind::Lifetime;
        }
        // Non-identifier char ('+', ' ', digit) — a char literal.
        self.eat_char_literal();
        TokKind::Char
    }

    /// Starting at a digit: integers, floats, exponents, suffixes. Does
    /// not consume the dot of `0.wrapping_sub(..)`-style tuple/method
    /// access (a dot is taken only when a digit follows).
    fn eat_number(&mut self) {
        self.bump();
        while self.i < self.b.len()
            && (self.b[self.i].is_ascii_alphanumeric() || self.b[self.i] == b'_')
        {
            // `1e3` / `0x1f` continue; a trailing type suffix (`u32`) is
            // part of the literal; `e+3`/`e-3` handled below.
            self.bump();
        }
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.bump(); // dot
            while self.i < self.b.len()
                && (self.b[self.i].is_ascii_alphanumeric() || self.b[self.i] == b'_')
            {
                self.bump();
            }
        }
        // Signed exponent: `1.5e-3` — the alnum loop stopped at `-`.
        if (self.b.get(self.i.wrapping_sub(1)) == Some(&b'e')
            || self.b.get(self.i.wrapping_sub(1)) == Some(&b'E'))
            && matches!(self.peek(0), Some(b'+') | Some(b'-'))
            && self.peek(1).is_some_and(|b| b.is_ascii_digit())
        {
            self.bump();
            while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
                self.bump();
            }
        }
    }
}

fn count_hashes(b: &[u8]) -> usize {
    b.iter().take_while(|&&c| c == b'#').count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text(src).to_string()).collect()
    }

    #[test]
    fn idents_keywords_and_punct() {
        assert_eq!(
            texts("fn f(x: u32) -> u32 { x += 1; x }"),
            ["fn", "f", "(", "x", ":", "u32", ")", "->", "u32", "{", "x", "+=", "1", ";", "x", "}"]
        );
    }

    #[test]
    fn multichar_punct_is_greedy() {
        assert_eq!(texts("a..=b .. :: ->"), ["a", "..=", "b", "..", "::", "->"]);
    }

    #[test]
    fn strings_are_single_tokens_even_multiline() {
        let src = "let s = \"panic! and\nHashMap\"; x";
        let k = kinds(src);
        assert_eq!(k[3].0, TokKind::Str);
        assert_eq!(k[3].1, "\"panic! and\nHashMap\"");
        assert_eq!(k[5].1, "x");
        // The token *after* a multi-line string is on the right line.
        assert_eq!(lex(src)[5].line, 2);
    }

    #[test]
    fn escaped_quotes_stay_inside_the_string() {
        let k = kinds(r#"let s = "a \" b"; y"#);
        assert_eq!(k[3].0, TokKind::Str);
        assert_eq!(k[5].1, "y");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"unwrap() " inside"#; z"###;
        let k = kinds(src);
        assert_eq!(k[3].0, TokKind::Str);
        assert_eq!(k[5].1, "z");
        let src2 = "r\"plain raw\" q";
        assert_eq!(kinds(src2)[0].0, TokKind::Str);
        assert_eq!(kinds(src2)[1].1, "q");
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let k = kinds(r#"let a = b"bytes"; let c = b'\0'; w"#);
        assert_eq!(k[3].0, TokKind::Str);
        assert_eq!(k[8].0, TokKind::Char);
        assert_eq!(k.last().unwrap().1, "w");
    }

    #[test]
    fn raw_identifiers() {
        let k = kinds("let r#type = 1;");
        assert_eq!(k[1], (TokKind::Ident, "r#type".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let k = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(k.iter().any(|(kind, t)| *kind == TokKind::Lifetime && t == "'a"));
        assert!(k.iter().any(|(kind, t)| *kind == TokKind::Char && t == "'x'"));
        assert!(k.iter().any(|(kind, t)| *kind == TokKind::Char && t == "'\\n'"));
        let k = kinds("&'static str");
        assert_eq!(k[1], (TokKind::Lifetime, "'static".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let k = kinds(src);
        assert_eq!(k[0].1, "a");
        assert_eq!(k[1].0, TokKind::BlockComment);
        assert_eq!(k[2].1, "b");
    }

    #[test]
    fn line_comments_stop_at_newline() {
        let k = kinds("x // trailing HashMap\ny");
        assert_eq!(k[1].0, TokKind::LineComment);
        assert_eq!(k[2].1, "y");
        assert_eq!(lex("x // c\ny")[2].line, 2);
    }

    #[test]
    fn tuple_index_chain_is_not_a_float() {
        // `x.0.wrapping_sub(y)` must keep `wrapping_sub` as an ident.
        let t = texts("x.0.wrapping_sub(y)");
        assert_eq!(t, ["x", ".", "0", ".", "wrapping_sub", "(", "y", ")"]);
    }

    #[test]
    fn numbers_floats_and_suffixes() {
        assert_eq!(texts("1.5e-3 0xFF_u32 42usize 1..4"), ["1.5e-3", "0xFF_u32", "42usize", "1", "..", "4"]);
    }

    #[test]
    fn line_and_col_positions() {
        let src = "ab cd\n  ef";
        let t = lex(src);
        assert_eq!((t[0].line, t[0].col), (1, 1));
        assert_eq!((t[1].line, t[1].col), (1, 4));
        assert_eq!((t[2].line, t[2].col), (2, 3));
    }

    #[test]
    fn total_on_garbage() {
        // Unterminated constructs must not loop or panic.
        for src in ["\"unterminated", "r#\"open", "/* open", "'", "b'", "\u{1F980} crab"] {
            let _ = lex(src);
        }
    }
}

//! A hand-rolled recursive-descent Rust parser over the [`lexer`] token
//! stream (DESIGN.md §5.13).
//!
//! The token-level walls (PR 7) could see *tokens* but not *structure*: a
//! call graph keyed by bare names conflates `SendBuffer::read` with
//! `PcapReader::read`, and "is this ident a sequence number" was a naming
//! convention, not a type fact. This parser recovers the structure the
//! precise walls need — items, impl blocks with their `Self` types, and fn
//! bodies as real expression trees — while staying dependency-free and
//! total over arbitrary input.
//!
//! Design rules:
//!
//! * **Every node carries an exact token span** (`[lo, hi)` in *original*
//!   token indices, comments included in the numbering). The span-gap
//!   printer ([`Ast::print`]) re-emits a file from its tree: each node
//!   prints the raw tokens between its structural children. Re-lexing the
//!   output must reproduce the original non-comment token stream — the
//!   fixpoint test in `tests/parse_fixpoint.rs` runs that over every
//!   workspace file, so a span bug or a dropped subtree fails loudly.
//! * **Totality with *counted* fallbacks.** Constructs the grammar does not
//!   cover parse into [`ExprKind::Err`]/[`ItemKind::Err`] nodes and are
//!   recorded in [`Ast::fallbacks`]. The workspace must parse with **zero**
//!   fallbacks (CI asserts it), so a future syntax gap fails the build
//!   instead of silently weakening an analysis.
//! * **Opaque where structure is not needed.** Attributes, generic
//!   parameter lists, `where` clauses, and macro bodies are carved as
//!   balanced token runs with spans; the analyses never look inside them,
//!   and the gap printer reproduces them verbatim.

use super::lexer::{Tok, TokKind};

/// Original-token-index span, `[lo, hi)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    pub lo: usize,
    pub hi: usize,
}

impl Span {
    fn new(lo: usize, hi: usize) -> Span {
        Span { lo, hi }
    }
}

/// One parsed file.
#[derive(Debug, Default)]
pub struct Ast {
    pub items: Vec<Item>,
    /// Spans the parser could not structure (`UnsupportedConstruct`).
    pub fallbacks: Vec<Span>,
}

/// A top-level or nested item.
#[derive(Debug)]
pub struct Item {
    pub span: Span,
    pub kind: ItemKind,
}

#[derive(Debug)]
pub enum ItemKind {
    /// `use a::b::{c, d as e, *};` flattened: each entry is
    /// (path segments, local name; `*` imports have an empty local name).
    Use(Vec<UseEntry>),
    Fn(FnDef),
    Struct(StructDef),
    Enum(EnumDef),
    /// `impl [Trait for] SelfTy { items }`.
    Impl(ImplDef),
    /// `trait Name { items }`.
    Trait { name: String, items: Vec<Item> },
    /// Inline `mod name { items }` or out-of-line `mod name;`.
    Mod { name: String, items: Vec<Item>, inline: bool },
    /// `const NAME: Ty = expr;` / `static NAME: Ty = expr;`.
    Const { name: String, ty: Ty, init: Option<Expr> },
    /// `type Name = Ty;` (free or associated).
    TypeAlias { name: String },
    /// Item-position macro invocation.
    MacroCall { name: String, body: Span },
    /// Inner attribute `#![...]` at file/module top.
    InnerAttr,
    /// Unsupported item — recorded in [`Ast::fallbacks`].
    Err,
}

#[derive(Debug)]
pub struct UseEntry {
    /// Full path segments (`["mpw_tcp", "wire", "parse_packet"]`); a glob
    /// import ends with `"*"`.
    pub path: Vec<String>,
    /// Name the import binds locally (last segment, or the `as` alias).
    pub local: String,
}

#[derive(Debug)]
pub struct FnDef {
    pub name: String,
    /// Token index of the name ident.
    pub name_tok: usize,
    /// Declared self receiver, if a method (`&self`, `&mut self`, `self`).
    pub has_self: bool,
    /// Non-self parameters: (binding name if simple, declared type).
    pub params: Vec<(Option<String>, Ty)>,
    /// Declared return type.
    pub ret: Option<Ty>,
    /// `None` for bodyless trait-method declarations.
    pub body: Option<Block>,
}

#[derive(Debug)]
pub struct StructDef {
    pub name: String,
    /// Named fields (empty for tuple/unit structs).
    pub fields: Vec<(String, Ty)>,
    /// Tuple-struct positional field types.
    pub tuple_fields: Vec<Ty>,
}

#[derive(Debug)]
pub struct EnumDef {
    pub name: String,
    /// Variant name plus tuple-field types (named-field variants record
    /// their field types too, order only).
    pub variants: Vec<(String, Vec<Ty>)>,
}

#[derive(Debug)]
pub struct ImplDef {
    /// Head ident of the implemented trait, if a trait impl.
    pub trait_name: Option<String>,
    /// Head ident of the self type (`TcpSocket` for `impl TcpSocket`,
    /// `SeqNum` for `impl Add<u32> for SeqNum`).
    pub self_ty: String,
    pub items: Vec<Item>,
}

/// A type, structured just enough for resolution: the head path and
/// generic arguments; reference/slice/tuple shells are unwrapped into
/// `head` markers.
#[derive(Clone, Debug)]
pub struct Ty {
    pub span: Span,
    /// Path segments of the base type (`["wire", "TcpSegment"]`), or a
    /// marker: `"&"` (reference), `"[]"` (slice/array), `"()"` (tuple),
    /// `"fn"` (fn pointer), `"dyn"`/`"impl"` shells keep the inner head.
    pub segs: Vec<String>,
    /// Generic arguments (types only; lifetimes and bindings skipped).
    pub args: Vec<Ty>,
}

impl Ty {
    /// The bare head name (`TcpSegment` for `&mut wire::TcpSegment`).
    pub fn head(&self) -> &str {
        self.segs.last().map(|s| s.as_str()).unwrap_or("")
    }
}

#[derive(Debug)]
pub struct Block {
    pub span: Span,
    pub stmts: Vec<Stmt>,
}

#[derive(Debug)]
pub struct Stmt {
    pub span: Span,
    pub kind: StmtKind,
}

#[derive(Debug)]
pub enum StmtKind {
    /// `let pat(: ty)? (= init (else else_block)?)? ;`
    Let {
        pat: Pat,
        ty: Option<Ty>,
        init: Option<Expr>,
        else_block: Option<Block>,
    },
    /// Expression statement; `semi` records the trailing `;`.
    Expr { expr: Expr, semi: bool },
    Item(Item),
    Empty,
}

#[derive(Debug)]
pub struct Pat {
    pub span: Span,
    pub kind: PatKind,
}

#[derive(Debug)]
pub enum PatKind {
    Wild,
    /// `..` rest pattern.
    Rest,
    /// Simple binding, possibly `name @ subpat`.
    Ident { name: String, sub: Option<Box<Pat>> },
    /// Literal or literal range pattern.
    Lit,
    /// Unit path pattern (`TcpState::Closed`, `None`).
    Path(Vec<String>),
    /// `Some(x)`, `Ok(a, b)`.
    TupleStruct { path: Vec<String>, elems: Vec<Pat> },
    /// `Point { x, y: py, .. }` — field name plus sub-pattern if renamed.
    Struct { path: Vec<String>, fields: Vec<(String, Option<Pat>)> },
    Tuple(Vec<Pat>),
    Slice(Vec<Pat>),
    Ref(Box<Pat>),
    Or(Vec<Pat>),
    Err,
}

#[derive(Debug)]
pub struct Expr {
    pub span: Span,
    pub kind: ExprKind,
}

#[derive(Debug)]
pub struct Arm {
    pub span: Span,
    pub pat: Pat,
    pub guard: Option<Expr>,
    pub body: Expr,
}

#[derive(Debug)]
pub enum ExprKind {
    /// Literal token (number, string, char, `true`/`false`).
    Lit,
    /// Path expression: segments with the token index of each segment.
    Path(Vec<(String, usize)>),
    Unary { op: String, operand: Box<Expr> },
    Binary { op: String, op_tok: usize, lhs: Box<Expr>, rhs: Box<Expr> },
    Assign { op: String, lhs: Box<Expr>, rhs: Box<Expr> },
    Cast { expr: Box<Expr>, ty: Ty, as_tok: usize },
    /// Free/path call: `callee(args)`.
    Call { callee: Box<Expr>, args: Vec<Expr> },
    /// `recv.name(args)` — `name_tok` is the method ident token.
    MethodCall { recv: Box<Expr>, name: String, name_tok: usize, args: Vec<Expr> },
    /// `base.name` — field access or tuple index.
    Field { base: Box<Expr>, name: String },
    Index { base: Box<Expr>, index: Box<Expr> },
    /// `expr?`.
    Try(Box<Expr>),
    Ref { mutable: bool, expr: Box<Expr> },
    Tuple(Vec<Expr>),
    Paren(Box<Expr>),
    /// `[a, b]` or `[elem; len]`.
    Array { elems: Vec<Expr> },
    StructLit { path: Vec<(String, usize)>, fields: Vec<(String, Option<Expr>)>, base: Option<Box<Expr>> },
    Block(Block),
    If { cond: Box<Expr>, then: Block, else_: Option<Box<Expr>> },
    IfLet { pat: Pat, scrutinee: Box<Expr>, then: Block, else_: Option<Box<Expr>> },
    Match { scrutinee: Box<Expr>, arms: Vec<Arm> },
    While { cond: Box<Expr>, body: Block },
    WhileLet { pat: Pat, scrutinee: Box<Expr>, body: Block },
    Loop { body: Block },
    For { pat: Pat, iter: Box<Expr>, body: Block },
    Closure { params: Vec<(Option<String>, Option<Ty>)>, body: Box<Expr> },
    Return(Option<Box<Expr>>),
    Break(Option<Box<Expr>>),
    Continue,
    Range { lo: Option<Box<Expr>>, hi: Option<Box<Expr>> },
    /// `name!(...)` / `name![...]` / `name! {...}`.
    MacroCall { name: String, name_tok: usize, body: Span },
    /// Unsupported expression — recorded in [`Ast::fallbacks`].
    Err,
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parse a lexed file. Total: never panics, records fallbacks.
pub fn parse(src: &str, toks: &[Tok]) -> Ast {
    let code: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .map(|(i, _)| i)
        .collect();
    let mut p = Parser {
        src,
        toks,
        code,
        pos: 0,
        fallbacks: Vec::new(),
        gt_debt: false,
    };
    let items = p.items_until_end();
    Ast {
        items,
        fallbacks: p.fallbacks,
    }
}

struct Parser<'s> {
    src: &'s str,
    toks: &'s [Tok],
    /// Indices of non-comment tokens into `toks`.
    code: Vec<usize>,
    /// Position in `code`.
    pos: usize,
    fallbacks: Vec<Span>,
    /// A `>>` token of which one `>` has been consumed (generics).
    gt_debt: bool,
}

impl<'s> Parser<'s> {
    // -- token helpers ---------------------------------------------------

    fn eof(&self) -> bool {
        self.pos >= self.code.len()
    }

    /// Original token index of the code token at `pos + n`.
    fn tid(&self, n: usize) -> usize {
        self.code.get(self.pos + n).copied().unwrap_or(self.toks.len())
    }

    /// Text of the code token at `pos + n` ("" past EOF). A pending `>>`
    /// with one `>` consumed reads as `>` at offset 0.
    fn at(&self, n: usize) -> &'s str {
        if n == 0 && self.gt_debt {
            return ">";
        }
        match self.code.get(self.pos + n) {
            Some(&i) => self.toks[i].text(self.src),
            None => "",
        }
    }

    fn kind(&self, n: usize) -> Option<TokKind> {
        self.code.get(self.pos + n).map(|&i| self.toks[i].kind)
    }

    /// Advance one code token (resolving `>` debt first).
    fn bump(&mut self) -> usize {
        let t = self.tid(0);
        if self.gt_debt {
            self.gt_debt = false;
        }
        self.pos += 1;
        t
    }

    /// Consume one `>` where the lexer may have produced `>>`.
    fn bump_gt(&mut self) {
        if self.gt_debt {
            self.gt_debt = false;
            self.pos += 1;
        } else if self.at(0) == ">>" {
            self.gt_debt = true; // consumed the first `>` only
        } else {
            self.pos += 1;
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.at(0) == s {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Span starting at the current token.
    fn start(&self) -> usize {
        self.tid(0)
    }

    /// Span ending just past the previously consumed token.
    fn end(&self) -> usize {
        if self.pos == 0 {
            0
        } else if self.gt_debt {
            // Mid-`>>`: the token is still current.
            self.tid(0) + 1
        } else {
            self.code[self.pos - 1] + 1
        }
    }

    fn is_ident(&self, n: usize) -> bool {
        self.kind(n) == Some(TokKind::Ident)
    }

    /// Record a fallback spanning `lo..` current position after skipping
    /// to a sync token.
    fn fallback(&mut self, lo: usize, sync: &[&str]) -> Span {
        // Skip tokens until a sync point at bracket depth 0.
        let mut depth = 0i32;
        while !self.eof() {
            let t = self.at(0);
            match t {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                _ if depth == 0 && sync.contains(&t) => {
                    self.bump();
                    break;
                }
                _ => {}
            }
            self.bump();
        }
        let sp = Span::new(lo, self.end().max(lo + 1));
        self.fallbacks.push(sp);
        sp
    }

    /// Skip a balanced `(..)`/`[..]`/`{..}` group (current token must be
    /// the opener); returns once past the closer.
    fn skip_group(&mut self) {
        let open = self.at(0).to_string();
        let close = match open.as_str() {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => {
                self.bump();
                return;
            }
        };
        self.bump();
        let mut depth = 1;
        while !self.eof() && depth > 0 {
            let t = self.at(0);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
            }
            self.bump();
        }
    }

    /// Skip leading outer attributes `#[...]`; returns whether any.
    fn skip_attrs(&mut self) -> bool {
        let mut any = false;
        while self.at(0) == "#" && self.at(1) == "[" {
            self.bump(); // #
            self.skip_group(); // [...]
            any = true;
        }
        any
    }

    /// Skip a generics declaration `<...>` if present (balanced angles).
    fn skip_generics(&mut self) {
        if self.at(0) != "<" {
            return;
        }
        let mut depth = 0i32;
        while !self.eof() {
            match self.at(0) {
                "<" => depth += 1,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                // `(` groups inside bounds (Fn traits) skip wholesale.
                "(" | "[" => {
                    self.skip_group();
                    continue;
                }
                _ => {}
            }
            self.bump();
            if depth <= 0 {
                return;
            }
        }
    }

    /// Skip a `where` clause: everything until `{` or `;` at depth 0.
    fn skip_where(&mut self) {
        if self.at(0) != "where" {
            return;
        }
        self.bump();
        while !self.eof() {
            match self.at(0) {
                "{" | ";" => return,
                "(" | "[" => self.skip_group(),
                "<" => self.skip_generics(),
                _ => {
                    self.bump();
                }
            }
        }
    }

    // -- items -----------------------------------------------------------

    fn items_until_end(&mut self) -> Vec<Item> {
        let mut out = Vec::new();
        while !self.eof() {
            let before = self.pos;
            out.push(self.item());
            self.force_progress(before);
        }
        out
    }

    fn items_until_close(&mut self) -> Vec<Item> {
        let mut out = Vec::new();
        while !self.eof() && self.at(0) != "}" {
            let before = self.pos;
            out.push(self.item());
            self.force_progress(before);
        }
        out
    }

    /// Termination backstop: if a loop iteration consumed nothing (a
    /// desynced parse stuck on an unexpected token), consume one token and
    /// record a fallback so the loop provably advances.
    fn force_progress(&mut self, before: usize) {
        if self.pos == before && !self.eof() {
            let lo = self.start();
            self.bump();
            self.fallbacks.push(Span::new(lo, self.end().max(lo + 1)));
        }
    }

    /// Parse one item (with attributes and visibility).
    fn item(&mut self) -> Item {
        let lo = self.start();
        // Inner attributes `#![...]`.
        if self.at(0) == "#" && self.at(1) == "!" {
            self.bump();
            self.bump();
            if self.at(0) == "[" {
                self.skip_group();
            }
            return Item { span: Span::new(lo, self.end()), kind: ItemKind::InnerAttr };
        }
        self.skip_attrs();
        // Visibility.
        if self.eat("pub") && self.at(0) == "(" {
            self.skip_group();
        }
        // Modifiers.
        let mut is_const_item = false;
        loop {
            match self.at(0) {
                "unsafe" | "async" => {
                    self.bump();
                }
                "extern" => {
                    self.bump();
                    if self.kind(0) == Some(TokKind::Str) {
                        self.bump();
                    }
                }
                "const" if self.at(1) == "fn" => {
                    self.bump();
                }
                "const" => {
                    is_const_item = true;
                    break;
                }
                _ => break,
            }
        }
        let kind = match self.at(0) {
            "fn" => ItemKind::Fn(self.fn_def()),
            "use" => self.use_item(),
            "struct" => self.struct_item(),
            "enum" => self.enum_item(),
            "impl" => self.impl_item(),
            "trait" => self.trait_item(),
            "mod" => self.mod_item(),
            "static" => self.const_item(),
            "const" if is_const_item => self.const_item(),
            "type" => {
                self.bump();
                let name = self.ident_or("_");
                self.skip_generics();
                while !self.eof() && self.at(0) != ";" {
                    match self.at(0) {
                        "(" | "[" | "{" => self.skip_group(),
                        "<" => self.skip_generics(),
                        _ => {
                            self.bump();
                        }
                    }
                }
                self.eat(";");
                ItemKind::TypeAlias { name }
            }
            _ if self.is_ident(0) && (self.at(1) == "!" || self.at(1) == "::") => {
                // Item-position macro, possibly path-qualified:
                // `name! { ... }` / `name!(...);` / `proptest::proptest! {}`.
                let mut name = self.at(0).to_string();
                self.bump();
                while self.at(0) == "::" && self.is_ident(1) {
                    self.bump();
                    name = self.at(0).to_string();
                    self.bump();
                }
                if !self.eat("!") {
                    self.fallback(lo, &[";", "}"]);
                    return Item { span: Span::new(lo, self.end()), kind: ItemKind::Err };
                }
                let blo = self.start();
                if matches!(self.at(0), "(" | "[" | "{") {
                    let brace = self.at(0) == "{";
                    self.skip_group();
                    if !brace {
                        self.eat(";");
                    }
                } else {
                    self.eat(";");
                }
                ItemKind::MacroCall { name, body: Span::new(blo, self.end()) }
            }
            _ => {
                self.fallback(lo, &[";", "}"]);
                ItemKind::Err
            }
        };
        Item { span: Span::new(lo, self.end()), kind }
    }

    fn ident_or(&mut self, dflt: &str) -> String {
        if self.is_ident(0) {
            let s = self.at(0).trim_start_matches("r#").to_string();
            self.bump();
            s
        } else {
            dflt.to_string()
        }
    }

    fn fn_def(&mut self) -> FnDef {
        self.bump(); // fn
        let name_tok = self.tid(0);
        let name = self.ident_or("_");
        self.skip_generics();
        // Parameters.
        let mut has_self = false;
        let mut params = Vec::new();
        if self.at(0) == "(" {
            self.bump();
            while !self.eof() && self.at(0) != ")" {
                self.skip_attrs();
                // Self receiver: `self`, `&self`, `&mut self`, `mut self`.
                let save = self.pos;
                let mut is_self = false;
                while matches!(self.at(0), "&" | "&&" | "mut") || self.kind(0) == Some(TokKind::Lifetime) {
                    self.bump();
                }
                if self.at(0) == "self" {
                    self.bump();
                    is_self = true;
                    has_self = true;
                    // `self: &Rc<Self>` style annotations: skip to , or ).
                    while !self.eof() && self.at(0) != "," && self.at(0) != ")" {
                        match self.at(0) {
                            "(" | "[" => self.skip_group(),
                            "<" => self.skip_generics(),
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                if !is_self {
                    self.pos = save;
                    // `pat: Ty`.
                    let pat = self.pattern();
                    let pname = match &pat.kind {
                        PatKind::Ident { name, .. } => Some(name.clone()),
                        _ => None,
                    };
                    let ty = if self.eat(":") {
                        self.ty()
                    } else {
                        Ty { span: Span::new(self.end(), self.end()), segs: vec![], args: vec![] }
                    };
                    params.push((pname, ty));
                }
                if !self.eat(",") {
                    break;
                }
            }
            self.eat(")");
        }
        let ret = if self.eat("->") { Some(self.ty()) } else { None };
        self.skip_where();
        let body = if self.at(0) == "{" {
            Some(self.block())
        } else {
            self.eat(";");
            None
        };
        FnDef { name, name_tok, has_self, params, ret, body }
    }

    fn use_item(&mut self) -> ItemKind {
        self.bump(); // use
        let mut entries = Vec::new();
        let mut prefix = Vec::new();
        self.use_tree(&mut prefix, &mut entries);
        self.eat(";");
        ItemKind::Use(entries)
    }

    fn use_tree(&mut self, prefix: &mut Vec<String>, out: &mut Vec<UseEntry>) {
        let depth0 = prefix.len();
        loop {
            if self.at(0) == "{" {
                self.bump();
                while !self.eof() && self.at(0) != "}" {
                    self.use_tree(prefix, out);
                    if !self.eat(",") {
                        break;
                    }
                }
                self.eat("}");
                break;
            }
            if self.at(0) == "*" {
                self.bump();
                let mut path = prefix.clone();
                path.push("*".into());
                out.push(UseEntry { path, local: String::new() });
                break;
            }
            if self.is_ident(0) || matches!(self.at(0), "crate" | "super" | "self") {
                let seg = self.at(0).trim_start_matches("r#").to_string();
                self.bump();
                prefix.push(seg);
                if self.eat("::") {
                    continue;
                }
                // Terminal segment, maybe aliased.
                let local = if self.eat("as") { self.ident_or("_") } else { prefix.last().cloned().unwrap_or_default() };
                out.push(UseEntry { path: prefix.clone(), local });
                break;
            }
            break;
        }
        prefix.truncate(depth0);
    }

    fn struct_item(&mut self) -> ItemKind {
        self.bump(); // struct
        let name = self.ident_or("_");
        self.skip_generics();
        self.skip_where();
        let mut fields = Vec::new();
        let mut tuple_fields = Vec::new();
        if self.at(0) == "(" {
            // Tuple struct.
            self.bump();
            while !self.eof() && self.at(0) != ")" {
                self.skip_attrs();
                if self.eat("pub") && self.at(0) == "(" && self.at(1) != ")" {
                    // pub(crate) — but beware `pub (Ty)`: visibility parens
                    // only contain crate/super/self/in.
                    if matches!(self.at(1), "crate" | "super" | "self" | "in") {
                        self.skip_group();
                    }
                }
                tuple_fields.push(self.ty());
                if !self.eat(",") {
                    break;
                }
            }
            self.eat(")");
            self.skip_where();
            self.eat(";");
        } else if self.at(0) == "{" {
            self.bump();
            while !self.eof() && self.at(0) != "}" {
                self.skip_attrs();
                if self.eat("pub") && self.at(0) == "(" {
                    self.skip_group();
                }
                let fname = self.ident_or("_");
                if self.eat(":") {
                    fields.push((fname, self.ty()));
                }
                if !self.eat(",") {
                    break;
                }
            }
            self.eat("}");
        } else {
            self.eat(";"); // unit struct
        }
        ItemKind::Struct(StructDef { name, fields, tuple_fields })
    }

    fn enum_item(&mut self) -> ItemKind {
        self.bump(); // enum
        let name = self.ident_or("_");
        self.skip_generics();
        self.skip_where();
        let mut variants = Vec::new();
        if self.at(0) == "{" {
            self.bump();
            while !self.eof() && self.at(0) != "}" {
                self.skip_attrs();
                let vname = self.ident_or("_");
                let mut vtys = Vec::new();
                if self.at(0) == "(" {
                    self.bump();
                    while !self.eof() && self.at(0) != ")" {
                        self.skip_attrs();
                        vtys.push(self.ty());
                        if !self.eat(",") {
                            break;
                        }
                    }
                    self.eat(")");
                } else if self.at(0) == "{" {
                    // Named-field variant: record field types in order.
                    self.bump();
                    while !self.eof() && self.at(0) != "}" {
                        self.skip_attrs();
                        let _f = self.ident_or("_");
                        if self.eat(":") {
                            vtys.push(self.ty());
                        }
                        if !self.eat(",") {
                            break;
                        }
                    }
                    self.eat("}");
                }
                if self.eat("=") {
                    // Discriminant expression.
                    let _ = self.expr_bp(0, true);
                }
                variants.push((vname, vtys));
                if !self.eat(",") {
                    break;
                }
            }
            self.eat("}");
        } else {
            self.eat(";");
        }
        ItemKind::Enum(EnumDef { name, variants })
    }

    fn impl_item(&mut self) -> ItemKind {
        self.bump(); // impl
        self.skip_generics();
        let first = self.ty();
        let (trait_name, self_ty) = if self.eat("for") {
            let st = self.ty();
            (Some(first.head().to_string()), st.head().to_string())
        } else {
            (None, first.head().to_string())
        };
        self.skip_where();
        let mut items = Vec::new();
        if self.at(0) == "{" {
            self.bump();
            items = self.items_until_close();
            self.eat("}");
        }
        ItemKind::Impl(ImplDef { trait_name, self_ty, items })
    }

    fn trait_item(&mut self) -> ItemKind {
        self.bump(); // trait
        let name = self.ident_or("_");
        self.skip_generics();
        // Supertraits `: Bound + Bound`.
        if self.eat(":") {
            while !self.eof() && self.at(0) != "{" && self.at(0) != "where" {
                match self.at(0) {
                    "(" | "[" => self.skip_group(),
                    "<" => self.skip_generics(),
                    _ => {
                        self.bump();
                    }
                }
            }
        }
        self.skip_where();
        let mut items = Vec::new();
        if self.at(0) == "{" {
            self.bump();
            items = self.items_until_close();
            self.eat("}");
        }
        ItemKind::Trait { name, items }
    }

    fn mod_item(&mut self) -> ItemKind {
        self.bump(); // mod
        let name = self.ident_or("_");
        if self.at(0) == "{" {
            self.bump();
            let items = self.items_until_close();
            self.eat("}");
            ItemKind::Mod { name, items, inline: true }
        } else {
            self.eat(";");
            ItemKind::Mod { name, items: Vec::new(), inline: false }
        }
    }

    fn const_item(&mut self) -> ItemKind {
        self.bump(); // const | static
        self.eat("mut");
        let name = self.ident_or("_");
        let ty = if self.eat(":") {
            self.ty()
        } else {
            Ty { span: Span::new(self.end(), self.end()), segs: vec![], args: vec![] }
        };
        let init = if self.eat("=") { Some(self.expr_bp(0, true)) } else { None };
        self.eat(";");
        ItemKind::Const { name, ty, init }
    }

    // -- types -----------------------------------------------------------

    /// Parse a type. Total: unknown shapes consume one token and mark an
    /// empty head (NOT counted as a fallback — type structure beyond the
    /// head is advisory; the gap printer never relies on it).
    fn ty(&mut self) -> Ty {
        let lo = self.start();
        let mut segs = Vec::new();
        let mut args = Vec::new();
        match self.at(0) {
            "&" | "&&" => {
                let double = self.at(0) == "&&";
                self.bump();
                if self.kind(0) == Some(TokKind::Lifetime) {
                    self.bump();
                }
                self.eat("mut");
                let inner = self.ty();
                segs.push("&".into());
                if double {
                    // `&&T` — two references; model one level.
                }
                segs.extend(inner.segs);
                args = inner.args;
            }
            "*" => {
                self.bump();
                let _ = self.eat("const") || self.eat("mut");
                let inner = self.ty();
                segs.push("*".into());
                segs.extend(inner.segs);
                args = inner.args;
            }
            "[" => {
                self.bump();
                let inner = self.ty();
                if self.eat(";") {
                    let _ = self.expr_bp(0, true);
                }
                self.eat("]");
                segs.push("[]".into());
                args.push(inner);
            }
            "(" => {
                self.bump();
                let mut elems = Vec::new();
                while !self.eof() && self.at(0) != ")" {
                    elems.push(self.ty());
                    if !self.eat(",") {
                        break;
                    }
                }
                self.eat(")");
                if elems.len() == 1 {
                    // Parenthesized type.
                    let inner = elems.pop().unwrap_or(Ty {
                        span: Span::new(lo, self.end()),
                        segs: vec![],
                        args: vec![],
                    });
                    segs = inner.segs;
                    args = inner.args;
                } else {
                    segs.push("()".into());
                    args = elems;
                }
            }
            "fn" => {
                self.bump();
                if self.at(0) == "(" {
                    self.skip_group();
                }
                if self.eat("->") {
                    let _ = self.ty();
                }
                segs.push("fn".into());
            }
            "!" => {
                self.bump();
                segs.push("!".into());
            }
            "_" => {
                self.bump();
                segs.push("_".into());
            }
            "dyn" | "impl" => {
                self.bump();
                let inner = self.ty();
                segs = inner.segs;
                args = inner.args;
                // Additional bounds `+ Send + 'a`.
                while self.eat("+") {
                    if self.kind(0) == Some(TokKind::Lifetime) {
                        self.bump();
                    } else if self.at(0) == "?" {
                        self.bump();
                        let _ = self.ty();
                    } else {
                        let _ = self.ty();
                    }
                }
            }
            "<" => {
                // Qualified path `<T as Trait>::Out` — carve the angle
                // group and the trailing path.
                self.skip_generics();
                while self.eat("::") {
                    if self.is_ident(0) {
                        segs.push(self.at(0).to_string());
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            _ if self.is_ident(0) || matches!(self.at(0), "crate" | "super" | "self" | "Self") => {
                loop {
                    let seg = self.at(0).trim_start_matches("r#").to_string();
                    self.bump();
                    segs.push(seg);
                    // Generic args directly after a segment (type position).
                    if self.at(0) == "<" {
                        args = self.generic_args();
                    }
                    if self.at(0) == "::" && (self.is_ident(1) || self.at(1) == "<") {
                        self.bump();
                        if self.at(0) == "<" {
                            args = self.generic_args();
                            if !self.eat("::") {
                                break;
                            }
                            continue;
                        }
                        continue;
                    }
                    break;
                }
                // `Fn(A) -> B` sugar.
                if self.at(0) == "(" {
                    self.skip_group();
                    if self.eat("->") {
                        let _ = self.ty();
                    }
                }
            }
            _ => {
                // Unknown type token: consume one to guarantee progress.
                if !self.eof() {
                    self.bump();
                }
            }
        }
        Ty { span: Span::new(lo, self.end()), segs, args }
    }

    /// Parse `<...>` generic arguments in type position. Collects type
    /// arguments; lifetimes, const-expr args, and `Ident = Ty` bindings are
    /// skipped.
    fn generic_args(&mut self) -> Vec<Ty> {
        let mut out = Vec::new();
        if self.at(0) != "<" {
            return out;
        }
        self.bump();
        loop {
            if self.eof() {
                break;
            }
            match self.at(0) {
                ">" => {
                    self.bump();
                    break;
                }
                ">>" => {
                    self.bump_gt();
                    break;
                }
                "," => {
                    self.bump();
                }
                _ if self.kind(0) == Some(TokKind::Lifetime) => {
                    self.bump();
                }
                _ if self.is_ident(0) && self.at(1) == "=" => {
                    // Associated binding `Item = Ty`.
                    self.bump();
                    self.bump();
                    let _ = self.ty();
                }
                _ if self.kind(0) == Some(TokKind::Num) => {
                    self.bump(); // const generic literal
                }
                "{" => self.skip_group(), // const generic block
                _ => out.push(self.ty()),
            }
        }
        out
    }

    // -- patterns --------------------------------------------------------

    fn pattern(&mut self) -> Pat {
        let lo = self.start();
        let first = self.pattern_single();
        if self.at(0) != "|" {
            return first;
        }
        let mut alts = vec![first];
        while self.eat("|") {
            alts.push(self.pattern_single());
        }
        Pat { span: Span::new(lo, self.end()), kind: PatKind::Or(alts) }
    }

    fn pattern_single(&mut self) -> Pat {
        let lo = self.start();
        let kind = self.pattern_kind();
        let mut pat = Pat { span: Span::new(lo, self.end()), kind };
        // Range patterns `a..=b`, `a..b`, `..=b`.
        if matches!(self.at(0), "..=" | "...") || (self.at(0) == ".." && self.at(1) != "}" && self.at(1) != ",") {
            self.bump();
            if self.kind(0) == Some(TokKind::Num)
                || self.kind(0) == Some(TokKind::Char)
                || self.is_ident(0)
                || self.at(0) == "-"
            {
                let _ = self.pattern_kind();
            }
            pat = Pat { span: Span::new(lo, self.end()), kind: PatKind::Lit };
        }
        pat
    }

    fn pattern_kind(&mut self) -> PatKind {
        match self.at(0) {
            "_" => {
                self.bump();
                PatKind::Wild
            }
            ".." => {
                self.bump();
                PatKind::Rest
            }
            "&" | "&&" => {
                let double = self.at(0) == "&&";
                self.bump();
                self.eat("mut");
                let inner = self.pattern_single();
                if double {
                    return PatKind::Ref(Box::new(Pat {
                        span: inner.span,
                        kind: PatKind::Ref(Box::new(inner)),
                    }));
                }
                PatKind::Ref(Box::new(inner))
            }
            "(" => {
                self.bump();
                let mut elems = Vec::new();
                while !self.eof() && self.at(0) != ")" {
                    elems.push(self.pattern());
                    if !self.eat(",") {
                        break;
                    }
                }
                self.eat(")");
                if elems.len() == 1 {
                    let p = elems.pop();
                    p.map(|p| p.kind).unwrap_or(PatKind::Err)
                } else {
                    PatKind::Tuple(elems)
                }
            }
            "[" => {
                self.bump();
                let mut elems = Vec::new();
                while !self.eof() && self.at(0) != "]" {
                    elems.push(self.pattern());
                    if !self.eat(",") {
                        break;
                    }
                }
                self.eat("]");
                PatKind::Slice(elems)
            }
            "-" => {
                // Negative literal pattern.
                self.bump();
                if !self.eof() {
                    self.bump();
                }
                PatKind::Lit
            }
            "mut" | "ref" => {
                self.bump();
                self.eat("mut");
                let name = self.ident_or("_");
                let sub = if self.eat("@") { Some(Box::new(self.pattern_single())) } else { None };
                PatKind::Ident { name, sub }
            }
            _ => {
                if matches!(self.kind(0), Some(TokKind::Num) | Some(TokKind::Str) | Some(TokKind::Char)) {
                    self.bump();
                    return PatKind::Lit;
                }
                if self.is_ident(0) || matches!(self.at(0), "crate" | "super" | "self" | "Self") {
                    if matches!(self.at(0), "true" | "false") {
                        self.bump();
                        return PatKind::Lit;
                    }
                    let mut segs = vec![self.at(0).trim_start_matches("r#").to_string()];
                    self.bump();
                    while self.at(0) == "::" {
                        self.bump();
                        if self.at(0) == "<" {
                            let _ = self.generic_args();
                            continue;
                        }
                        segs.push(self.ident_or("_"));
                    }
                    if self.at(0) == "(" {
                        self.bump();
                        let mut elems = Vec::new();
                        while !self.eof() && self.at(0) != ")" {
                            elems.push(self.pattern());
                            if !self.eat(",") {
                                break;
                            }
                        }
                        self.eat(")");
                        return PatKind::TupleStruct { path: segs, elems };
                    }
                    if self.at(0) == "{" {
                        self.bump();
                        let mut fields = Vec::new();
                        while !self.eof() && self.at(0) != "}" {
                            self.skip_attrs();
                            if self.at(0) == ".." {
                                self.bump();
                                continue;
                            }
                            self.eat("ref");
                            self.eat("mut");
                            let fname = self.ident_or("_");
                            let sub = if self.eat(":") { Some(self.pattern()) } else { None };
                            fields.push((fname, sub));
                            if !self.eat(",") {
                                break;
                            }
                        }
                        self.eat("}");
                        return PatKind::Struct { path: segs, fields };
                    }
                    if segs.len() > 1 {
                        return PatKind::Path(segs);
                    }
                    let name = segs.pop().unwrap_or_default();
                    // A single capitalized segment with no payload is a
                    // unit-variant path (None, Closed); heuristic: bindings
                    // are snake_case in this workspace.
                    let is_const_like = name.chars().next().is_some_and(|c| c.is_ascii_uppercase());
                    if is_const_like {
                        return PatKind::Path(vec![name]);
                    }
                    let sub = if self.eat("@") { Some(Box::new(self.pattern_single())) } else { None };
                    return PatKind::Ident { name, sub };
                }
                // Unknown pattern token: consume one for progress.
                if !self.eof() {
                    self.bump();
                }
                PatKind::Err
            }
        }
    }

    // -- blocks & statements ----------------------------------------------

    fn block(&mut self) -> Block {
        let lo = self.start();
        self.eat("{");
        let mut stmts = Vec::new();
        while !self.eof() && self.at(0) != "}" {
            let before = self.pos;
            stmts.push(self.stmt());
            self.force_progress(before);
        }
        self.eat("}");
        Block { span: Span::new(lo, self.end()), stmts }
    }

    fn stmt(&mut self) -> Stmt {
        let lo = self.start();
        // Inner attribute or outer attrs on the statement.
        if self.at(0) == "#" {
            if self.at(1) == "!" {
                self.bump();
                self.bump();
                if self.at(0) == "[" {
                    self.skip_group();
                }
                return Stmt { span: Span::new(lo, self.end()), kind: StmtKind::Empty };
            }
            self.skip_attrs();
        }
        if self.eat(";") {
            return Stmt { span: Span::new(lo, self.end()), kind: StmtKind::Empty };
        }
        // Items in statement position.
        let t = self.at(0);
        let item_like = matches!(
            t,
            "fn" | "use" | "struct" | "enum" | "impl" | "trait" | "mod" | "static" | "type"
        ) || (t == "const" && self.at(1) != "{")
            || (t == "pub")
            || (t == "unsafe" && self.at(1) == "fn")
            || (t == "extern" && self.at(1) != "\"");
        if item_like {
            // Rewind attr skip: item() re-skips from `lo`? Attrs were
            // already consumed above; item() tolerates their absence.
            let it = self.item();
            return Stmt { span: Span::new(lo, self.end()), kind: StmtKind::Item(it) };
        }
        if t == "let" {
            self.bump();
            let pat = self.pattern();
            let ty = if self.eat(":") { Some(self.ty()) } else { None };
            let mut init = None;
            let mut else_block = None;
            if self.eat("=") {
                init = Some(self.expr_bp(0, true));
                if self.at(0) == "else" && self.at(1) == "{" {
                    self.bump();
                    else_block = Some(self.block());
                }
            }
            self.eat(";");
            return Stmt {
                span: Span::new(lo, self.end()),
                kind: StmtKind::Let { pat, ty, init, else_block },
            };
        }
        // Expression statement.
        let expr = self.expr_bp(0, true);
        let block_like = matches!(
            expr.kind,
            ExprKind::If { .. }
                | ExprKind::IfLet { .. }
                | ExprKind::Match { .. }
                | ExprKind::While { .. }
                | ExprKind::WhileLet { .. }
                | ExprKind::Loop { .. }
                | ExprKind::For { .. }
                | ExprKind::Block(_)
        );
        let semi = self.eat(";");
        let _ = block_like;
        Stmt { span: Span::new(lo, self.end()), kind: StmtKind::Expr { expr, semi } }
    }

    // -- expressions ------------------------------------------------------

    /// Pratt parser. `allow_struct` gates `Path { .. }` struct literals
    /// (false inside `if`/`while`/`for`/`match` headers).
    fn expr_bp(&mut self, min_bp: u8, allow_struct: bool) -> Expr {
        let lo = self.start();
        let mut lhs = self.prefix(allow_struct);
        loop {
            if self.eof() {
                break;
            }
            // Postfix operators bind tightest.
            match self.at(0) {
                "." => {
                    self.bump();
                    if self.at(0) == "await" {
                        self.bump();
                        lhs = Expr { span: Span::new(lo, self.end()), kind: ExprKind::Try(Box::new(lhs)) };
                        continue;
                    }
                    // Tuple index (possibly `0.1` lexed as a float).
                    if self.kind(0) == Some(TokKind::Num) {
                        let txt = self.at(0).to_string();
                        self.bump();
                        for (i, part) in txt.split('.').enumerate() {
                            let _ = i;
                            lhs = Expr {
                                span: Span::new(lo, self.end()),
                                kind: ExprKind::Field { base: Box::new(lhs), name: part.to_string() },
                            };
                        }
                        continue;
                    }
                    let name = self.at(0).trim_start_matches("r#").to_string();
                    let name_tok = self.tid(0);
                    self.bump();
                    // Method turbofish.
                    if self.at(0) == "::" && self.at(1) == "<" {
                        self.bump();
                        let _ = self.generic_args();
                    }
                    if self.at(0) == "(" {
                        let args = self.call_args();
                        lhs = Expr {
                            span: Span::new(lo, self.end()),
                            kind: ExprKind::MethodCall { recv: Box::new(lhs), name, name_tok, args },
                        };
                    } else {
                        lhs = Expr {
                            span: Span::new(lo, self.end()),
                            kind: ExprKind::Field { base: Box::new(lhs), name },
                        };
                    }
                    continue;
                }
                "?" => {
                    self.bump();
                    lhs = Expr { span: Span::new(lo, self.end()), kind: ExprKind::Try(Box::new(lhs)) };
                    continue;
                }
                "(" => {
                    let args = self.call_args();
                    lhs = Expr {
                        span: Span::new(lo, self.end()),
                        kind: ExprKind::Call { callee: Box::new(lhs), args },
                    };
                    continue;
                }
                "[" => {
                    self.bump();
                    let index = self.expr_bp(0, true);
                    self.eat("]");
                    lhs = Expr {
                        span: Span::new(lo, self.end()),
                        kind: ExprKind::Index { base: Box::new(lhs), index: Box::new(index) },
                    };
                    continue;
                }
                "as" => {
                    if 23 < min_bp {
                        break;
                    }
                    let as_tok = self.tid(0);
                    self.bump();
                    let ty = self.cast_ty();
                    lhs = Expr {
                        span: Span::new(lo, self.end()),
                        kind: ExprKind::Cast { expr: Box::new(lhs), ty, as_tok },
                    };
                    continue;
                }
                _ => {}
            }
            // Binary / assignment / range operators.
            let op = self.at(0).to_string();
            let (lbp, rbp, assign, range) = match op.as_str() {
                "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>=" => (2, 1, true, false),
                ".." | "..=" => (3, 4, false, true),
                "||" => (5, 6, false, false),
                "&&" => (7, 8, false, false),
                "==" | "!=" | "<" | ">" | "<=" | ">=" => (9, 10, false, false),
                "|" => (11, 12, false, false),
                "^" => (13, 14, false, false),
                "&" => (15, 16, false, false),
                "<<" | ">>" => (17, 18, false, false),
                "+" | "-" => (19, 20, false, false),
                "*" | "/" | "%" => (21, 22, false, false),
                _ => break,
            };
            if lbp < min_bp {
                break;
            }
            let op_tok = self.tid(0);
            self.bump();
            if range {
                // Open-ended `a..` when no operand can follow.
                let hi_expr = if self.expr_can_start(allow_struct) {
                    Some(Box::new(self.expr_bp(rbp, allow_struct)))
                } else {
                    None
                };
                lhs = Expr {
                    span: Span::new(lo, self.end()),
                    kind: ExprKind::Range { lo: Some(Box::new(lhs)), hi: hi_expr },
                };
                continue;
            }
            let rhs = self.expr_bp(rbp, allow_struct);
            lhs = Expr {
                span: Span::new(lo, self.end()),
                kind: if assign {
                    ExprKind::Assign { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
                } else {
                    ExprKind::Binary { op, op_tok, lhs: Box::new(lhs), rhs: Box::new(rhs) }
                },
            };
        }
        lhs
    }

    /// Whether the current token can begin an expression (used for
    /// open-ended ranges).
    fn expr_can_start(&self, _allow_struct: bool) -> bool {
        if self.eof() {
            return false;
        }
        !matches!(
            self.at(0),
            ")" | "]"
                | "}"
                | ","
                | ";"
                | "{"
                | "=>"
                | ".."
                | "..="
                | "="
                | "=="
                | "&&"
                | "||"
                | "as"
                | "?"
                | "."
        )
    }

    fn call_args(&mut self) -> Vec<Expr> {
        self.eat("(");
        let mut args = Vec::new();
        while !self.eof() && self.at(0) != ")" {
            args.push(self.expr_bp(0, true));
            if !self.eat(",") {
                break;
            }
        }
        self.eat(")");
        args
    }

    /// Cast target type: like [`Parser::ty`] but a `<` after a primitive
    /// head is a comparison, not generics (`len as u32 > limit`).
    fn cast_ty(&mut self) -> Ty {
        const PRIMITIVE: [&str; 17] = [
            "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
            "isize", "f32", "f64", "bool", "char", "str",
        ];
        if self.is_ident(0) && PRIMITIVE.contains(&self.at(0)) && self.at(1) != "::" {
            let lo = self.start();
            let seg = self.at(0).to_string();
            self.bump();
            return Ty { span: Span::new(lo, self.end()), segs: vec![seg], args: vec![] };
        }
        self.ty()
    }

    fn prefix(&mut self, allow_struct: bool) -> Expr {
        let lo = self.start();
        let kind = match self.at(0) {
            "-" | "!" | "*" => {
                let op = self.at(0).to_string();
                self.bump();
                let operand = self.expr_bp(25, allow_struct);
                ExprKind::Unary { op, operand: Box::new(operand) }
            }
            "&" | "&&" => {
                let double = self.at(0) == "&&";
                self.bump();
                let mutable = self.eat("mut");
                let expr = self.expr_bp(25, allow_struct);
                if double {
                    ExprKind::Ref {
                        mutable: false,
                        expr: Box::new(Expr {
                            span: Span::new(lo, self.end()),
                            kind: ExprKind::Ref { mutable, expr: Box::new(expr) },
                        }),
                    }
                } else {
                    ExprKind::Ref { mutable, expr: Box::new(expr) }
                }
            }
            ".." | "..=" => {
                self.bump();
                let hi = if self.expr_can_start(allow_struct) {
                    Some(Box::new(self.expr_bp(4, allow_struct)))
                } else {
                    None
                };
                ExprKind::Range { lo: None, hi }
            }
            "(" => {
                self.bump();
                let mut elems = Vec::new();
                let mut trailing_comma = false;
                while !self.eof() && self.at(0) != ")" {
                    elems.push(self.expr_bp(0, true));
                    if self.eat(",") {
                        trailing_comma = true;
                    } else {
                        trailing_comma = false;
                        break;
                    }
                }
                self.eat(")");
                if elems.len() == 1 && !trailing_comma {
                    ExprKind::Paren(Box::new(elems.pop().expect("len checked")))
                } else {
                    ExprKind::Tuple(elems)
                }
            }
            "[" => {
                self.bump();
                let mut elems = Vec::new();
                while !self.eof() && self.at(0) != "]" {
                    let e = self.expr_bp(0, true);
                    elems.push(e);
                    if self.eat(";") {
                        // `[elem; len]` repeat.
                        elems.push(self.expr_bp(0, true));
                        break;
                    }
                    if !self.eat(",") {
                        break;
                    }
                }
                self.eat("]");
                ExprKind::Array { elems }
            }
            "{" => ExprKind::Block(self.block()),
            "unsafe" | "const" if self.at(1) == "{" => {
                // `unsafe { … }` block or inline-const expression.
                self.bump();
                ExprKind::Block(self.block())
            }
            "if" => return self.if_expr(),
            "match" => {
                self.bump();
                let scrutinee = self.expr_bp(0, false);
                let mut arms = Vec::new();
                self.eat("{");
                while !self.eof() && self.at(0) != "}" {
                    let before = self.pos;
                    let alo = self.start();
                    self.skip_attrs();
                    let pat = self.pattern();
                    let guard = if self.eat("if") { Some(self.expr_bp(0, false)) } else { None };
                    self.eat("=>");
                    let body = self.expr_bp(0, true);
                    self.eat(",");
                    arms.push(Arm { span: Span::new(alo, self.end()), pat, guard, body });
                    self.force_progress(before);
                }
                self.eat("}");
                ExprKind::Match { scrutinee: Box::new(scrutinee), arms }
            }
            "while" => {
                self.bump();
                if self.eat("let") {
                    let pat = self.pattern();
                    self.eat("=");
                    let scrutinee = self.expr_bp(0, false);
                    let body = self.block();
                    ExprKind::WhileLet { pat, scrutinee: Box::new(scrutinee), body }
                } else {
                    let cond = self.expr_bp(0, false);
                    let body = self.block();
                    ExprKind::While { cond: Box::new(cond), body }
                }
            }
            "loop" => {
                self.bump();
                ExprKind::Loop { body: self.block() }
            }
            "for" => {
                self.bump();
                let pat = self.pattern();
                self.eat("in");
                let iter = self.expr_bp(0, false);
                let body = self.block();
                ExprKind::For { pat, iter: Box::new(iter), body }
            }
            "return" => {
                self.bump();
                let v = if self.expr_can_start(allow_struct) {
                    Some(Box::new(self.expr_bp(0, allow_struct)))
                } else {
                    None
                };
                ExprKind::Return(v)
            }
            "break" => {
                self.bump();
                if self.kind(0) == Some(TokKind::Lifetime) {
                    self.bump();
                }
                let v = if self.expr_can_start(allow_struct) {
                    Some(Box::new(self.expr_bp(0, allow_struct)))
                } else {
                    None
                };
                ExprKind::Break(v)
            }
            "continue" => {
                self.bump();
                if self.kind(0) == Some(TokKind::Lifetime) {
                    self.bump();
                }
                ExprKind::Continue
            }
            "move" | "|" | "||" => {
                let _ = self.eat("move");
                let mut params = Vec::new();
                if self.eat("||") {
                    // no params
                } else {
                    self.eat("|");
                    while !self.eof() && self.at(0) != "|" {
                        // Closure params cannot carry top-level `|`
                        // or-patterns (ambiguous with the closing pipe).
                        let pat = self.pattern_single();
                        let pname = match &pat.kind {
                            PatKind::Ident { name, .. } => Some(name.clone()),
                            _ => None,
                        };
                        let ty = if self.eat(":") { Some(self.ty()) } else { None };
                        params.push((pname, ty));
                        if !self.eat(",") {
                            break;
                        }
                    }
                    self.eat("|");
                }
                let body = if self.eat("->") {
                    let _ = self.ty();
                    Expr { span: Span::new(self.start(), self.start()), kind: ExprKind::Block(self.block()) }
                } else {
                    self.expr_bp(1, allow_struct)
                };
                ExprKind::Closure { params, body: Box::new(body) }
            }
            "<" => {
                // Qualified path expression `<S as T>::h(...)`: carve the
                // angle group, then collect trailing path segments.
                self.skip_generics();
                let mut segs: Vec<(String, usize)> = Vec::new();
                while self.at(0) == "::" {
                    self.bump();
                    if self.at(0) == "<" {
                        let _ = self.generic_args();
                        continue;
                    }
                    if self.is_ident(0) {
                        segs.push((self.at(0).to_string(), self.tid(0)));
                        self.bump();
                    } else {
                        break;
                    }
                }
                ExprKind::Path(segs)
            }
            _ if self.kind(0) == Some(TokKind::Lifetime) && self.at(1) == ":" => {
                // Labeled loop.
                self.bump();
                self.bump();
                return self.expr_bp(25, allow_struct);
            }
            _ if matches!(
                self.kind(0),
                Some(TokKind::Num) | Some(TokKind::Str) | Some(TokKind::Char)
            ) =>
            {
                self.bump();
                ExprKind::Lit
            }
            _ if self.is_ident(0) || matches!(self.at(0), "crate" | "super" | "self" | "Self") => {
                return self.path_expr(allow_struct);
            }
            _ => {
                self.fallback(lo, &[";"]);
                ExprKind::Err
            }
        };
        Expr { span: Span::new(lo, self.end()), kind }
    }

    fn if_expr(&mut self) -> Expr {
        let lo = self.start();
        self.bump(); // if
        let kind = if self.eat("let") {
            let pat = self.pattern();
            self.eat("=");
            let scrutinee = self.expr_bp(0, false);
            let then = self.block();
            let else_ = self.else_tail();
            ExprKind::IfLet { pat, scrutinee: Box::new(scrutinee), then, else_ }
        } else {
            let cond = self.expr_bp(0, false);
            let then = self.block();
            let else_ = self.else_tail();
            ExprKind::If { cond: Box::new(cond), then, else_ }
        };
        Expr { span: Span::new(lo, self.end()), kind }
    }

    fn else_tail(&mut self) -> Option<Box<Expr>> {
        if !self.eat("else") {
            return None;
        }
        if self.at(0) == "if" {
            return Some(Box::new(self.if_expr()));
        }
        let b = self.block();
        Some(Box::new(Expr { span: b.span, kind: ExprKind::Block(b) }))
    }

    /// Path-headed expression: path, macro call, struct literal, or the
    /// literal keywords.
    fn path_expr(&mut self, allow_struct: bool) -> Expr {
        let lo = self.start();
        if matches!(self.at(0), "true" | "false") {
            self.bump();
            return Expr { span: Span::new(lo, self.end()), kind: ExprKind::Lit };
        }
        let mut segs: Vec<(String, usize)> = Vec::new();
        loop {
            if self.is_ident(0) || matches!(self.at(0), "crate" | "super" | "self" | "Self") {
                segs.push((self.at(0).trim_start_matches("r#").to_string(), self.tid(0)));
                self.bump();
            } else {
                break;
            }
            if self.at(0) == "::" {
                if self.at(1) == "<" {
                    // Turbofish.
                    self.bump();
                    let _ = self.generic_args();
                    if self.at(0) == "::" {
                        self.bump();
                        continue;
                    }
                    break;
                }
                if self.is_ident(1) || matches!(self.at(1), "crate" | "super" | "self" | "Self") {
                    self.bump();
                    continue;
                }
                break;
            }
            break;
        }
        // Macro call (`vec![…]`, `wire::err!(…)` — last segment names it).
        if self.at(0) == "!" && matches!(self.at(1), "(" | "[" | "{") && !segs.is_empty() {
            let (name, name_tok) = segs.pop().expect("non-empty checked");
            self.bump(); // !
            let blo = self.start();
            self.skip_group();
            return Expr {
                span: Span::new(lo, self.end()),
                kind: ExprKind::MacroCall { name, name_tok, body: Span::new(blo, self.end()) },
            };
        }
        // Struct literal.
        if self.at(0) == "{" && allow_struct && self.struct_lit_ahead() {
            self.bump();
            let mut fields = Vec::new();
            let mut base = None;
            while !self.eof() && self.at(0) != "}" {
                self.skip_attrs();
                if self.at(0) == ".." {
                    self.bump();
                    if self.expr_can_start(true) {
                        base = Some(Box::new(self.expr_bp(0, true)));
                    }
                    break;
                }
                let fname = self.ident_or("_");
                let val = if self.eat(":") { Some(self.expr_bp(0, true)) } else { None };
                fields.push((fname, val));
                if !self.eat(",") {
                    break;
                }
            }
            self.eat("}");
            return Expr {
                span: Span::new(lo, self.end()),
                kind: ExprKind::StructLit { path: segs, fields, base },
            };
        }
        Expr { span: Span::new(lo, self.end()), kind: ExprKind::Path(segs) }
    }

    /// Disambiguate `Path {` struct literal from a path followed by a
    /// block: inside the braces a struct literal has `ident:`, `ident,`,
    /// `ident}`, or `..`.
    fn struct_lit_ahead(&self) -> bool {
        // at(0) == "{"
        if self.at(1) == "}" {
            return true; // `Path {}`
        }
        if self.at(1) == ".." {
            return true;
        }
        if self.kind(1) == Some(TokKind::Ident) {
            return matches!(self.at(2), ":" | "," | "}") && self.at(3) != ":";
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Span-gap printer
// ---------------------------------------------------------------------------

/// Emit a parsed file back to text by walking the tree and printing the raw
/// tokens between each node's structural children. Re-lexing the output
/// yields the original non-comment token stream iff every span is correct —
/// the parse-fixpoint property.
pub fn print(src: &str, toks: &[Tok], ast: &Ast) -> String {
    let mut pr = Printer { src, toks, out: String::new(), cursor: 0 };
    for it in &ast.items {
        pr.item(it);
    }
    pr.emit_upto(toks.len());
    pr.out
}

struct Printer<'s> {
    src: &'s str,
    toks: &'s [Tok],
    out: String,
    cursor: usize,
}

impl Printer<'_> {
    /// Emit raw tokens `[cursor, to)`, space-separated, skipping comments.
    fn emit_upto(&mut self, to: usize) {
        while self.cursor < to.min(self.toks.len()) {
            let t = &self.toks[self.cursor];
            if !t.is_comment() {
                self.out.push_str(t.text(self.src));
                self.out.push(' ');
            } else {
                // Newline keeps any following line intact if a comment
                // boundary bug ever slipped a line comment into output.
                self.out.push('\n');
            }
            self.cursor += 1;
        }
    }

    fn item(&mut self, it: &Item) {
        match &it.kind {
            ItemKind::Fn(f) => {
                if let Some(b) = &f.body {
                    self.emit_upto(b.span.lo);
                    self.block(b);
                }
            }
            ItemKind::Impl(d) => {
                for sub in &d.items {
                    self.item(sub);
                }
            }
            ItemKind::Trait { items, .. } | ItemKind::Mod { items, .. } => {
                for sub in items {
                    self.item(sub);
                }
            }
            ItemKind::Const { init: Some(e), .. } => {
                self.emit_upto(e.span.lo);
                self.expr(e);
            }
            _ => {}
        }
        self.emit_upto(it.span.hi);
    }

    fn block(&mut self, b: &Block) {
        self.emit_upto(b.span.lo);
        for s in &b.stmts {
            self.stmt(s);
        }
        self.emit_upto(b.span.hi);
    }

    fn stmt(&mut self, s: &Stmt) {
        self.emit_upto(s.span.lo);
        match &s.kind {
            StmtKind::Let { init, else_block, .. } => {
                if let Some(e) = init {
                    self.emit_upto(e.span.lo);
                    self.expr(e);
                }
                if let Some(b) = else_block {
                    self.emit_upto(b.span.lo);
                    self.block(b);
                }
            }
            StmtKind::Expr { expr, .. } => {
                self.emit_upto(expr.span.lo);
                self.expr(expr);
            }
            StmtKind::Item(it) => self.item(it),
            StmtKind::Empty => {}
        }
        self.emit_upto(s.span.hi);
    }

    fn opt_expr(&mut self, e: &Option<Box<Expr>>) {
        if let Some(e) = e {
            self.emit_upto(e.span.lo);
            self.expr(e);
        }
    }

    fn expr(&mut self, e: &Expr) {
        self.emit_upto(e.span.lo);
        match &e.kind {
            ExprKind::Unary { operand, .. } => {
                self.emit_upto(operand.span.lo);
                self.expr(operand);
            }
            ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
                self.expr(lhs);
                self.emit_upto(rhs.span.lo);
                self.expr(rhs);
            }
            ExprKind::Cast { expr, .. } => self.expr(expr),
            ExprKind::Call { callee, args } => {
                self.expr(callee);
                for a in args {
                    self.emit_upto(a.span.lo);
                    self.expr(a);
                }
            }
            ExprKind::MethodCall { recv, args, .. } => {
                self.expr(recv);
                for a in args {
                    self.emit_upto(a.span.lo);
                    self.expr(a);
                }
            }
            ExprKind::Field { base, .. } => self.expr(base),
            ExprKind::Index { base, index } => {
                self.expr(base);
                self.emit_upto(index.span.lo);
                self.expr(index);
            }
            ExprKind::Try(x) | ExprKind::Ref { expr: x, .. } | ExprKind::Paren(x) => self.expr(x),
            ExprKind::Tuple(xs) | ExprKind::Array { elems: xs } => {
                for x in xs {
                    self.emit_upto(x.span.lo);
                    self.expr(x);
                }
            }
            ExprKind::StructLit { fields, base, .. } => {
                for (_, v) in fields {
                    if let Some(v) = v {
                        self.emit_upto(v.span.lo);
                        self.expr(v);
                    }
                }
                if let Some(b) = base {
                    self.emit_upto(b.span.lo);
                    self.expr(b);
                }
            }
            ExprKind::Block(b) => self.block(b),
            ExprKind::If { cond, then, else_ } => {
                self.emit_upto(cond.span.lo);
                self.expr(cond);
                self.block(then);
                self.opt_expr(else_);
            }
            ExprKind::IfLet { scrutinee, then, else_, .. } => {
                self.emit_upto(scrutinee.span.lo);
                self.expr(scrutinee);
                self.block(then);
                self.opt_expr(else_);
            }
            ExprKind::Match { scrutinee, arms } => {
                self.emit_upto(scrutinee.span.lo);
                self.expr(scrutinee);
                for a in arms {
                    self.emit_upto(a.span.lo);
                    if let Some(g) = &a.guard {
                        self.emit_upto(g.span.lo);
                        self.expr(g);
                    }
                    self.emit_upto(a.body.span.lo);
                    self.expr(&a.body);
                    self.emit_upto(a.span.hi);
                }
            }
            ExprKind::While { cond, body } => {
                self.emit_upto(cond.span.lo);
                self.expr(cond);
                self.block(body);
            }
            ExprKind::WhileLet { scrutinee, body, .. } => {
                self.emit_upto(scrutinee.span.lo);
                self.expr(scrutinee);
                self.block(body);
            }
            ExprKind::Loop { body } => self.block(body),
            ExprKind::For { iter, body, .. } => {
                self.emit_upto(iter.span.lo);
                self.expr(iter);
                self.block(body);
            }
            ExprKind::Closure { body, .. } => {
                self.emit_upto(body.span.lo);
                self.expr(body);
            }
            ExprKind::Return(v) | ExprKind::Break(v) => self.opt_expr(v),
            ExprKind::Range { lo, hi } => {
                if let Some(l) = lo {
                    self.expr(l);
                }
                self.opt_expr(hi);
            }
            ExprKind::Lit
            | ExprKind::Path(_)
            | ExprKind::Continue
            | ExprKind::MacroCall { .. }
            | ExprKind::Err => {}
        }
        self.emit_upto(e.span.hi);
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_engine::lexer::lex;

    fn parse_src(src: &str) -> Ast {
        parse(src, &lex(src))
    }

    fn roundtrip(src: &str) {
        let toks = lex(src);
        let ast = parse(src, &toks);
        assert!(ast.fallbacks.is_empty(), "fallbacks on {src:?}: {:?}", ast.fallbacks);
        let printed = print(src, &toks, &ast);
        let orig: Vec<String> = toks
            .iter()
            .filter(|t| !t.is_comment())
            .map(|t| t.text(src).to_string())
            .collect();
        let re = lex(&printed);
        let new: Vec<String> = re
            .iter()
            .filter(|t| !t.is_comment())
            .map(|t| t.text(&printed).to_string())
            .collect();
        assert_eq!(orig, new, "token fixpoint broken for {src:?}");
    }

    #[test]
    fn fn_items_and_bodies() {
        let ast = parse_src("pub fn f(x: u32, seg: &TcpSegment) -> u32 { x + 1 }");
        let ItemKind::Fn(f) = &ast.items[0].kind else { panic!() };
        assert_eq!(f.name, "f");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[1].1.head(), "TcpSegment");
        assert_eq!(f.ret.as_ref().map(|t| t.head().to_string()), Some("u32".into()));
        assert!(f.body.is_some());
    }

    #[test]
    fn impl_blocks_record_self_type() {
        let ast = parse_src(
            "impl SendBuffer { fn read(&mut self) -> u8 { 0 } }\n\
             impl Iterator for PcapReader { fn next(&mut self) -> Option<u8> { None } }",
        );
        let ItemKind::Impl(a) = &ast.items[0].kind else { panic!() };
        assert_eq!(a.self_ty, "SendBuffer");
        assert_eq!(a.trait_name, None);
        let ItemKind::Impl(b) = &ast.items[1].kind else { panic!() };
        assert_eq!(b.self_ty, "PcapReader");
        assert_eq!(b.trait_name.as_deref(), Some("Iterator"));
        let ItemKind::Fn(m) = &a.items[0].kind else { panic!() };
        assert!(m.has_self);
    }

    #[test]
    fn use_trees_flatten() {
        let ast = parse_src("use mpw_tcp::wire::{parse_packet, TcpSegment as Seg, options::*};");
        let ItemKind::Use(es) = &ast.items[0].kind else { panic!() };
        assert_eq!(es.len(), 3);
        assert_eq!(es[0].path, ["mpw_tcp", "wire", "parse_packet"]);
        assert_eq!(es[0].local, "parse_packet");
        assert_eq!(es[1].local, "Seg");
        assert_eq!(es[2].path, ["mpw_tcp", "wire", "options", "*"]);
    }

    #[test]
    fn struct_fields_and_types() {
        let ast = parse_src("struct S { seq: SeqNum, dseq: u64, buf: Vec<u8> }");
        let ItemKind::Struct(s) = &ast.items[0].kind else { panic!() };
        assert_eq!(s.fields[0].1.head(), "SeqNum");
        assert_eq!(s.fields[1].1.head(), "u64");
        assert_eq!(s.fields[2].1.head(), "Vec");
        assert_eq!(s.fields[2].1.args[0].head(), "u8");
    }

    #[test]
    fn method_calls_and_fields() {
        let src = "fn f(s: &S) { s.buf.read(1, 2); t::g::<u8>(3); }";
        let ast = parse_src(src);
        let ItemKind::Fn(f) = &ast.items[0].kind else { panic!() };
        let b = f.body.as_ref().unwrap();
        let StmtKind::Expr { expr, .. } = &b.stmts[0].kind else { panic!() };
        let ExprKind::MethodCall { recv, name, .. } = &expr.kind else { panic!() };
        assert_eq!(name, "read");
        assert!(matches!(recv.kind, ExprKind::Field { .. }));
        roundtrip(src);
    }

    #[test]
    fn let_else_match_guards_nested_closures() {
        roundtrip(
            "fn f(v: &[u8]) -> u32 {\n\
               let Some(x) = v.first() else { return 0; };\n\
               let g = |a: u32| v.iter().map(|b| *b as u32 + a).sum::<u32>();\n\
               match *x { 0 => g(1), n if n > 5 => n as u32, _ => 2 }\n\
             }",
        );
    }

    #[test]
    fn multiline_generics_and_where() {
        roundtrip(
            "fn g<T, U>(x: T, y: U) -> impl Iterator<Item = (T, U)>\n\
             where\n  T: Clone + Send,\n  U: Default,\n\
             { std::iter::once((x, y)) }",
        );
    }

    #[test]
    fn struct_literals_vs_blocks() {
        roundtrip("fn f() -> S { if x == y { return S { a: 1, ..d }; } S { a: 2, b } }");
        roundtrip("fn f() { for i in 0..n { h(i); } while a < b { a += 1; } }");
        roundtrip("fn f() { match e { E::V { x, .. } => x, _ => 0 }; }");
    }

    #[test]
    fn ranges_casts_shifts() {
        roundtrip("fn f(a: u32) -> u32 { let b = &x[1..4]; (a as u64 >> 2) as u32 + b[0] as u32 }");
        roundtrip("fn f() { q(..); r(..=3); s(1..); }");
    }

    #[test]
    fn if_let_chains_loops_labels() {
        roundtrip("fn f() { if let Some(v) = o { g(v); } else if c { h(); } else { k(); } }");
        roundtrip("fn f() { loop { break; } while let Some(x) = it.next() { use_x(x); } }");
    }

    #[test]
    fn macros_attrs_and_nested_items() {
        roundtrip(
            "#[derive(Clone, Debug)]\nstruct S;\n\
             fn f() { println!(\"{} {}\", a, b); vec![1, 2]; assert!(x, \"m\"); }\n\
             #[cfg(test)]\nmod t { use super::*; #[test] fn u() { f(); } }",
        );
    }

    #[test]
    fn enums_and_const_items() {
        let src = "enum Transport { Mp(MptcpConnection), Sp(TcpSocket), Named { a: u32 } }\n\
                   const N: usize = 4 * 2;\nstatic Z: &str = \"s\";";
        let ast = parse_src(src);
        let ItemKind::Enum(e) = &ast.items[0].kind else { panic!() };
        assert_eq!(e.variants[0].0, "Mp");
        assert_eq!(e.variants[0].1[0].head(), "MptcpConnection");
        roundtrip(src);
    }

    #[test]
    fn zero_fallbacks_on_tricky_constructs() {
        for src in [
            "fn f() { let v: Vec<Vec<u8>> = Vec::new(); }",
            "fn f() { x.collect::<Vec<_>>(); }",
            "fn f() { let (a, mut b): (u32, u8) = (1, 2); }",
            "fn f() { let [a, b, rest @ ..] = arr; }",
            "fn f() { s.0.wrapping_add(1); t.1.0; }",
            "fn f() { let c = move || -> u32 { 1 }; }",
            "fn f(x: &dyn Fn(u32) -> u32) { x(1); }",
            "fn f() { m.entry(k).or_insert_with(Vec::new).push(v); }",
            "trait T { type Out; fn d(&self) -> Self::Out; }",
            "impl T for S { type Out = u8; fn d(&self) -> u8 { 0 } }",
            "fn f() { if a && (b || !c) { } }",
            "fn f() { let _ = matches!(x, A | B); }",
            "fn f() { let s: &'static str = \"x\"; }",
            "fn f<'a>(x: &'a [u8]) -> &'a [u8] { &x[..] }",
            "fn f() { arr.iter().rev().enumerate().find(|(_, t)| t.is_x()); }",
            "fn f() { Self::g(1); <S as T>::h(); }",
            "fn f() { r#type(); let r#match = 1; }",
            "fn f() { a = b'x' as u32; }",
            "fn f() { 'outer: for i in 0..3 { break 'outer; } }",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn fallback_is_counted_not_fatal() {
        // Genuinely unsupported garbage still parses to an Err node.
        let ast = parse_src("fn f() { @ @ @; let x = 1; }");
        assert!(!ast.fallbacks.is_empty());
    }
}

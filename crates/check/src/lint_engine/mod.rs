//! The token-level lint engine behind every wall (DESIGN.md §5.12).
//!
//! The first three lint walls (determinism, panic-free parsers, allocation
//! discipline) were line-based `contains()` scans. They were cheap, but
//! unsound in three documented ways: an opt-out marker skipped *every*
//! token on its line, tokens inside string literals and comments were
//! flagged, and multi-line constructs were missed entirely. This module
//! replaces them with a real (still dependency-free, still hand-rolled)
//! analysis layer:
//!
//! * [`lexer`] — a full Rust lexer (strings, raw strings, byte literals,
//!   nested block comments, lifetimes vs char literals) producing exact
//!   token spans;
//! * [`items`] — a lightweight item pass recovering fn boundaries, a
//!   name-based call graph, and precise `#[cfg(test)]` ranges;
//! * [`parse`] — a total recursive-descent parser structuring every
//!   workspace file into a real AST (zero fallbacks, verified by a token
//!   fixpoint test);
//! * [`resolve`] — name resolution over the AST: typed fn nodes, struct
//!   field tables, and a call graph whose method edges are resolved
//!   through receiver types (same-named methods on different types no
//!   longer conflate), degrading soundly to name fallback;
//! * [`flow`] — intraprocedural forward dataflow: seq-number *taint*
//!   (values provably originating from wire sequence state, tracked
//!   through locals, patterns, and return summaries) and the
//!   handler/oracle exit analysis;
//! * [`rules`] — the walls: `determinism`, `panic` (strict decode surface
//!   **and** typed call-graph panic-reachability, both on the resolved
//!   graph — see [`rules::panic_v2`]), `seq-arith` (taint-based, see
//!   [`flow::seq_taint`]), `handler-oracle` (every handler exit must run
//!   the `debug_check`/`validate` oracle, see [`flow::handler_oracle`]),
//!   `alloc`, and `unsafe` (forbid-or-justify across all first-party
//!   crates, `vendor/` exempt but inventoried);
//! * [`report`] — human and machine-readable (JSON) output plus the
//!   `LINT_budgets.json` ratchet on opt-out counts.
//!
//! Opt-outs are per-token `// lint: allow-<rule>(reason)` comments: a
//! marker suppresses **exactly one** finding of its rule on its own line
//! (trailing form) or on the next code-bearing line (standalone form).
//! Every marker must carry a reason; unused (stale) markers and unknown
//! rule names are themselves findings, so the allowlist cannot rot.

pub mod flow;
pub mod items;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod resolve;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

use items::FileItems;
use lexer::{lex, Tok};

/// Rule names a marker may reference.
pub const RULES: [&str; 6] =
    ["determinism", "panic", "seq-arith", "alloc", "unsafe", "handler-oracle"];

/// The marker prefix. A comment opts a token out with
/// `lint: allow-<rule>(reason)`.
pub const MARKER_PREFIX: &str = "lint:";

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which wall fired (one of [`RULES`], or `marker` for marker-syntax
    /// problems).
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What and why.
    pub message: String,
}

impl Finding {
    /// Stable id used by `lint --explain`: `rule@file:line:col`.
    pub fn id(&self) -> String {
        format!("{}@{}:{}:{}", self.rule, self.file, self.line, self.col)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// One parsed `allow-<rule>(reason)` marker.
#[derive(Clone, Debug)]
pub struct Allow {
    /// The rule the marker opts out of.
    pub rule: String,
    /// The justification inside the parentheses.
    pub reason: String,
    /// Line the marker comment sits on.
    pub marker_line: u32,
    /// Line whose first finding of `rule` the marker suppresses.
    pub target_line: u32,
    /// Set once a finding has consumed this marker.
    pub used: bool,
}

/// One lexed + item-scanned source file.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Full source text.
    pub src: String,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Fn items, call edges, test ranges.
    pub items: FileItems,
    /// Structured AST (v2 engine layers build on this).
    pub ast: parse::Ast,
    /// Opt-out markers (outside test code), in source order.
    pub allows: Vec<Allow>,
    /// Marker-syntax findings discovered while parsing allows.
    pub marker_findings: Vec<Finding>,
}

impl SourceFile {
    /// Lex and scan one file from source text.
    pub fn parse(rel: &str, src: String) -> SourceFile {
        let toks = lex(&src);
        let items = items::scan_items(&src, &toks);
        let ast = parse::parse(&src, &toks);
        let mut f = SourceFile {
            rel: rel.to_string(),
            src,
            toks,
            items,
            ast,
            allows: Vec::new(),
            marker_findings: Vec::new(),
        };
        collect_allows(&mut f);
        f
    }

    /// The crate directory prefix (`crates/tcp`) of this file, if any.
    pub fn crate_dir(&self) -> Option<&str> {
        let mut it = self.rel.split('/');
        match (it.next(), it.next()) {
            (Some("crates"), Some(name)) => Some(&self.rel[..7 + name.len()]),
            _ => None,
        }
    }

    /// Whether the file lies under any of the given `/`-separated dir
    /// prefixes.
    pub fn under_any(&self, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| {
            self.rel == *p
                || (self.rel.starts_with(p.as_str())
                    && self.rel.as_bytes().get(p.len()) == Some(&b'/'))
        })
    }
}

/// Scan a file's comments for `lint: allow-<rule>(reason)` markers.
///
/// The reason runs to the first `)` — keep parentheses out of it (several
/// markers may share one comment, so the first close must terminate).
///
/// Attachment: a comment with code before it on its own line targets that
/// line; a standalone comment targets the next line bearing a code token.
/// Markers inside `#[cfg(test)]` code are ignored entirely (test code may
/// panic/allocate freely, so there is nothing to suppress).
fn collect_allows(f: &mut SourceFile) {
    for (ti, t) in f.toks.iter().enumerate() {
        if !t.is_comment() || f.items.in_test(ti) {
            continue;
        }
        let text = t.text(&f.src);
        // A marker must open the comment (`// lint: …`); prose that merely
        // mentions the syntax mid-sentence is not a marker.
        let content = text
            .trim_start_matches('/')
            .trim_start_matches(['!', '*'])
            .trim_start();
        let Some(body) = content.strip_prefix(MARKER_PREFIX) else { continue };
        if !body.contains("allow-") {
            continue;
        }
        // Trailing or standalone? Standalone iff no code token earlier on
        // the marker's starting line.
        let trailing = f.toks[..ti]
            .iter()
            .any(|p| !p.is_comment() && p.line == t.line);
        let target_line = if trailing {
            t.line
        } else {
            // Next code token's line (skipping comments); a dangling
            // marker at EOF targets its own line and will read as stale.
            f.toks[ti + 1..]
                .iter()
                .find(|p| !p.is_comment())
                .map(|p| p.line)
                .unwrap_or(t.line)
        };
        let mut rest = body;
        while let Some(ap) = rest.find("allow-") {
            rest = &rest[ap + "allow-".len()..];
            let rule_end = rest
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-' || c == '_'))
                .unwrap_or(rest.len());
            let rule = rest[..rule_end].trim_end_matches('-').to_string();
            let after = rest[rule_end..].trim_start();
            let known = RULES.contains(&rule.as_str());
            if !known {
                f.marker_findings.push(Finding {
                    rule: "marker".into(),
                    file: f.rel.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`allow-{rule}` names no rule (known: {})",
                        RULES.join(", ")
                    ),
                });
                continue;
            }
            let reason = after.strip_prefix('(').and_then(|a| {
                a.find(')').map(|c| a[..c].trim().to_string())
            });
            match reason {
                Some(r) if !r.is_empty() => f.allows.push(Allow {
                    rule,
                    reason: r,
                    marker_line: t.line,
                    target_line,
                    used: false,
                }),
                _ => f.marker_findings.push(Finding {
                    rule: "marker".into(),
                    file: f.rel.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!("`allow-{rule}` marker without a (reason)"),
                }),
            }
        }
    }
}

/// The whole scanned workspace.
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// Every first-party `.rs` file under `crates/`, sorted by path.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Load every `.rs` file under `crates/*/{src,tests,benches}` rooted
    /// at `root`.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut paths = Vec::new();
        let crates_dir = root.join("crates");
        let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)?
            .collect::<std::io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for cd in crate_dirs {
            for sub in ["src", "tests", "benches", "examples"] {
                let dir = cd.join(sub);
                if dir.is_dir() {
                    walk(&dir, &mut paths)?;
                }
            }
        }
        let mut files = Vec::new();
        for p in paths {
            let src = std::fs::read_to_string(&p)?;
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile::parse(&rel, src));
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// Build a workspace from in-memory sources (fixtures and tests).
    pub fn from_sources(sources: Vec<(&str, String)>) -> Workspace {
        Workspace {
            root: PathBuf::new(),
            files: sources
                .into_iter()
                .map(|(rel, src)| SourceFile::parse(rel, src))
                .collect(),
        }
    }

    /// The file at a workspace-relative path.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<std::io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            // `lint_fixtures/` trees are engine test *data* — miniature
            // workspaces full of planted violations — not first-party code.
            if p.file_name().is_some_and(|n| n == "lint_fixtures") {
                continue;
            }
            walk(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Which files each rule covers. [`Config::default_workspace`] is the real
/// wall; fixtures construct custom configs.
#[derive(Clone, Debug)]
pub struct Config {
    /// Crate dirs under the determinism wall (src + tests + benches: test
    /// schedules must stay deterministic too).
    pub determinism_paths: Vec<String>,
    /// Exact parser-module files under the strict panic surface
    /// (panicking macros, `unwrap`/`expect`, and expression indexing all
    /// forbidden outside test code). Every file must exist.
    pub parser_modules: Vec<String>,
    /// Exact data-path files under the allocation wall. Every file must
    /// exist.
    pub alloc_modules: Vec<String>,
    /// Dir prefixes scanned by the seq-arith wall.
    pub seq_paths: Vec<String>,
    /// The audited module exempt from the seq-arith wall.
    pub seq_audited: Vec<String>,
    /// Dir prefixes whose fns participate in the panic-reachability call
    /// graph.
    pub reach_paths: Vec<String>,
    /// Files whose `on_*`/`handle_*` fns are reachability entry points
    /// (parser-module fns are always entries).
    pub entry_files: Vec<String>,
    /// Fn-name prefixes marking an entry point within `entry_files`.
    pub entry_prefixes: Vec<String>,
    /// Fn-name prefixes marking a *decode* entry point within the parser
    /// modules. The strict panic surface covers exactly the
    /// parser-module fns reachable from these (wire bytes flow through
    /// them); encoder fns in the same files fall back to the relaxed
    /// reachability rule, where asserts and indexing are the legal
    /// invariant-oracle idiom.
    pub parse_entry_prefixes: Vec<String>,
    /// Whether the unsafe wall runs (forbid-or-justify on every loaded
    /// crate).
    pub unsafe_wall: bool,
}

impl Config {
    /// The real workspace walls.
    pub fn default_workspace() -> Config {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
        Config {
            determinism_paths: s(&["crates/tcp", "crates/core", "crates/sim", "crates/fleet"]),
            parser_modules: s(&[
                "crates/tcp/src/wire.rs",
                "crates/capture/src/pcapng.rs",
                "crates/capture/src/analyze.rs",
                "crates/scenario/src/parse.rs",
            ]),
            alloc_modules: s(&[
                "crates/tcp/src/wire.rs",
                "crates/capture/src/pcapng.rs",
                "crates/core/src/conn.rs",
            ]),
            seq_paths: s(&[
                "crates/tcp/src",
                "crates/core/src",
                "crates/sim/src",
                "crates/capture/src",
                "crates/metrics/src",
                "crates/scenario/src",
                "crates/link/src",
                "crates/http/src",
                "crates/fleet/src",
            ]),
            seq_audited: s(&["crates/tcp/src/seq.rs"]),
            reach_paths: s(&[
                "crates/tcp/src",
                "crates/core/src",
                "crates/sim/src",
                "crates/capture/src",
                "crates/scenario/src",
                "crates/link/src",
            ]),
            entry_files: s(&[
                "crates/tcp/src/socket.rs",
                "crates/core/src/conn.rs",
                "crates/core/src/host.rs",
            ]),
            entry_prefixes: s(&["on_", "handle_"]),
            parse_entry_prefixes: s(&["parse", "read", "decode"]),
            unsafe_wall: true,
        }
    }
}

/// Every wall's raw findings (before allow-marker filtering), sorted and
/// deduped by position. `lint --explain` uses this to locate suppressed
/// findings too.
pub fn raw_findings(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let r = resolve::Resolved::build(ws);
    let mut raw: Vec<Finding> = Vec::new();
    raw.extend(rules::determinism(ws, cfg));
    raw.extend(rules::panic_v2(ws, cfg, &r));
    raw.extend(flow::seq_taint(ws, cfg, &r));
    raw.extend(flow::handler_oracle(ws, cfg, &r));
    raw.extend(rules::alloc(ws, cfg));
    if cfg.unsafe_wall {
        raw.extend(rules::unsafe_audit(ws, cfg));
    }
    // Deterministic order: by file, line, col, rule.
    raw.sort_by(|a, b| {
        (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule))
    });
    // One finding per (file, line, col, rule): nested fns can be reached
    // twice (once via the outer body, once directly) with different call
    // paths — keep the first.
    raw.dedup_by(|a, b| {
        (&a.file, a.line, a.col, &a.rule) == (&b.file, b.line, b.col, &b.rule)
    });
    raw
}

/// Run every wall over a loaded workspace: rule findings filtered through
/// the allow markers, marker problems, and stale-marker findings.
pub fn run(ws: &Workspace, cfg: &Config) -> Result<report::Report, String> {
    // Loud failure on a renamed walled file, as with the old scanners.
    for want in cfg.parser_modules.iter().chain(&cfg.alloc_modules) {
        if ws.file(want).is_none() && !ws.files.is_empty() {
            return Err(format!(
                "walled module {want} not found (renamed? update Config)"
            ));
        }
    }

    let raw = raw_findings(ws, cfg);

    // Filter through allow markers: each marker suppresses exactly one
    // finding of its rule on its target line, in source order.
    let mut allows: Vec<(String, Allow)> = Vec::new();
    let mut findings = Vec::new();
    let mut per_file: std::collections::BTreeMap<&str, Vec<Allow>> = ws
        .files
        .iter()
        .map(|f| (f.rel.as_str(), f.allows.clone()))
        .collect();
    for fd in raw {
        let consumed = per_file.get_mut(fd.file.as_str()).and_then(|list| {
            list.iter_mut()
                .find(|a| !a.used && a.rule == fd.rule && a.target_line == fd.line)
        });
        match consumed {
            Some(a) => a.used = true,
            None => findings.push(fd),
        }
    }
    for f in &ws.files {
        findings.extend(f.marker_findings.iter().cloned());
    }
    for (rel, list) in per_file {
        for a in list {
            if !a.used {
                findings.push(Finding {
                    rule: "marker".into(),
                    file: rel.to_string(),
                    line: a.marker_line,
                    col: 1,
                    message: format!(
                        "stale `allow-{}` marker suppresses nothing (reason: {})",
                        a.rule, a.reason
                    ),
                });
            } else {
                allows.push((rel.to_string(), a));
            }
        }
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule))
    });
    allows.sort_by(|a, b| (&a.0, a.1.marker_line).cmp(&(&b.0, b.1.marker_line)));

    Ok(report::Report::new(ws, findings, allows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::from_sources(vec![("crates/x/src/lib.rs", src.to_string())])
    }

    #[test]
    fn trailing_marker_targets_its_own_line() {
        let w = ws("fn f() { g(); } // lint: allow-panic(reason here)\n");
        let f = &w.files[0];
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rule, "panic");
        assert_eq!(f.allows[0].reason, "reason here");
        assert_eq!(f.allows[0].target_line, 1);
    }

    #[test]
    fn standalone_marker_targets_next_code_line() {
        let w = ws("fn f() {\n    // lint: allow-seq-arith(u64 dsn)\n\n    let x = 1;\n}\n");
        let f = &w.files[0];
        assert_eq!(f.allows[0].target_line, 4);
    }

    #[test]
    fn two_markers_in_one_comment() {
        let w = ws("x(); // lint: allow-panic(a) allow-panic(b)\n");
        assert_eq!(w.files[0].allows.len(), 2);
    }

    #[test]
    fn missing_reason_and_unknown_rule_are_marker_findings() {
        let w = ws("x(); // lint: allow-panic()\ny(); // lint: allow-bogus(why)\n");
        let f = &w.files[0];
        assert_eq!(f.allows.len(), 0);
        assert_eq!(f.marker_findings.len(), 2);
        assert!(f.marker_findings[0].message.contains("without a (reason)"));
        assert!(f.marker_findings[1].message.contains("names no rule"));
    }

    #[test]
    fn markers_inside_cfg_test_are_ignored() {
        let w = ws("#[cfg(test)]\nmod t {\n // lint: allow-panic(x)\n fn f() {}\n}\n");
        assert!(w.files[0].allows.is_empty());
        assert!(w.files[0].marker_findings.is_empty());
    }

    #[test]
    fn crate_dir_and_under_any() {
        let w = ws("fn f() {}\n");
        let f = &w.files[0];
        assert_eq!(f.crate_dir(), Some("crates/x"));
        assert!(f.under_any(&["crates/x/src".into()]));
        assert!(f.under_any(&["crates/x".into()]));
        assert!(!f.under_any(&["crates/xy".into()]));
    }
}

//! The item/call-graph pass: function boundaries, call edges, test ranges.
//!
//! Layered on the [`lexer`](crate::lint_engine::lexer) token stream, this
//! pass recovers just enough structure for the walls to reason about
//! *reachability* instead of raw text:
//!
//! * **function items** — every `fn name … { body }`, including methods in
//!   `impl`/`trait` blocks and nested fns, with the token range of its body
//!   and the line range of the whole item;
//! * **call edges** — within each body, the *names* of free calls
//!   (`helper(..)`, `path::to::helper(..)`, `helper::<T>(..)`), method
//!   calls (`.helper(..)`), and macro invocations (`helper!(..)`). Edges
//!   are by bare name: the reachability rule resolves a name against every
//!   workspace fn that bears it, a deliberate over-approximation that can
//!   only err toward flagging too much, never toward missing a panic;
//! * **test ranges** — the token span of every `#[cfg(test)]`-gated item
//!   and `#[test]`/`#[bench]` fn, so rules can exempt test code exactly
//!   (the old scanners stopped at the first `#[cfg(test)]` *line*, which
//!   both over- and under-shot).
//!
//! This is not a parser: it tracks brace depth and a handful of token
//! shapes. That is enough because the rules only need names, spans, and a
//! conservative call relation.

use super::lexer::{Tok, TokKind};

/// One `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's bare name (`on_segment`, not `TcpSocket::on_segment`).
    pub name: String,
    /// Token-index range of the body, `{` and `}` inclusive. Empty for
    /// bodyless trait-method declarations.
    pub body: std::ops::Range<usize>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Names of free/method/macro calls made inside the body.
    pub calls: Vec<String>,
    /// Whether the fn is test code (inside `#[cfg(test)]` or `#[test]`).
    pub is_test: bool,
}

/// Structure recovered from one file.
#[derive(Clone, Debug, Default)]
pub struct FileItems {
    /// All fn items, in source order.
    pub fns: Vec<FnItem>,
    /// Token-index ranges covered by `#[cfg(test)]` items.
    pub test_ranges: Vec<std::ops::Range<usize>>,
}

impl FileItems {
    /// Whether token index `ti` lies inside test-gated code.
    pub fn in_test(&self, ti: usize) -> bool {
        self.test_ranges.iter().any(|r| r.contains(&ti))
    }
}

/// Keywords that look like calls when followed by `(` but are not.
fn is_expr_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "fn"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "in"
            | "as"
            | "where"
            | "impl"
            | "dyn"
            | "pub"
            | "unsafe"
            | "const"
            | "static"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "crate"
            | "super"
            | "self"
            | "Self"
    )
}

/// Index of the next non-comment token at or after `i`.
fn next_code(toks: &[Tok], mut i: usize) -> Option<usize> {
    while i < toks.len() {
        if !toks[i].is_comment() {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Index of the previous non-comment token strictly before `i`.
fn prev_code(toks: &[Tok], i: usize) -> Option<usize> {
    (0..i).rev().find(|&j| !toks[j].is_comment())
}

/// Run the item pass over one file's token stream.
pub fn scan_items(src: &str, toks: &[Tok]) -> FileItems {
    let mut out = FileItems::default();
    collect_test_ranges(src, toks, &mut out);

    // Find every `fn` keyword and carve out its item.
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident && t.text(src) == "fn" {
            // `fn` must not be part of a path like `Fn` trait sugar; the
            // lexer already separates `Fn(` (ident `Fn`) from keyword `fn`.
            if let Some((item, after)) = carve_fn(src, toks, i, &out) {
                out.fns.push(item);
                // Do not skip the body: nested fns inside it must be found
                // too, so continue right after the name.
                i = after;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Starting at the `fn` keyword token, recover the item. Returns the item
/// and the token index to resume scanning from (just past the fn name, so
/// nested fns are still discovered).
fn carve_fn(src: &str, toks: &[Tok], fn_idx: usize, ctx: &FileItems) -> Option<(FnItem, usize)> {
    let name_idx = next_code(toks, fn_idx + 1)?;
    let name_tok = &toks[name_idx];
    if name_tok.kind != TokKind::Ident {
        return None; // `fn(` pointer type — not an item
    }
    let name = name_tok.text(src).trim_start_matches("r#").to_string();

    // Scan the signature for the body `{` or a terminating `;`, skipping
    // over bracketed groups (generics can contain braces via const
    // generics `{ N }`; track delimiters so we take the *body* brace).
    let mut j = name_idx + 1;
    let mut angle = 0i32; // generic <> depth (best-effort)
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let body_open;
    loop {
        let k = next_code(toks, j)?;
        let txt = toks[k].text(src);
        match txt {
            "<" if paren == 0 => angle += 1,
            ">" if paren == 0 && angle > 0 => angle -= 1,
            ">>" if paren == 0 && angle > 0 => angle -= 2,
            "->" => {}
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            ";" if paren == 0 && bracket == 0 => return bodyless(toks, fn_idx, name, ctx, k),
            "{" if paren == 0 && bracket == 0 && angle <= 0 => {
                body_open = k;
                break;
            }
            // `{` inside a const-generic position: skip its group.
            "{" => {
                let close = matching_brace(src, toks, k)?;
                j = close + 1;
                continue;
            }
            _ => {}
        }
        j = k + 1;
    }

    let body_close = matching_brace(src, toks, body_open)?;
    let body = body_open..body_close + 1;
    let calls = collect_calls(src, toks, body.clone());
    let is_test = ctx.in_test(fn_idx) || has_test_attr(src, toks, fn_idx);
    Some((
        FnItem {
            name,
            body,
            line: toks[fn_idx].line,
            calls,
            is_test,
        },
        name_idx + 1,
    ))
}

fn bodyless(
    toks: &[Tok],
    fn_idx: usize,
    name: String,
    ctx: &FileItems,
    semi: usize,
) -> Option<(FnItem, usize)> {
    Some((
        FnItem {
            name,
            body: semi..semi,
            line: toks[fn_idx].line,
            calls: Vec::new(),
            is_test: ctx.in_test(fn_idx),
        },
        fn_idx + 1,
    ))
}

/// Token index of the `}` matching the `{` at `open`.
fn matching_brace(src: &str, toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_comment() {
            continue;
        }
        match t.text(src) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether the attributes directly above `fn_idx` include `#[test]`,
/// `#[bench]`, or `#[cfg(test)]`. Walks attribute groups upward.
fn has_test_attr(src: &str, toks: &[Tok], fn_idx: usize) -> bool {
    // Walk backwards over any run of `#[ ... ]` groups and modifiers
    // (`pub`, `async`, `const`, `unsafe`, `extern`, visibility parens).
    let mut end = match prev_code(toks, fn_idx) {
        Some(e) => e,
        None => return false,
    };
    loop {
        let txt = toks[end].text(src);
        if toks[end].kind == TokKind::Ident {
            if matches!(txt, "pub" | "async" | "const" | "unsafe" | "extern") {
                end = match prev_code(toks, end) {
                    Some(e) => e,
                    None => return false,
                };
                continue;
            }
            return false;
        }
        if txt == ")" || txt == "]" {
            // Close of `pub(crate)` or of an attribute `#[...]`; find its
            // opener.
            let close_txt = txt;
            let open_txt = if close_txt == ")" { "(" } else { "[" };
            let mut depth = 0i32;
            let mut k = end;
            loop {
                let t = toks[k].text(src);
                if t == close_txt {
                    depth += 1;
                } else if t == open_txt {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k = match prev_code(toks, k) {
                    Some(p) => p,
                    None => return false,
                };
            }
            if close_txt == "]" {
                // k is `[`; the token before should be `#`, and the group
                // contents may contain `test`.
                let hash = prev_code(toks, k);
                let is_attr = hash.is_some_and(|h| toks[h].text(src) == "#");
                if is_attr {
                    let mentions_test = toks[k..=end].iter().any(|t| {
                        t.kind == TokKind::Ident
                            && matches!(t.text(src), "test" | "bench")
                    });
                    if mentions_test {
                        return true;
                    }
                    end = match hash.and_then(|h| prev_code(toks, h)) {
                        Some(e) => e,
                        None => return false,
                    };
                    continue;
                }
            }
            if close_txt == ")" {
                end = match prev_code(toks, k) {
                    Some(e) => e,
                    None => return false,
                };
                continue;
            }
            return false;
        }
        return false;
    }
}

/// Call names inside a body token range: `name(`, `name::<..>(`,
/// `.name(`, `.name::<..>(`, `name!`; path calls record the last segment.
fn collect_calls(src: &str, toks: &[Tok], body: std::ops::Range<usize>) -> Vec<String> {
    let mut calls = Vec::new();
    let mut k = body.start;
    while k < body.end {
        let t = &toks[k];
        if t.kind != TokKind::Ident || t.is_comment() {
            k += 1;
            continue;
        }
        let name = t.text(src).trim_start_matches("r#");
        if is_expr_keyword(name) {
            k += 1;
            continue;
        }
        // Skip the fn name of a nested definition.
        if prev_code(toks, k).is_some_and(|p| toks[p].text(src) == "fn") {
            k += 1;
            continue;
        }
        if let Some(n) = next_code(toks, k + 1) {
            let nt = toks[n].text(src);
            if nt == "!" {
                calls.push(name.to_string());
                k = n + 1;
                continue;
            }
            if nt == "(" {
                calls.push(name.to_string());
                k = n + 1;
                continue;
            }
            if nt == "::" {
                // `path::seg` — only the final segment before `(` counts;
                // keep walking, the final ident will be visited later.
                k = n + 1;
                continue;
            }
            if nt == "<" {
                // Possible turbofish written without `::` cannot occur;
                // `name < x` is a comparison. Skip.
                k += 1;
                continue;
            }
        }
        k += 1;
    }
    // `name::<T>(…)`: the segment before `::<` is the call. Handle by a
    // second pass over `:: <` sequences.
    let mut k = body.start;
    while k < body.end {
        if toks[k].text(src) == "::" {
            if let (Some(p), Some(n)) = (prev_code(toks, k), next_code(toks, k + 1)) {
                if toks[n].text(src) == "<" && toks[p].kind == TokKind::Ident {
                    let name = toks[p].text(src).trim_start_matches("r#");
                    if !is_expr_keyword(name) {
                        // Find the `(` after the turbofish group.
                        let mut depth = 0i32;
                        let mut j = n;
                        while j < body.end {
                            match toks[j].text(src) {
                                "<" => depth += 1,
                                ">" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                ">>" => depth -= 2,
                                _ => {}
                            }
                            j += 1;
                        }
                        if next_code(toks, j + 1)
                            .is_some_and(|c| toks[c].text(src) == "(")
                        {
                            calls.push(name.to_string());
                        }
                    }
                }
            }
        }
        k += 1;
    }
    calls.sort();
    calls.dedup();
    calls
}

/// Record the token ranges of `#[cfg(test)]`-gated items.
fn collect_test_ranges(src: &str, toks: &[Tok], out: &mut FileItems) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text(src) == "#" && !toks[i].is_comment() {
            let Some(open) = next_code(toks, i + 1) else { break };
            if toks[open].text(src) != "[" {
                i += 1;
                continue;
            }
            // Find the attribute's closing `]`.
            let mut depth = 0i32;
            let mut close = open;
            while close < toks.len() {
                match toks[close].text(src) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                close += 1;
            }
            let is_cfg_test = {
                let inner: Vec<&str> = toks[open..=close.min(toks.len() - 1)]
                    .iter()
                    .filter(|t| !t.is_comment())
                    .map(|t| t.text(src))
                    .collect();
                inner.len() >= 3
                    && inner[1] == "cfg"
                    && inner.contains(&"test")
            };
            if is_cfg_test {
                // The gated item: skip further attributes, then find its
                // body braces (mod/fn/impl/struct…); a `;`-terminated item
                // (e.g. `use`) spans to the `;`.
                let mut j = close + 1;
                while let Some(n) = next_code(toks, j) {
                    if toks[n].text(src) == "#" {
                        // Another attribute: skip its group.
                        if let Some(o) = next_code(toks, n + 1) {
                            if toks[o].text(src) == "[" {
                                let mut d = 0i32;
                                let mut c = o;
                                while c < toks.len() {
                                    match toks[c].text(src) {
                                        "[" => d += 1,
                                        "]" => {
                                            d -= 1;
                                            if d == 0 {
                                                break;
                                            }
                                        }
                                        _ => {}
                                    }
                                    c += 1;
                                }
                                j = c + 1;
                                continue;
                            }
                        }
                    }
                    break;
                }
                let mut end = None;
                let mut k = j;
                while let Some(n) = next_code(toks, k) {
                    match toks[n].text(src) {
                        ";" => {
                            end = Some(n);
                            break;
                        }
                        "{" => {
                            end = matching_brace(src, toks, n);
                            break;
                        }
                        _ => k = n + 1,
                    }
                }
                if let Some(e) = end {
                    out.test_ranges.push(i..e + 1);
                    i = e + 1;
                    continue;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_engine::lexer::lex;

    fn items(src: &str) -> FileItems {
        scan_items(src, &lex(src))
    }

    #[test]
    fn finds_free_fns_methods_and_nested() {
        let src = r#"
            fn top() { inner(); }
            impl Foo {
                pub fn method(&self) -> u32 { self.helper() + free_call(1) }
            }
            fn outer() {
                fn nested() { deep(); }
                nested();
            }
        "#;
        let it = items(src);
        let names: Vec<&str> = it.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["top", "method", "outer", "nested"]);
        assert_eq!(it.fns[0].calls, ["inner"]);
        assert_eq!(it.fns[1].calls, ["free_call", "helper"]);
        // outer's body includes the nested fn's calls (conservative).
        assert!(it.fns[2].calls.contains(&"nested".to_string()));
        assert!(it.fns[2].calls.contains(&"deep".to_string()));
    }

    #[test]
    fn method_path_and_macro_calls_are_edges() {
        let src = "fn f() { a.b(); mod1::mod2::g(); h!(1); Vec::<u8>::with_capacity(4); }";
        let f = &items(src).fns[0];
        for c in ["b", "g", "h", "with_capacity"] {
            assert!(f.calls.contains(&c.to_string()), "{c} missing from {:?}", f.calls);
        }
        assert!(!f.calls.contains(&"mod1".to_string()));
    }

    #[test]
    fn turbofish_free_call_is_an_edge() {
        let src = "fn f() { parse::<u32>(x); }";
        assert!(items(src).fns[0].calls.contains(&"parse".to_string()));
    }

    #[test]
    fn bodyless_trait_methods_are_recorded() {
        let src = "trait T { fn decl(&self); fn with_default(&self) { decl(); } }";
        let it = items(src);
        assert_eq!(it.fns[0].name, "decl");
        assert!(it.fns[0].body.is_empty());
        assert_eq!(it.fns[1].calls, ["decl"]);
    }

    #[test]
    fn cfg_test_mod_is_a_test_range_and_code_after_is_not() {
        let src = r#"
            fn real() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { real(); }
            }
            fn also_real() {}
        "#;
        let it = items(src);
        let real = it.fns.iter().find(|f| f.name == "real").unwrap();
        let t = it.fns.iter().find(|f| f.name == "t").unwrap();
        let also = it.fns.iter().find(|f| f.name == "also_real").unwrap();
        assert!(!real.is_test);
        assert!(t.is_test);
        assert!(!also.is_test, "code after a cfg(test) mod is not test code");
    }

    #[test]
    fn test_attr_alone_marks_a_fn() {
        let src = "#[test]\nfn unit() { x(); }\npub fn not_test() {}";
        let it = items(src);
        assert!(it.fns[0].is_test);
        assert!(!it.fns[1].is_test);
    }

    #[test]
    fn cfg_any_test_is_a_test_range() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nmod helpers { fn h() {} }";
        assert!(items(src).fns[0].is_test);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn real(cb: fn(u32) -> u32) { cb(1); }";
        let it = items(src);
        assert_eq!(it.fns.len(), 1);
        assert_eq!(it.fns[0].name, "real");
    }

    #[test]
    fn where_clause_and_return_impl_do_not_confuse_the_body() {
        let src = "fn g<T>(x: T) -> impl Iterator<Item = T> where T: Clone { std::iter::once(x) }";
        let it = items(src);
        assert_eq!(it.fns[0].name, "g");
        assert!(it.fns[0].calls.contains(&"once".to_string()));
    }
}

//! Name resolution over the parsed workspace (DESIGN.md §5.13).
//!
//! Recovers just enough global structure for the precise walls:
//!
//! * a **module tree** per crate, derived from file paths (`lib.rs` is the
//!   crate root, `foo.rs`/`foo/mod.rs` are child modules, files under
//!   `tests/`/`benches/`/`examples/` are their own roots);
//! * **type tables**: every struct's fields (name → declared type head)
//!   and every impl block's methods keyed by the `Self` type, so a method
//!   call with a known receiver type resolves to *that* type's method and
//!   not every same-named method in the workspace;
//! * a **call graph** whose nodes are typed (`SendBuffer::read` and
//!   `PcapReader::read` are distinct). When a receiver type cannot be
//!   inferred the edge degrades to a *name fallback* — edges to every
//!   same-named method — so the precise analyses stay a sound subset of
//!   the v1 name-based BFS: precision only removes edges that provably
//!   cannot exist, never invents reachability.
//!
//! Resolution is deliberately approximate where the walls don't need
//! exactness (generics are erased, trait dispatch fans out to every
//! implementing type, macros are opaque), and exact where they do: the
//! receiver typing below resolves most method calls in this workspace to a
//! unique `Type::method` node.

use std::collections::{BTreeMap, BTreeSet};

use super::parse::{Block, Expr, ExprKind, FnDef, Item, ItemKind, Pat, PatKind, Stmt, StmtKind, Ty};
use super::{SourceFile, Workspace};

/// A resolved function node in the call graph.
#[derive(Debug)]
pub struct FnNode {
    /// Qualified name: `Type::method` for impl methods, `module_path::fn`
    /// for free fns (module path relative to the crate root).
    pub qname: String,
    /// Bare fn name (`read`).
    pub name: String,
    /// `Self` type head for impl methods.
    pub self_ty: Option<String>,
    /// Trait being implemented, if a trait-impl method.
    pub trait_name: Option<String>,
    /// File index into `Workspace::files`.
    pub file: usize,
    /// 1-based line of the `fn` name token.
    pub line: u32,
    /// Whether the fn sits inside `#[cfg(test)]` code.
    pub is_test: bool,
    /// Body token span (`lo..hi` original-token indices), if any.
    pub body: Option<(usize, usize)>,
}

/// One call edge out of a fn body.
#[derive(Clone, Debug)]
pub struct CallEdge {
    /// Caller fn id.
    pub from: usize,
    /// Callee fn id.
    pub to: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
    /// True when the receiver type was inferred (typed edge); false when
    /// the edge exists only via the name fallback.
    pub typed: bool,
}

/// The resolved workspace: typed fn nodes, call edges, and type tables.
pub struct Resolved {
    pub fns: Vec<FnNode>,
    /// Out-edges per fn id, deduped by (callee, line).
    pub calls: Vec<Vec<CallEdge>>,
    /// Struct name → (field name → declared type). Tracks every struct in
    /// the workspace (first definition wins on cross-crate name
    /// collisions, which the walls tolerate: field *types* matter).
    pub struct_fields: BTreeMap<String, BTreeMap<String, Ty>>,
    /// Struct name → file index where it is declared.
    pub struct_file: BTreeMap<String, usize>,
    /// Fn name → fn ids (the name-fallback index).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// `Type::method` / `module::fn` → fn id.
    pub by_qname: BTreeMap<String, usize>,
    /// Trait name → implementing type heads.
    pub trait_impls: BTreeMap<String, BTreeSet<String>>,
}

impl Resolved {
    /// Resolve the whole workspace.
    pub fn build(ws: &Workspace) -> Resolved {
        let mut r = Resolved {
            fns: Vec::new(),
            calls: Vec::new(),
            struct_fields: BTreeMap::new(),
            struct_file: BTreeMap::new(),
            by_name: BTreeMap::new(),
            by_qname: BTreeMap::new(),
            trait_impls: BTreeMap::new(),
        };
        // Pass 1: fn nodes, struct tables, impl tables.
        for (fi, f) in ws.files.iter().enumerate() {
            collect_decls(&mut r, f, fi, &f.ast.items, &mut Vec::new());
        }
        // Pass 2: call edges from every fn body.
        r.calls = vec![Vec::new(); r.fns.len()];
        for fid in 0..r.fns.len() {
            if r.fns[fid].body.is_none() {
                continue;
            }
            let f = &ws.files[r.fns[fid].file];
            let Some((fd, self_ty)) = find_fn(&f.ast.items, &r.fns[fid]) else { continue };
            let Some(block) = &fd.body else { continue };
            let mut cx = BodyCx {
                r: &r,
                file: f,
                self_ty,
                locals: Vec::new(),
                edges: Vec::new(),
                from: fid,
            };
            for (pname, ty) in &fd.params {
                if let Some(p) = pname {
                    let head = strip_shells(ty);
                    if !head.is_empty() {
                        cx.locals.push((p.clone(), head));
                    }
                }
            }
            cx.block(block);
            let mut edges = cx.edges;
            edges.sort_by_key(|e| (e.to, e.line, !e.typed));
            edges.dedup_by(|a, b| (a.to, a.line) == (b.to, b.line));
            r.calls[fid] = edges;
        }
        r
    }

    /// All fn ids whose bare name matches.
    pub fn candidates(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Render the call graph in Graphviz dot format (typed edges solid,
    /// name-fallback edges dashed). Test-only fns are omitted.
    pub fn to_dot(&self, ws: &Workspace) -> String {
        let mut out =
            String::from("digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n");
        let mut used: BTreeSet<usize> = BTreeSet::new();
        for (from, edges) in self.calls.iter().enumerate() {
            if self.fns[from].is_test {
                continue;
            }
            for e in edges {
                if self.fns[e.to].is_test {
                    continue;
                }
                used.insert(from);
                used.insert(e.to);
            }
        }
        for &id in &used {
            let n = &self.fns[id];
            out.push_str(&format!(
                "  n{} [label=\"{}\\n{}\"];\n",
                id,
                n.qname.replace('"', ""),
                ws.files[n.file].rel
            ));
        }
        for (from, edges) in self.calls.iter().enumerate() {
            if self.fns[from].is_test {
                continue;
            }
            for e in edges {
                if self.fns[e.to].is_test {
                    continue;
                }
                out.push_str(&format!(
                    "  n{} -> n{}{};\n",
                    from,
                    e.to,
                    if e.typed { "" } else { " [style=dashed]" }
                ));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Derive the module path of a file within its crate (`["wire"]` for
/// `crates/tcp/src/wire.rs`, `[]` for `lib.rs` and non-`src` roots).
fn module_path_of(rel: &str) -> Vec<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.len() >= 4 && parts[0] == "crates" && parts[2] == "src" {
        let mut mods: Vec<String> =
            parts[3..parts.len() - 1].iter().map(|s| s.to_string()).collect();
        let stem = parts[parts.len() - 1].trim_end_matches(".rs");
        if stem != "lib" && stem != "mod" && stem != "main" {
            mods.push(stem.to_string());
        }
        return mods;
    }
    Vec::new()
}

fn collect_decls(
    r: &mut Resolved,
    f: &SourceFile,
    fi: usize,
    items: &[Item],
    mod_stack: &mut Vec<String>,
) {
    for it in items {
        match &it.kind {
            ItemKind::Struct(s) => {
                r.struct_file.entry(s.name.clone()).or_insert(fi);
                let tbl = r.struct_fields.entry(s.name.clone()).or_default();
                for (fname, ty) in &s.fields {
                    tbl.entry(fname.clone()).or_insert_with(|| ty.clone());
                }
                for (i, ty) in s.tuple_fields.iter().enumerate() {
                    tbl.entry(i.to_string()).or_insert_with(|| ty.clone());
                }
            }
            ItemKind::Fn(fd) => push_fn(r, f, fi, fd, None, None, mod_stack),
            ItemKind::Impl(im) => {
                if let Some(tn) = &im.trait_name {
                    r.trait_impls
                        .entry(tn.clone())
                        .or_default()
                        .insert(im.self_ty.clone());
                }
                for sub in &im.items {
                    if let ItemKind::Fn(fd) = &sub.kind {
                        push_fn(
                            r,
                            f,
                            fi,
                            fd,
                            Some(im.self_ty.as_str()),
                            im.trait_name.as_deref(),
                            mod_stack,
                        );
                    }
                }
            }
            ItemKind::Trait { items: tis, .. } => {
                // Default trait-method bodies become free nodes; calls to
                // the trait method fan out through `trait_impls`.
                for sub in tis {
                    if let ItemKind::Fn(fd) = &sub.kind {
                        if fd.body.is_some() {
                            push_fn(r, f, fi, fd, None, None, mod_stack);
                        }
                    }
                }
            }
            ItemKind::Mod { name, items: mis, inline: true } => {
                mod_stack.push(name.clone());
                collect_decls(r, f, fi, mis, mod_stack);
                mod_stack.pop();
            }
            _ => {}
        }
    }
}

fn push_fn(
    r: &mut Resolved,
    f: &SourceFile,
    fi: usize,
    fd: &FnDef,
    self_ty: Option<&str>,
    trait_name: Option<&str>,
    mod_stack: &[String],
) {
    let line = f.toks.get(fd.name_tok).map(|t| t.line).unwrap_or(0);
    let qname = match self_ty {
        Some(st) => format!("{st}::{}", fd.name),
        None => {
            let mut mp = module_path_of(&f.rel);
            mp.extend(mod_stack.iter().cloned());
            if mp.is_empty() {
                fd.name.clone()
            } else {
                format!("{}::{}", mp.join("::"), fd.name)
            }
        }
    };
    let id = r.fns.len();
    r.fns.push(FnNode {
        qname: qname.clone(),
        name: fd.name.clone(),
        self_ty: self_ty.map(|s| s.to_string()),
        trait_name: trait_name.map(|s| s.to_string()),
        file: fi,
        line,
        is_test: f.items.in_test(fd.name_tok),
        body: fd.body.as_ref().map(|b| (b.span.lo, b.span.hi)),
    });
    r.by_name.entry(fd.name.clone()).or_default().push(id);
    r.by_qname.entry(qname).or_insert(id);
}

/// Locate the `FnDef` (and its impl `Self` type) behind a node, by the
/// name token recorded at collection time.
pub fn find_fn<'a>(items: &'a [Item], node: &FnNode) -> Option<(&'a FnDef, Option<String>)> {
    fn walk<'a>(
        items: &'a [Item],
        name_tok_target: &FnNode,
        self_ty: Option<&str>,
    ) -> Option<(&'a FnDef, Option<String>)> {
        for it in items {
            match &it.kind {
                ItemKind::Fn(fd) if fd.name == name_tok_target.name => {
                    // Disambiguate same-named fns by the recorded span.
                    if let Some((lo, hi)) = name_tok_target.body {
                        if let Some(b) = &fd.body {
                            if b.span.lo == lo && b.span.hi == hi {
                                return Some((fd, self_ty.map(|s| s.to_string())));
                            }
                        }
                    } else if fd.body.is_none() {
                        return Some((fd, self_ty.map(|s| s.to_string())));
                    }
                }
                ItemKind::Impl(im) => {
                    if let Some(hit) = walk(&im.items, name_tok_target, Some(&im.self_ty)) {
                        return Some(hit);
                    }
                }
                ItemKind::Trait { items: tis, .. } => {
                    if let Some(hit) = walk(tis, name_tok_target, self_ty) {
                        return Some(hit);
                    }
                }
                ItemKind::Mod { items: mis, .. } => {
                    if let Some(hit) = walk(mis, name_tok_target, self_ty) {
                        return Some(hit);
                    }
                }
                _ => {}
            }
        }
        None
    }
    walk(items, node, None)
}

/// Per-body context for edge extraction with local type inference.
struct BodyCx<'a> {
    r: &'a Resolved,
    file: &'a SourceFile,
    /// `Self` type of the enclosing impl, if any.
    self_ty: Option<String>,
    /// Shadowing stack of (name, type head); "" marks an untyped binding
    /// that still shadows any typed outer binding.
    locals: Vec<(String, String)>,
    edges: Vec<CallEdge>,
    from: usize,
}

impl BodyCx<'_> {
    fn line_of(&self, tok: usize) -> u32 {
        self.file.toks.get(tok).map(|t| t.line).unwrap_or(0)
    }

    /// Infer the type head of an expression, or "" when unknown.
    fn ty_of(&self, e: &Expr) -> String {
        match &e.kind {
            ExprKind::Path(segs) => {
                if segs.len() == 1 {
                    let name = &segs[0].0;
                    if name == "self" {
                        return self.self_ty.clone().unwrap_or_default();
                    }
                    for (n, t) in self.locals.iter().rev() {
                        if n == name {
                            return t.clone();
                        }
                    }
                    // Unit-struct literal (`let x = B;`).
                    if self.r.struct_fields.contains_key(name) {
                        return name.clone();
                    }
                }
                String::new()
            }
            ExprKind::Field { base, name } => {
                let bty = self.ty_of(base);
                if bty.is_empty() {
                    return String::new();
                }
                self.r
                    .struct_fields
                    .get(&bty)
                    .and_then(|tbl| tbl.get(name))
                    .map(strip_shells)
                    .unwrap_or_default()
            }
            ExprKind::Call { callee, .. } => {
                // `Type::new(...)` / `Type::from_x(...)` / `SeqNum(x)`.
                if let ExprKind::Path(segs) = &callee.kind {
                    if segs.len() >= 2 {
                        let head = &segs[segs.len() - 2].0;
                        let head = if head == "Self" {
                            self.self_ty.clone().unwrap_or_default()
                        } else {
                            head.clone()
                        };
                        let tail = &segs[segs.len() - 1].0;
                        let ctorish = tail == "new"
                            || tail == "default"
                            || tail == "with_capacity"
                            || tail.starts_with("from");
                        if ctorish
                            && (self.r.struct_fields.contains_key(&head)
                                || self.r.by_qname.contains_key(&format!("{head}::new")))
                        {
                            return head;
                        }
                    }
                    if segs.len() == 1 && self.r.struct_fields.contains_key(&segs[0].0) {
                        return segs[0].0.clone();
                    }
                }
                String::new()
            }
            ExprKind::MethodCall { recv, name, .. } => {
                // A few std methods preserve the receiver type.
                if matches!(
                    name.as_str(),
                    "clone" | "borrow" | "borrow_mut" | "as_ref" | "as_mut"
                ) {
                    return self.ty_of(recv);
                }
                String::new()
            }
            ExprKind::StructLit { path, .. } => path
                .last()
                .map(|(s, _)| {
                    if s == "Self" {
                        self.self_ty.clone().unwrap_or_default()
                    } else {
                        s.clone()
                    }
                })
                .unwrap_or_default(),
            ExprKind::Ref { expr, .. }
            | ExprKind::Paren(expr)
            | ExprKind::Try(expr)
            | ExprKind::Unary { operand: expr, .. } => self.ty_of(expr),
            ExprKind::Cast { ty, .. } => strip_shells(ty),
            ExprKind::Block(b) => b
                .stmts
                .last()
                .and_then(|s| match &s.kind {
                    StmtKind::Expr { expr, semi: false } => Some(self.ty_of(expr)),
                    _ => None,
                })
                .unwrap_or_default(),
            _ => String::new(),
        }
    }

    fn edge_all(&mut self, targets: &[usize], line: u32, typed: bool) {
        for &to in targets {
            self.edges.push(CallEdge { from: self.from, to, line, typed });
        }
    }

    fn block(&mut self, b: &Block) {
        let depth = self.locals.len();
        for s in &b.stmts {
            self.stmt(s);
        }
        self.locals.truncate(depth);
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Let { pat, ty, init, else_block } => {
                if let Some(e) = init {
                    self.expr(e);
                }
                if let Some(b) = else_block {
                    self.block(b);
                }
                // Bind after the initializer (shadowing reads the old
                // binding inside its own init).
                let head = ty
                    .as_ref()
                    .map(strip_shells)
                    .filter(|h| !h.is_empty())
                    .or_else(|| {
                        init.as_ref().map(|e| self.ty_of(e)).filter(|h| !h.is_empty())
                    })
                    .unwrap_or_default();
                self.bind_pat(pat, &head);
            }
            StmtKind::Expr { expr, .. } => self.expr(expr),
            StmtKind::Item(_) => {
                // Nested items get their own fn nodes in pass 1.
            }
            StmtKind::Empty => {}
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Call { callee, args } => {
                for a in args {
                    self.expr(a);
                }
                if let ExprKind::Path(segs) = &callee.kind {
                    let line = segs.last().map(|(_, t)| self.line_of(*t)).unwrap_or(0);
                    self.resolve_path_call(segs, line);
                } else {
                    self.expr(callee);
                }
            }
            ExprKind::MethodCall { recv, name, name_tok, args } => {
                self.expr(recv);
                for a in args {
                    self.expr(a);
                }
                let line = self.line_of(*name_tok);
                let rty = self.ty_of(recv);
                if !rty.is_empty() {
                    if let Some(&id) = self.r.by_qname.get(&format!("{rty}::{name}")) {
                        self.edge_all(&[id], line, true);
                        return;
                    }
                    // Receiver head is a trait (object or generic bound):
                    // fan out to every implementing type's method.
                    if let Some(impls) = self.r.trait_impls.get(&rty) {
                        let ids: Vec<usize> = impls
                            .iter()
                            .filter_map(|t| {
                                self.r.by_qname.get(&format!("{t}::{name}")).copied()
                            })
                            .collect();
                        if !ids.is_empty() {
                            self.edge_all(&ids, line, true);
                            return;
                        }
                    }
                }
                // Unknown receiver: name fallback (v1 parity).
                let fallback: Vec<usize> = self.r.candidates(name).to_vec();
                self.edge_all(&fallback, line, false);
            }
            ExprKind::MacroCall { .. } => {
                // Macro bodies are opaque; the token-level rules see
                // panicking macros directly.
            }
            ExprKind::Path(_) | ExprKind::Lit | ExprKind::Continue | ExprKind::Err => {}
            ExprKind::Unary { operand, .. } => self.expr(operand),
            ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            ExprKind::Cast { expr, .. } => self.expr(expr),
            ExprKind::Field { base, .. } => self.expr(base),
            ExprKind::Index { base, index } => {
                self.expr(base);
                self.expr(index);
            }
            ExprKind::Try(x) | ExprKind::Ref { expr: x, .. } | ExprKind::Paren(x) => self.expr(x),
            ExprKind::Tuple(xs) | ExprKind::Array { elems: xs } => {
                for x in xs {
                    self.expr(x);
                }
            }
            ExprKind::StructLit { fields, base, .. } => {
                for (_, v) in fields {
                    if let Some(v) = v {
                        self.expr(v);
                    }
                }
                if let Some(b) = base {
                    self.expr(b);
                }
            }
            ExprKind::Block(b) => self.block(b),
            ExprKind::If { cond, then, else_ } => {
                self.expr(cond);
                self.block(then);
                if let Some(x) = else_ {
                    self.expr(x);
                }
            }
            ExprKind::IfLet { pat, scrutinee, then, else_ } => {
                self.expr(scrutinee);
                let depth = self.locals.len();
                let sty = self.ty_of(scrutinee);
                self.bind_pat(pat, &sty);
                self.block(then);
                self.locals.truncate(depth);
                if let Some(x) = else_ {
                    self.expr(x);
                }
            }
            ExprKind::Match { scrutinee, arms } => {
                self.expr(scrutinee);
                let sty = self.ty_of(scrutinee);
                for a in arms {
                    let depth = self.locals.len();
                    self.bind_pat(&a.pat, &sty);
                    if let Some(g) = &a.guard {
                        self.expr(g);
                    }
                    self.expr(&a.body);
                    self.locals.truncate(depth);
                }
            }
            ExprKind::While { cond, body } => {
                self.expr(cond);
                self.block(body);
            }
            ExprKind::WhileLet { pat, scrutinee, body } => {
                self.expr(scrutinee);
                let depth = self.locals.len();
                let sty = self.ty_of(scrutinee);
                self.bind_pat(pat, &sty);
                self.block(body);
                self.locals.truncate(depth);
            }
            ExprKind::Loop { body } => self.block(body),
            ExprKind::For { pat, iter, body } => {
                self.expr(iter);
                let depth = self.locals.len();
                self.bind_pat(pat, "");
                self.block(body);
                self.locals.truncate(depth);
            }
            ExprKind::Closure { params, body } => {
                let depth = self.locals.len();
                for (pname, ty) in params {
                    if let Some(p) = pname {
                        let head = ty.as_ref().map(strip_shells).unwrap_or_default();
                        self.locals.push((p.clone(), head));
                    }
                }
                self.expr(body);
                self.locals.truncate(depth);
            }
            ExprKind::Return(v) | ExprKind::Break(v) => {
                if let Some(v) = v {
                    self.expr(v);
                }
            }
            ExprKind::Range { lo, hi } => {
                if let Some(l) = lo {
                    self.expr(l);
                }
                if let Some(h) = hi {
                    self.expr(h);
                }
            }
        }
    }

    /// Bind pattern idents. An `Ident` pattern against a known scrutinee
    /// type takes that type; destructuring bindings take their declared
    /// struct-field types where the table knows them.
    fn bind_pat(&mut self, p: &Pat, scrutinee_ty: &str) {
        match &p.kind {
            PatKind::Ident { name, sub } => {
                self.locals.push((name.clone(), scrutinee_ty.to_string()));
                if let Some(s) = sub {
                    self.bind_pat(s, scrutinee_ty);
                }
            }
            PatKind::TupleStruct { elems, .. } => {
                for x in elems {
                    self.bind_pat(x, "");
                }
            }
            PatKind::Struct { path, fields } => {
                let sname = path.last().cloned().unwrap_or_default();
                for (fname, sub) in fields {
                    let fty = self
                        .r
                        .struct_fields
                        .get(&sname)
                        .and_then(|t| t.get(fname))
                        .map(strip_shells)
                        .unwrap_or_default();
                    match sub {
                        Some(sp) => self.bind_pat(sp, &fty),
                        None => self.locals.push((fname.clone(), fty)),
                    }
                }
            }
            PatKind::Tuple(es) | PatKind::Slice(es) | PatKind::Or(es) => {
                for x in es {
                    self.bind_pat(x, "");
                }
            }
            PatKind::Ref(inner) => self.bind_pat(inner, scrutinee_ty),
            _ => {}
        }
    }

    /// Resolve a path call `a::b::f(...)` / `f(...)` / `Self::f(...)`.
    fn resolve_path_call(&mut self, segs: &[(String, usize)], line: u32) {
        let Some((last, _)) = segs.last() else { return };
        if segs.len() >= 2 {
            let head = &segs[segs.len() - 2].0;
            let head_resolved = if head == "Self" {
                self.self_ty.clone().unwrap_or_default()
            } else {
                head.clone()
            };
            if let Some(&id) = self.r.by_qname.get(&format!("{head_resolved}::{last}")) {
                self.edge_all(&[id], line, true);
                return;
            }
            // Module-qualified free fn: match on the qname tail.
            let tail2 = format!("{head}::{last}");
            let hit: Vec<usize> = self
                .r
                .by_qname
                .iter()
                .filter(|(q, _)| q.as_str() == tail2 || q.ends_with(&format!("::{tail2}")))
                .map(|(_, &id)| id)
                .collect();
            if !hit.is_empty() {
                self.edge_all(&hit, line, true);
                return;
            }
        }
        // Unqualified or unresolved: name fallback (v1 parity).
        let fallback: Vec<usize> = self.r.candidates(last).to_vec();
        self.edge_all(&fallback, line, false);
    }
}

/// Strip reference/pointer/smart-pointer shells off a type and return the
/// base head (`&mut wire::TcpSegment` → `TcpSegment`; `Box<dyn Agent>` →
/// `Agent`; `Vec<u8>` stays `Vec`).
pub fn strip_shells(ty: &Ty) -> String {
    for s in &ty.segs {
        match s.as_str() {
            "&" | "*" | "[]" | "()" => continue,
            other => {
                if matches!(other, "Box" | "Rc" | "Arc" | "RefCell" | "Cell" | "Option") {
                    if let Some(inner) = ty.args.first() {
                        let h = strip_shells(inner);
                        if !h.is_empty() {
                            return h;
                        }
                    }
                }
                return other.to_string();
            }
        }
    }
    String::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: Vec<(&str, &str)>) -> Workspace {
        Workspace::from_sources(files.into_iter().map(|(r, s)| (r, s.to_string())).collect())
    }

    #[test]
    fn same_named_methods_get_distinct_nodes() {
        let w = ws(vec![(
            "crates/x/src/lib.rs",
            "struct SendBuffer; struct PcapReader;\n\
             impl SendBuffer { fn read(&self) -> u8 { 0 } }\n\
             impl PcapReader { fn read(&self) -> u8 { panic!(\"io\") } }\n",
        )]);
        let r = Resolved::build(&w);
        assert!(r.by_qname.contains_key("SendBuffer::read"));
        assert!(r.by_qname.contains_key("PcapReader::read"));
        assert_eq!(r.candidates("read").len(), 2);
    }

    #[test]
    fn typed_receiver_resolves_to_one_callee() {
        let w = ws(vec![(
            "crates/x/src/lib.rs",
            "pub struct A; pub struct B;\n\
             impl A { pub fn go(&self) {} }\n\
             impl B { pub fn go(&self) {} }\n\
             pub struct H { a: A }\n\
             impl H { pub fn run(&self, b: &B) { self.a.go(); b.go(); } }\n",
        )]);
        let r = Resolved::build(&w);
        let run = r.by_qname["H::run"];
        let edges = &r.calls[run];
        assert_eq!(edges.len(), 2, "{edges:?}");
        assert!(edges.iter().all(|e| e.typed), "{edges:?}");
        let targets: Vec<&str> = edges.iter().map(|e| r.fns[e.to].qname.as_str()).collect();
        assert!(targets.contains(&"A::go"));
        assert!(targets.contains(&"B::go"));
    }

    #[test]
    fn unknown_receiver_degrades_to_name_fallback() {
        let w = ws(vec![(
            "crates/x/src/lib.rs",
            "pub struct A; pub struct B;\n\
             impl A { pub fn go(&self) {} }\n\
             impl B { pub fn go(&self) {} }\n\
             pub fn run(x: &UnknownExtern) { x.go(); }\n",
        )]);
        let r = Resolved::build(&w);
        let run = r.by_qname["run"];
        let edges = &r.calls[run];
        assert_eq!(edges.len(), 2, "{edges:?}");
        assert!(edges.iter().all(|e| !e.typed), "{edges:?}");
    }

    #[test]
    fn local_let_and_ctor_inference() {
        let w = ws(vec![(
            "crates/x/src/lib.rs",
            "pub struct A; impl A { pub fn new() -> A { A } pub fn go(&self) {} }\n\
             pub struct B; impl B { pub fn go(&self) {} }\n\
             pub fn run() { let a = A::new(); a.go(); }\n",
        )]);
        let r = Resolved::build(&w);
        let run = r.by_qname["run"];
        let go_edges: Vec<_> =
            r.calls[run].iter().filter(|e| r.fns[e.to].name == "go").collect();
        assert_eq!(go_edges.len(), 1, "{go_edges:?}");
        assert_eq!(r.fns[go_edges[0].to].qname, "A::go");
    }

    #[test]
    fn trait_object_fans_out_to_impls() {
        let w = ws(vec![(
            "crates/x/src/lib.rs",
            "pub trait Agent { fn handle(&mut self); }\n\
             pub struct H1; impl Agent for H1 { fn handle(&mut self) {} }\n\
             pub struct H2; impl Agent for H2 { fn handle(&mut self) {} }\n\
             pub fn drive(a: &mut Box<dyn Agent>) { a.handle(); }\n",
        )]);
        let r = Resolved::build(&w);
        let drive = r.by_qname["drive"];
        let edges = &r.calls[drive];
        assert_eq!(edges.len(), 2, "{edges:?}");
        assert!(edges.iter().all(|e| e.typed));
    }

    #[test]
    fn struct_field_types_feed_receiver_inference() {
        let w = ws(vec![(
            "crates/x/src/lib.rs",
            "pub struct Inner; impl Inner { pub fn tick(&self) {} }\n\
             pub struct Outer { pub inner: Inner }\n\
             impl Outer { pub fn run(&self) { self.inner.tick(); } }\n",
        )]);
        let r = Resolved::build(&w);
        let run = r.by_qname["Outer::run"];
        assert_eq!(r.calls[run].len(), 1);
        assert!(r.calls[run][0].typed);
        assert_eq!(r.fns[r.calls[run][0].to].qname, "Inner::tick");
    }

    #[test]
    fn module_paths_qualify_free_fns() {
        let w = ws(vec![
            ("crates/x/src/wire.rs", "pub fn parse_packet() {}\n"),
            ("crates/x/src/lib.rs", "pub mod wire;\npub fn top() {}\n"),
        ]);
        let r = Resolved::build(&w);
        assert!(r.by_qname.contains_key("wire::parse_packet"), "{:?}", r.by_qname);
        assert!(r.by_qname.contains_key("top"));
    }

    #[test]
    fn shadowed_local_retypes_receiver() {
        let w = ws(vec![(
            "crates/x/src/lib.rs",
            "pub struct A; impl A { pub fn go(&self) {} }\n\
             pub struct B; impl B { pub fn go(&self) {} }\n\
             pub fn run(x: &A) { x.go(); let x = B; x.go(); }\n",
        )]);
        let r = Resolved::build(&w);
        let run = r.by_qname["run"];
        let targets: Vec<&str> =
            r.calls[run].iter().map(|e| r.fns[e.to].qname.as_str()).collect();
        assert!(targets.contains(&"A::go"), "{targets:?}");
        assert!(targets.contains(&"B::go"), "{targets:?}");
        assert!(r.calls[run].iter().all(|e| e.typed), "{:?}", r.calls[run]);
    }

    #[test]
    fn dot_output_has_nodes_and_edges() {
        let w = ws(vec![(
            "crates/x/src/lib.rs",
            "pub struct A; impl A { pub fn go(&self) { helper(); } }\npub fn helper() {}\n",
        )]);
        let r = Resolved::build(&w);
        let dot = r.to_dot(&w);
        assert!(dot.contains("digraph callgraph"));
        assert!(dot.contains("A::go"));
        assert!(dot.contains("->"));
    }
}

//! Parser coverage proof: lexer → parse → span-gap print → re-lex is a
//! token fixpoint over (a) every first-party `.rs` file in the workspace
//! and (b) a proptest-generated corpus of synthetic fn bodies.
//!
//! Two properties per file:
//!
//! 1. **Zero fallbacks.** `parse` structures every construct in the
//!    workspace — no `UnsupportedConstruct` spans. CI asserts the same via
//!    `lint-report.json`, so a new syntax gap fails loudly instead of
//!    silently weakening an analysis.
//! 2. **Token fixpoint.** Printing the AST (structural children + raw gap
//!    tokens) and re-lexing yields the original non-comment token stream
//!    byte-for-byte (modulo whitespace). This verifies recursively that
//!    every node's span tiles its parent — a span bug anywhere in the tree
//!    shifts the gap emission and breaks the stream.

use std::path::{Path, PathBuf};

use mpw_check::lint_engine::lexer::lex;
use mpw_check::lint_engine::parse::{parse, print};
use proptest::prelude::*;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            // Fixture trees are test *data* (planted violations, some with
            // deliberately odd shapes); the workspace wall covers them via
            // their own pinned tests.
            if p.file_name().is_some_and(|n| n == "lint_fixtures") {
                continue;
            }
            rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

fn check_fixpoint(name: &str, src: &str) -> Result<(), String> {
    let toks = lex(src);
    let ast = parse(src, &toks);
    if !ast.fallbacks.is_empty() {
        let mut msg = format!("{name}: {} fallback(s):", ast.fallbacks.len());
        for sp in &ast.fallbacks {
            let t = &toks[sp.lo.min(toks.len() - 1)];
            msg.push_str(&format!(
                " [line {} col {}: {:?}…]",
                t.line,
                t.col,
                &src[t.start..t.end.min(t.start + 30)]
            ));
        }
        return Err(msg);
    }
    let printed = print(src, &toks, &ast);
    let orig: Vec<&str> = toks
        .iter()
        .filter(|t| !t.is_comment())
        .map(|t| t.text(src))
        .collect();
    let re = lex(&printed);
    let new: Vec<&str> = re
        .iter()
        .filter(|t| !t.is_comment())
        .map(|t| t.text(&printed))
        .collect();
    if orig != new {
        // Locate the first diverging token for a readable failure.
        let i = orig
            .iter()
            .zip(new.iter())
            .position(|(a, b)| a != b)
            .unwrap_or(orig.len().min(new.len()));
        return Err(format!(
            "{name}: token fixpoint broken at token {i}: expected {:?} got {:?} (lens {} vs {})",
            orig.get(i),
            new.get(i),
            orig.len(),
            new.len()
        ));
    }
    Ok(())
}

#[test]
fn every_workspace_file_parses_with_zero_fallbacks_and_roundtrips() {
    let root = workspace_root();
    let mut files = Vec::new();
    rs_files(&root.join("crates"), &mut files);
    assert!(
        files.len() > 50,
        "workspace scan found only {} files — wrong root?",
        files.len()
    );
    let mut errors = Vec::new();
    for p in &files {
        let src = std::fs::read_to_string(p).expect("readable source");
        let rel = p.strip_prefix(&root).unwrap_or(p).display().to_string();
        if let Err(e) = check_fixpoint(&rel, &src) {
            errors.push(e);
        }
    }
    assert!(
        errors.is_empty(),
        "{} of {} files failed:\n{}",
        errors.len(),
        files.len(),
        errors.join("\n")
    );
}

// ---------------------------------------------------------------------------
// Property-based corpus: synthetic fn bodies built from the construct
// grammar that bit the old token-level scanners — nested closures, casts,
// ranges, method chains, struct literals, tuple indexing, let-else, match
// guards. Programs are grown deterministically from a proptest-drawn seed.
// ---------------------------------------------------------------------------

/// Tiny splitmix64 over the proptest seed; keeps the grammar a plain
/// recursive function instead of a strategy tree (the vendored
/// mini-proptest has no `prop_recursive`).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(n)) >> 64) as u64
    }

    fn expr(&mut self, depth: u32) -> String {
        if depth == 0 {
            return match self.below(6) {
                0 => format!("v{}", self.below(4)),
                1 => self.below(999).to_string(),
                2 => "self.seq".into(),
                3 => "x.0".into(),
                4 => "buf[i]".into(),
                _ => "\"s\"".into(),
            };
        }
        let d = depth - 1;
        match self.below(9) {
            0 => format!("({} + {})", self.expr(d), self.expr(d)),
            1 => format!("{}.wrapping_add({})", self.expr(d), self.expr(d)),
            2 => format!("{} as u64", self.expr(d)),
            3 => format!("({} as u32) < 7", self.expr(d)),
            4 => format!("{}..{}", self.expr(d), self.expr(d)),
            5 => format!("q.iter().map(|t| t + {}).sum::<u64>()", self.expr(d)),
            // Parenthesized: a bare struct literal is illegal in scrutinee
            // and condition positions, and stmt() may splice it anywhere.
            6 => format!("(S {{ f: {}, ..d() }})", self.expr(d)),
            7 => format!(
                "if {} > 0 {{ {} }} else {{ {} }}",
                self.expr(d),
                self.expr(d),
                self.expr(d)
            ),
            _ => format!("(|k: u64| k + {})({})", self.expr(d), self.expr(d)),
        }
    }

    fn stmt(&mut self) -> String {
        let depth = 1 + self.below(2) as u32;
        let e = self.expr(depth);
        match self.below(6) {
            0 => format!("let a = {e};"),
            1 => format!("let Some(w) = o.get({e} as usize) else {{ return; }};"),
            2 => format!("match {e} {{ 0 => {{}}, n if n > 2 => {{ h(n); }}, _ => {{}} }}"),
            3 => format!("for i in 0..3 {{ acc += i + {e}; }}"),
            4 => format!("while c < 9 {{ c += 1; g({e}); }}"),
            _ => format!("let cl = move |k: u64| k + {e};"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn synthetic_fn_bodies_roundtrip(seed in 1u64..u64::MAX, n_stmts in 1usize..6) {
        let mut gen = Gen(seed);
        let stmts: Vec<String> = (0..n_stmts).map(|_| gen.stmt()).collect();
        let src = format!(
            "struct S {{ f: u64 }}\nfn f(o: &[u64], q: &[u64]) {{\n    {}\n}}\n",
            stmts.join("\n    ")
        );
        if let Err(e) = check_fixpoint("synthetic", &src) {
            // Show the generated program on failure.
            panic!("{e}\n--- source ---\n{src}");
        }
    }
}

//! End-to-end tests of the model checker.
//!
//! Debug builds replay ~10× slower than release, so the clean-exploration
//! test here uses reduced bounds; the CI `check` job runs the release
//! binary at default depth with `--min-states 10000` for the full-scale
//! acceptance criterion. The lint walls (including the determinism wall
//! once housed here) are exercised end to end by `tests/lint_fixtures.rs`.

use mpw_check::explore::{explore, format_trace, CheckConfig, Inject};
use mpw_mptcp::conn::SynMode;

#[test]
fn bounded_exploration_finds_no_violations() {
    let cfg = CheckConfig { depth: 7, ..CheckConfig::default() };
    let res = explore(&cfg);
    assert!(
        res.violation.is_none(),
        "unexpected violation: {:?}",
        res.violation
    );
    assert!(res.states > 1_000, "only {} states explored", res.states);
    assert!(!res.truncated);
}

#[test]
fn simultaneous_syn_exploration_finds_no_violations() {
    // The paper's modified handshake: the MP_JOIN SYN races the MP_CAPABLE
    // one, so the server-side held-join path is inside the explored space.
    let cfg = CheckConfig {
        depth: 5,
        syn_mode: SynMode::Simultaneous,
        ..CheckConfig::default()
    };
    let res = explore(&cfg);
    assert!(
        res.violation.is_none(),
        "unexpected violation: {:?}",
        res.violation
    );
    assert!(res.states > 200, "only {} states explored", res.states);
}

#[test]
fn planted_overlapping_dss_bug_is_caught_with_replayable_trace() {
    let cfg = CheckConfig {
        depth: 6,
        inject: Some(Inject::OverlappingDss),
        ..CheckConfig::default()
    };
    let res = explore(&cfg);
    let v = res.violation.expect("planted DSS corruption must be caught");
    assert!(
        v.message.contains("integrity") || v.message.contains("delivery"),
        "caught by an unexpected oracle: {}",
        v.message
    );
    assert!(
        v.path.len() <= 6,
        "shrinking left {} actions: {:?}",
        v.path.len(),
        v.path
    );
    // The counterexample replays: rendering it hits the violation again and
    // shows the corrupted mapping on the wire.
    let trace = format_trace(&cfg, &v.path);
    assert!(trace.contains("VIOLATION"), "replay did not reproduce:\n{trace}");
    assert!(trace.contains("dseq 199"), "overlapping mapping not visible:\n{trace}");
}

#[test]
fn planted_unclamped_cc_bug_is_caught_by_the_increase_oracle() {
    // In-order schedules only: the bug needs congestion avoidance, i.e. a
    // longer path, and the narrowed space keeps this fast in debug builds.
    let cfg = CheckConfig {
        depth: 12,
        max_drops: 0,
        max_dups: 0,
        reorder: 1,
        inject: Some(Inject::UnclampedCc),
        ..CheckConfig::default()
    };
    let res = explore(&cfg);
    let v = res.violation.expect("unclamped coupled-CC increase must be caught");
    assert!(
        v.message.contains("exceeds New Reno bound"),
        "caught by an unexpected oracle: {}",
        v.message
    );
    let trace = format_trace(&cfg, &v.path);
    assert!(trace.contains("VIOLATION"), "replay did not reproduce:\n{trace}");
}

//! End-to-end proof that every lint wall fires and every opt-out works.
//!
//! `tests/lint_fixtures/` holds a miniature workspace with exactly one
//! planted violation per rule — including the three constructs the old
//! line-based scanners got wrong (tokens inside strings/comments, one
//! marker suppressing a whole line, multi-line constructs) — and this
//! suite pins the engine's behavior on it. The last test then runs the
//! real workspace config against the real repo and asserts the walls are
//! green and within `LINT_budgets.json`.

use std::path::{Path, PathBuf};

use mpw_check::lint_engine::{self, report::Report, Config, Workspace};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures")
}

fn fixture_cfg() -> Config {
    let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
    Config {
        determinism_paths: s(&["crates/proto"]),
        parser_modules: s(&["crates/proto/src/wire.rs"]),
        alloc_modules: s(&["crates/proto/src/alloc_path.rs"]),
        seq_paths: s(&["crates/proto/src"]),
        seq_audited: s(&["crates/proto/src/seq.rs"]),
        reach_paths: s(&["crates/proto/src"]),
        entry_files: s(&["crates/proto/src/engine.rs"]),
        entry_prefixes: s(&["on_"]),
        unsafe_wall: true,
    }
}

fn run_fixtures() -> Report {
    let ws = Workspace::load(&fixture_root()).expect("fixture tree loads");
    lint_engine::run(&ws, &fixture_cfg()).expect("engine runs")
}

fn count(rep: &Report, rule: &str) -> usize {
    rep.findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn every_wall_fires_on_its_planted_violation() {
    let rep = run_fixtures();
    let by_rule: Vec<String> = rep.findings.iter().map(|f| f.to_string()).collect();
    assert_eq!(count(&rep, "panic"), 4, "{by_rule:#?}");
    assert_eq!(count(&rep, "determinism"), 2, "{by_rule:#?}");
    assert_eq!(count(&rep, "seq-arith"), 2, "{by_rule:#?}");
    assert_eq!(count(&rep, "alloc"), 2, "{by_rule:#?}");
    assert_eq!(count(&rep, "unsafe"), 2, "{by_rule:#?}");
    assert_eq!(count(&rep, "marker"), 3, "{by_rule:#?}");
    assert_eq!(rep.findings.len(), 15, "{by_rule:#?}");
}

#[test]
fn marker_suppresses_exactly_one_token() {
    let rep = run_fixtures();
    // wire.rs line 8 has two unwraps and one standalone marker above: one
    // finding must survive.
    let on_pair_line: Vec<_> = rep
        .findings
        .iter()
        .filter(|f| f.file == "crates/proto/src/wire.rs" && f.line == 8)
        .collect();
    assert_eq!(on_pair_line.len(), 1, "{on_pair_line:?}");
    // state.rs line 16 has two HashMap tokens and one trailing marker:
    // one finding must survive.
    let on_map_line: Vec<_> = rep
        .findings
        .iter()
        .filter(|f| f.file == "crates/proto/src/state.rs" && f.line == 16)
        .collect();
    assert_eq!(on_map_line.len(), 1, "{on_map_line:?}");
    // Both markers were consumed (not stale) and carry their reasons.
    assert_eq!(rep.allow_counts.get("panic"), Some(&1));
    assert_eq!(rep.allow_counts.get("determinism"), Some(&1));
    assert!(rep
        .allows
        .iter()
        .all(|(_, a)| a.used && a.reason.starts_with("fixture:")));
}

#[test]
fn panic_reachability_renders_the_two_hop_path() {
    let rep = run_fixtures();
    let f = rep
        .findings
        .iter()
        .find(|f| f.file == "crates/proto/src/engine.rs")
        .expect("two-hop panic found");
    assert_eq!(f.line, 12);
    assert!(
        f.message.contains("on_frame → relay → sink"),
        "path not rendered: {}",
        f.message
    );
}

#[test]
fn multi_line_constructs_are_caught() {
    // Regression vs the old line-based scanners, which matched substrings
    // within single lines and missed all three of these.
    let rep = run_fixtures();
    assert!(
        rep.findings
            .iter()
            .any(|f| f.file == "crates/proto/src/flow.rs"
                && f.line == 5
                && f.message.contains("raw `+`")),
        "multi-line seq expression missed"
    );
    assert!(
        rep.findings
            .iter()
            .any(|f| f.file == "crates/proto/src/alloc_path.rs"
                && f.line == 4
                && f.message.contains("Vec<TcpOption>")),
        "multi-line Vec<TcpOption> missed"
    );
    assert!(
        rep.findings
            .iter()
            .any(|f| f.file == "crates/proto/src/state.rs"
                && f.line == 10
                && f.message.contains("Instant::now")),
        "line-split Instant::now missed"
    );
}

#[test]
fn strings_and_comments_never_fire() {
    // Regression vs the old scanners' `contains()` false positives: the
    // fixture mentions HashMap in a doc comment (state.rs line 2) and in a
    // string literal (line 5); neither may produce a finding.
    let rep = run_fixtures();
    assert!(
        !rep.findings
            .iter()
            .any(|f| f.file == "crates/proto/src/state.rs" && (f.line == 2 || f.line == 5)),
        "comment/string token flagged"
    );
    // And `unsafe` inside danger/src/lib.rs's doc comment (line 2) must
    // not be flagged — only the real token on line 5 and the missing
    // forbid attribute.
    let danger: Vec<_> = rep
        .findings
        .iter()
        .filter(|f| f.file == "crates/danger/src/lib.rs")
        .collect();
    assert_eq!(danger.len(), 2, "{danger:?}");
    assert!(danger.iter().any(|f| f.line == 5));
    assert!(danger.iter().any(|f| f.line == 1 && f.message.contains("forbid")));
}

#[test]
fn stale_unknown_and_reasonless_markers_are_findings() {
    let rep = run_fixtures();
    let markers: Vec<_> = rep
        .findings
        .iter()
        .filter(|f| f.rule == "marker")
        .collect();
    assert!(
        markers.iter().any(|f| f.message.contains("stale")),
        "{markers:?}"
    );
    assert!(
        markers.iter().any(|f| f.message.contains("names no rule")),
        "{markers:?}"
    );
    assert!(
        markers
            .iter()
            .any(|f| f.message.contains("without a (reason)")),
        "{markers:?}"
    );
}

#[test]
fn audited_seq_module_is_exempt() {
    let rep = run_fixtures();
    assert!(
        !rep.findings
            .iter()
            .any(|f| f.file == "crates/proto/src/seq.rs"),
        "audited module must be exempt from the seq-arith wall"
    );
}

#[test]
fn gate_fails_on_findings_and_json_carries_them() {
    let rep = run_fixtures();
    let (violations, _) = rep.gate("{\"allow/panic\": 1, \"allow/determinism\": 1}");
    assert!(
        violations.iter().any(|v| v.contains("unallowed finding")),
        "{violations:?}"
    );
    let json = rep.json();
    for rule in ["panic", "determinism", "seq-arith", "alloc", "unsafe", "marker"] {
        assert!(json.contains(&format!("\"rule\": \"{rule}\"")), "{rule} missing from JSON");
    }
    assert!(json.contains("fixture: suppresses exactly the first unwrap"));
}

#[test]
fn real_workspace_is_clean_and_within_budgets() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).expect("workspace loads");
    let cfg = Config::default_workspace();
    let mut rep = lint_engine::run(&ws, &cfg).expect("engine runs");
    rep.inventory_vendor(&root).expect("vendor inventory");
    assert!(
        rep.findings.is_empty(),
        "lint findings in the real workspace:\n{}",
        rep.findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    let budgets = std::fs::read_to_string(root.join("LINT_budgets.json")).expect("budgets file");
    let (violations, _) = rep.gate(&budgets);
    assert!(violations.is_empty(), "{violations:?}");
    // Every vendored crate is inventoried even though it is exempt.
    assert!(!rep.vendor_unsafe.is_empty());
}

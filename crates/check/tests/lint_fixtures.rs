//! End-to-end proof that every lint wall fires and every opt-out works.
//!
//! `tests/lint_fixtures/` holds a miniature workspace with planted
//! violations per rule — including the three constructs the old
//! line-based scanners got wrong (tokens inside strings/comments, one
//! marker suppressing a whole line, multi-line constructs) and the three
//! constructs the v1 token scanners got wrong (same-named methods
//! conflated in the call graph, taint hidden behind a renamed local, an
//! early return that skips the invariant oracle) — and this suite pins
//! the engine's behavior on it. The last test then runs the real
//! workspace config against the real repo and asserts the walls are
//! green and within `LINT_budgets.json`.

use std::path::{Path, PathBuf};

use mpw_check::lint_engine::{self, report::Report, resolve::Resolved, rules, Config, Workspace};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures")
}

fn fixture_cfg() -> Config {
    let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
    Config {
        determinism_paths: s(&["crates/proto"]),
        parser_modules: s(&["crates/proto/src/wire.rs"]),
        alloc_modules: s(&["crates/proto/src/alloc_path.rs"]),
        seq_paths: s(&["crates/proto/src"]),
        seq_audited: s(&["crates/proto/src/seq.rs"]),
        reach_paths: s(&["crates/proto/src"]),
        entry_files: s(&["crates/proto/src/engine.rs"]),
        entry_prefixes: s(&["on_"]),
        parse_entry_prefixes: s(&["parse", "read", "decode"]),
        unsafe_wall: true,
    }
}

fn fixture_ws() -> Workspace {
    Workspace::load(&fixture_root()).expect("fixture tree loads")
}

fn run_fixtures() -> Report {
    lint_engine::run(&fixture_ws(), &fixture_cfg()).expect("engine runs")
}

fn count(rep: &Report, rule: &str) -> usize {
    rep.findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn every_wall_fires_on_its_planted_violation() {
    let rep = run_fixtures();
    let by_rule: Vec<String> = rep.findings.iter().map(|f| f.to_string()).collect();
    assert_eq!(count(&rep, "panic"), 4, "{by_rule:#?}");
    assert_eq!(count(&rep, "determinism"), 2, "{by_rule:#?}");
    assert_eq!(count(&rep, "seq-arith"), 2, "{by_rule:#?}");
    assert_eq!(count(&rep, "handler-oracle"), 1, "{by_rule:#?}");
    assert_eq!(count(&rep, "alloc"), 2, "{by_rule:#?}");
    assert_eq!(count(&rep, "unsafe"), 2, "{by_rule:#?}");
    assert_eq!(count(&rep, "marker"), 3, "{by_rule:#?}");
    assert_eq!(rep.findings.len(), 16, "{by_rule:#?}");
    // The hand-rolled parser understood every fixture construct.
    assert_eq!(rep.parse_fallbacks, 0);
}

#[test]
fn marker_suppresses_exactly_one_token() {
    let rep = run_fixtures();
    // wire.rs line 8 has two unwraps and one standalone marker above: one
    // finding must survive.
    let on_pair_line: Vec<_> = rep
        .findings
        .iter()
        .filter(|f| f.file == "crates/proto/src/wire.rs" && f.line == 8)
        .collect();
    assert_eq!(on_pair_line.len(), 1, "{on_pair_line:?}");
    // state.rs line 16 has two HashMap tokens and one trailing marker:
    // one finding must survive.
    let on_map_line: Vec<_> = rep
        .findings
        .iter()
        .filter(|f| f.file == "crates/proto/src/state.rs" && f.line == 16)
        .collect();
    assert_eq!(on_map_line.len(), 1, "{on_map_line:?}");
    // All markers were consumed (not stale) and carry their reasons.
    assert_eq!(rep.allow_counts.get("panic"), Some(&2));
    assert_eq!(rep.allow_counts.get("determinism"), Some(&1));
    assert_eq!(rep.allow_counts.get("seq-arith"), Some(&1));
    assert_eq!(rep.allow_counts.get("handler-oracle"), Some(&1));
    assert!(rep
        .allows
        .iter()
        .all(|(_, a)| a.used && a.reason.starts_with("fixture:")));
}

#[test]
fn panic_reachability_renders_the_two_hop_path() {
    let rep = run_fixtures();
    let f = rep
        .findings
        .iter()
        .find(|f| f.rule == "panic" && f.file == "crates/proto/src/engine.rs")
        .expect("two-hop panic found");
    assert!(
        f.message
            .contains("engine::on_frame → engine::relay → engine::sink"),
        "path not rendered: {}",
        f.message
    );
}

#[test]
fn conflated_methods_stay_separate_in_v2() {
    // Two `commit` methods, both unwrapping; the handler chain reaches
    // only `Hot::commit` through a typed receiver. v1's name-keyed graph
    // flags both bodies; v2 flags exactly the live one.
    let ws = fixture_ws();
    let cfg = fixture_cfg();
    let hot_line = fixture_line("crates/proto/src/conflated.rs", "*v.first().unwrap()");
    let cold_line = fixture_line("crates/proto/src/conflated.rs", "*v.last().unwrap()");

    let v1 = rules::panic_reachability(&ws, &cfg);
    let at = |fs: &[lint_engine::Finding], line: u32| {
        fs.iter()
            .filter(|f| f.file == "crates/proto/src/conflated.rs" && f.line == line)
            .count()
    };
    assert_eq!(at(&v1, hot_line), 1, "v1 must flag the live method");
    assert_eq!(at(&v1, cold_line), 1, "v1 conflates: the dead method too");

    let r = Resolved::build(&ws);
    let v2 = rules::panic_v2(&ws, &cfg, &r);
    assert_eq!(at(&v2, hot_line), 1, "v2 must keep the live method");
    assert_eq!(at(&v2, cold_line), 0, "v2 must not conflate the dead one");
}

#[test]
fn v2_panic_findings_are_a_subset_of_v1() {
    // The typed call graph only ever *removes* name-conflated paths; on
    // any corpus every v2 panic site must also be a v1 panic site.
    let ws = fixture_ws();
    let cfg = fixture_cfg();
    let mut v1: Vec<(String, u32, u32)> = rules::panic_surface(&ws, &cfg)
        .into_iter()
        .chain(rules::panic_reachability(&ws, &cfg))
        .map(|f| (f.file, f.line, f.col))
        .collect();
    v1.sort();
    let r = Resolved::build(&ws);
    let v2 = rules::panic_v2(&ws, &cfg, &r);
    for f in &v2 {
        assert!(
            v1.binary_search(&(f.file.clone(), f.line, f.col)).is_ok(),
            "v2 finding absent from v1: {f}"
        );
    }
    assert!(v2.len() < v1.len(), "v2 must prune at least the conflated site");
}

#[test]
fn taint_flows_through_a_renamed_local() {
    // `h.seq` → `cursor` → `cursor + 1`: no contract name adjacent to the
    // operator, so only dataflow can catch it. Exactly one finding,
    // suppressed by exactly one allow.
    let ws = fixture_ws();
    let cfg = fixture_cfg();
    let arith_line = fixture_line("crates/proto/src/taint.rs", "cursor + 1");
    let raw = lint_engine::raw_findings(&ws, &cfg);
    let planted: Vec<_> = raw
        .iter()
        .filter(|f| f.file == "crates/proto/src/taint.rs")
        .collect();
    assert_eq!(planted.len(), 1, "{planted:?}");
    assert_eq!(planted[0].rule, "seq-arith");
    assert_eq!(planted[0].line, arith_line);
    // And the checked-in allow suppresses it.
    let rep = run_fixtures();
    assert!(!rep.findings.iter().any(|f| f.file == "crates/proto/src/taint.rs"));
    assert_eq!(
        rep.allows
            .iter()
            .filter(|(file, a)| file == "crates/proto/src/taint.rs" && a.rule == "seq-arith")
            .count(),
        1
    );
}

#[test]
fn early_return_skipping_the_oracle_is_one_finding() {
    let ws = fixture_ws();
    let cfg = fixture_cfg();
    let return_line = fixture_line("crates/proto/src/engine.rs", "return;");
    let raw = lint_engine::raw_findings(&ws, &cfg);
    let on_tick: Vec<_> = raw
        .iter()
        .filter(|f| f.rule == "handler-oracle" && f.message.contains("on_tick`"))
        .collect();
    assert_eq!(on_tick.len(), 1, "{on_tick:?}");
    assert_eq!(on_tick[0].line, return_line);
    assert!(on_tick[0].message.contains("returns early"));
    // Suppressed by its one allow; `on_frame`'s fall-off-the-end finding
    // (no allow) is the wall's planted unallowed violation.
    let rep = run_fixtures();
    let survivors: Vec<_> = rep
        .findings
        .iter()
        .filter(|f| f.rule == "handler-oracle")
        .collect();
    assert_eq!(survivors.len(), 1, "{survivors:?}");
    assert!(survivors[0].message.contains("on_frame`"), "{survivors:?}");
}

#[test]
fn multi_line_constructs_are_caught() {
    // Regression vs the old line-based scanners, which matched substrings
    // within single lines and missed all three of these. (The seq finding
    // sits on the operator's line — line 6, where the `+` landed after
    // the line break.)
    let rep = run_fixtures();
    assert!(
        rep.findings
            .iter()
            .any(|f| f.file == "crates/proto/src/flow.rs"
                && f.line == 6
                && f.message.contains("raw `+`")),
        "multi-line seq expression missed"
    );
    assert!(
        rep.findings
            .iter()
            .any(|f| f.file == "crates/proto/src/alloc_path.rs"
                && f.line == 4
                && f.message.contains("Vec<TcpOption>")),
        "multi-line Vec<TcpOption> missed"
    );
    assert!(
        rep.findings
            .iter()
            .any(|f| f.file == "crates/proto/src/state.rs"
                && f.line == 10
                && f.message.contains("Instant::now")),
        "line-split Instant::now missed"
    );
}

#[test]
fn strings_and_comments_never_fire() {
    // Regression vs the old scanners' `contains()` false positives: the
    // fixture mentions HashMap in a doc comment (state.rs line 2) and in a
    // string literal (line 5); neither may produce a finding.
    let rep = run_fixtures();
    assert!(
        !rep.findings
            .iter()
            .any(|f| f.file == "crates/proto/src/state.rs" && (f.line == 2 || f.line == 5)),
        "comment/string token flagged"
    );
    // And `unsafe` inside danger/src/lib.rs's doc comment (line 2) must
    // not be flagged — only the real token on line 5 and the missing
    // forbid attribute.
    let danger: Vec<_> = rep
        .findings
        .iter()
        .filter(|f| f.file == "crates/danger/src/lib.rs")
        .collect();
    assert_eq!(danger.len(), 2, "{danger:?}");
    assert!(danger.iter().any(|f| f.line == 5));
    assert!(danger.iter().any(|f| f.line == 1 && f.message.contains("forbid")));
}

#[test]
fn stale_unknown_and_reasonless_markers_are_findings() {
    let rep = run_fixtures();
    let markers: Vec<_> = rep
        .findings
        .iter()
        .filter(|f| f.rule == "marker")
        .collect();
    assert!(
        markers.iter().any(|f| f.message.contains("stale")),
        "{markers:?}"
    );
    assert!(
        markers.iter().any(|f| f.message.contains("names no rule")),
        "{markers:?}"
    );
    assert!(
        markers
            .iter()
            .any(|f| f.message.contains("without a (reason)")),
        "{markers:?}"
    );
}

#[test]
fn audited_seq_module_is_exempt() {
    let rep = run_fixtures();
    assert!(
        !rep.findings
            .iter()
            .any(|f| f.file == "crates/proto/src/seq.rs"),
        "audited module must be exempt from the seq-arith wall"
    );
}

#[test]
fn gate_fails_on_findings_and_json_carries_them() {
    let rep = run_fixtures();
    let (violations, _) = rep.gate("{\"allow/panic\": 1, \"allow/determinism\": 1}");
    assert!(
        violations.iter().any(|v| v.contains("unallowed finding")),
        "{violations:?}"
    );
    let json = rep.json();
    for rule in [
        "panic",
        "determinism",
        "seq-arith",
        "handler-oracle",
        "alloc",
        "unsafe",
        "marker",
    ] {
        assert!(json.contains(&format!("\"rule\": \"{rule}\"")), "{rule} missing from JSON");
    }
    assert!(json.contains("fixture: suppresses exactly the first unwrap"));
    assert!(json.contains("\"parse_fallbacks\": 0"));
}

#[test]
fn real_workspace_is_clean_and_within_budgets() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).expect("workspace loads");
    let cfg = Config::default_workspace();
    let mut rep = lint_engine::run(&ws, &cfg).expect("engine runs");
    rep.inventory_vendor(&root).expect("vendor inventory");
    assert!(
        rep.findings.is_empty(),
        "lint findings in the real workspace:\n{}",
        rep.findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Every construct in the real tree must parse: a fallback is code the
    // v2 analyses silently cannot see into.
    assert_eq!(rep.parse_fallbacks, 0, "parse fallbacks in the real workspace");
    let budgets = std::fs::read_to_string(root.join("LINT_budgets.json")).expect("budgets file");
    let (violations, _) = rep.gate(&budgets);
    assert!(violations.is_empty(), "{violations:?}");
    // Every vendored crate is inventoried even though it is exempt.
    assert!(!rep.vendor_unsafe.is_empty());
}

/// 1-based line of the first occurrence of `needle` in a fixture file —
/// keeps the tests pinned to constructs, not hard-coded line numbers.
fn fixture_line(rel: &str, needle: &str) -> u32 {
    let src = std::fs::read_to_string(fixture_root().join(rel)).expect("fixture file");
    for (i, l) in src.lines().enumerate() {
        if l.contains(needle) {
            return (i + 1) as u32;
        }
    }
    panic!("{needle:?} not found in {rel}");
}

//! Fixture crate that skipped the audit: no forbid attribute, one raw
//! `unsafe` token. (That backticked mention is a comment — never a finding.)

pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}

//! Planted parser-surface violations: the strict wall forbids panicking
//! macros, `unwrap`/`expect`, and expression indexing in this file.

pub fn parse_header(b: &[u8]) -> u8 {
    let first = b.first().unwrap();
    let second = b[1];
    // lint: allow-panic(fixture: suppresses exactly the first unwrap on the next line)
    let pair = (b.first().unwrap(), b.last().unwrap());
    *first + second + *pair.0 + *pair.1
}

//! Planted determinism violations plus the old scanner's blind spots:
//! a HashMap in prose (this very line!) and one in a string must not fire.

pub fn lookup() -> &'static str {
    let label = "HashMap in a string";
    label
}

pub fn stamp() {
    let t = Instant::
        now();
    let _ = t;
}

pub fn table() {
    let m: HashMap<u32, u32> = HashMap::new(); // lint: allow-determinism(fixture: suppresses exactly one of the two tokens)
    let _ = m;
}

//! The audited wraparound module: raw seq math is legal here (and only
//! here), mirroring the real `crates/tcp/src/seq.rs`.

pub fn add_seq(seq: u32, n: u32) -> u32 {
    seq.wrapping_add(n)
}

//! Planted panic reachable from an event handler through two call hops.

pub fn on_frame(data: &[u8]) {
    relay(data);
}

fn relay(data: &[u8]) {
    sink(data);
}

fn sink(data: &[u8]) {
    let _ = data.first().unwrap();
}

//! Planted panic reachable from an event handler through two call hops,
//! plus the handler-oracle fixtures: `on_frame` falls off the end without
//! the invariant oracle (unallowed), and `on_tick` skips it on one early
//! return (suppressed by exactly one allow).

pub fn on_frame(data: &[u8]) {
    relay(data);
}

fn relay(data: &[u8]) {
    sink(data);
    let hot = crate::conflated::Hot;
    let _ = crate::conflated::drive(&hot, data);
}

fn sink(data: &[u8]) {
    let _ = data.first().unwrap();
}

pub fn on_tick(n: u32) {
    if n == 0 {
        // lint: allow-handler-oracle(fixture: the early return that skips the oracle)
        return;
    }
    relay(&[1]);
    debug_check();
}

fn debug_check() {}

//! Planted taint-through-local violation: the sequence number leaves its
//! contract-named field, travels through an innocently named local, and
//! only then hits raw arithmetic. The v1 scanner keyed on the *names*
//! adjacent to the operator and missed this; v2's dataflow carries the
//! taint through the rename.

pub struct Hdr {
    pub seq: u32,
}

pub fn advance_cursor(h: &Hdr) -> u32 {
    let cursor = h.seq;
    // lint: allow-seq-arith(fixture: taint flows through the renamed local)
    let next = cursor + 1;
    next
}

//! Planted marker problems: stale, unknown rule, and reason-less.

pub fn clean() -> u32 {
    // lint: allow-panic(fixture: nothing below panics, so this is stale)
    let x = 1;
    // lint: allow-typos(fixture: unknown rule name)
    let y = 2;
    x + y // lint: allow-panic
}

//! Planted allocation violations, including a generic split across lines.

pub struct Opts {
    pub values: Vec<
        TcpOption,
    >,
}

pub fn copy(d: &[u8]) -> Vec<u8> {
    d.to_vec()
}

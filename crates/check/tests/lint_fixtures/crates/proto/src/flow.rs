//! Planted seq-arith violations, including a multi-line expression the
//! old line-based scanners could not see.

pub fn advance(snd_seq: u32, delta: u32) -> u32 {
    let next = snd_seq
        + delta;
    next
}

pub fn truncate(dseq: u64) -> u32 {
    dseq as u32
}

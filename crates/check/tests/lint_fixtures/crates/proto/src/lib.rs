//! Fixture crate with one planted violation per lint wall. Never
//! compiled — the engine lexes it from disk in `tests/lint_fixtures.rs`.

#![forbid(unsafe_code)]

pub mod alloc_path;
pub mod conflated;
pub mod engine;
pub mod flow;
pub mod markers;
pub mod seq;
pub mod state;
pub mod taint;
pub mod wire;

//! Conflation regression: two `commit` methods share a bare name and both
//! unwrap, but the handler chain only ever reaches `Hot::commit`, through
//! a typed receiver. v1's name-keyed call graph flagged both bodies;
//! v2's typed edges keep `Cold::commit` out of the blast radius. The
//! differential test in `lint_fixtures.rs` pins exactly this.

pub struct Hot;
pub struct Cold;

impl Hot {
    pub fn commit(&self, v: &[u8]) -> u8 {
        // lint: allow-panic(fixture: the single conflation finding v2 keeps)
        *v.first().unwrap()
    }
}

impl Cold {
    pub fn commit(&self, v: &[u8]) -> u8 {
        *v.last().unwrap()
    }
}

/// Called from `engine::relay`; the parameter type makes the method call
/// below a typed edge to `Hot::commit` and nothing else.
pub fn drive(h: &Hot, v: &[u8]) -> u8 {
    h.commit(v)
}

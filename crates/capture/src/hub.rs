//! The capture hub: a [`FrameObserver`] that accumulates tapped frames and
//! serializes them to pcapng.
//!
//! One hub typically serves many tap points (four per path: both link
//! directions seen from both ends), each registered as its own capture
//! interface. Interface names follow the structured scheme
//! `path<N>:<up|down>@<client|server>` parsed by [`IfaceRole`]; the analyzer
//! recovers the topology purely from those names, keeping the pcapng file
//! the single source of truth.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use mpw_sim::tap::{FrameObserver, TapDir};
use mpw_sim::trace::DropReason;
use mpw_sim::SimTime;

use crate::pcapng::PcapWriter;

/// Which end of a path a capture interface observes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Vantage {
    /// Sniffer on the client (mobile) host.
    Client,
    /// Sniffer on the server host.
    Server,
}

/// Which link direction a capture interface observes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkDir {
    /// Client → server (uplink: requests, ACKs).
    Up,
    /// Server → client (downlink: data).
    Down,
}

/// Structured identity of a capture interface, encoded in its `if_name`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IfaceRole {
    /// Path index (0 = WiFi, 1 = cellular in the paper's testbed).
    pub path: u8,
    /// Observed link direction.
    pub dir: LinkDir,
    /// Which end the sniffer sits at.
    pub vantage: Vantage,
}

impl IfaceRole {
    /// Render the canonical interface name, e.g. `path0:down@client`.
    pub fn name(&self) -> String {
        let dir = match self.dir {
            LinkDir::Up => "up",
            LinkDir::Down => "down",
        };
        let v = match self.vantage {
            Vantage::Client => "client",
            Vantage::Server => "server",
        };
        format!("path{}:{}@{}", self.path, dir, v)
    }

    /// Parse a canonical interface name back into its role. The dedicated
    /// drops interface (or any foreign name) yields `None`.
    pub fn parse(name: &str) -> Option<IfaceRole> {
        let rest = name.strip_prefix("path")?;
        let (path, rest) = rest.split_once(':')?;
        let (dir, vantage) = rest.split_once('@')?;
        Some(IfaceRole {
            path: path.parse().ok()?,
            dir: match dir {
                "up" => LinkDir::Up,
                "down" => LinkDir::Down,
                _ => return None,
            },
            vantage: match vantage {
                "client" => Vantage::Client,
                "server" => Vantage::Server,
                _ => return None,
            },
        })
    }
}

/// Name of the dedicated interface drop records are written to.
pub const DROPS_IFACE: &str = "drops";

/// What one captured record is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// A frame observed crossing a tap point.
    Frame(TapDir),
    /// A frame the link discarded.
    Dropped(DropReason),
}

/// One in-memory capture record.
#[derive(Clone, Debug)]
pub struct CapturedRecord {
    /// Observation time (arrival time for egress taps).
    pub at: SimTime,
    /// Capture-interface id (index into the hub's interface table).
    pub iface: u32,
    /// Frame or drop.
    pub kind: RecordKind,
    /// The raw wire bytes.
    pub bytes: Bytes,
}

/// Accumulates tap observations and serializes them to pcapng.
#[derive(Debug, Default)]
pub struct CaptureHub {
    ifaces: Vec<String>,
    records: Vec<CapturedRecord>,
}

/// Shared, clonable handle to a [`CaptureHub`] — hand clones to every
/// `mpw_link::LinkTap` attachment point.
pub type SharedHub = Rc<RefCell<CaptureHub>>;

impl CaptureHub {
    /// New empty hub.
    pub fn new() -> Self {
        CaptureHub::default()
    }

    /// A hub wrapped for sharing across tap points.
    pub fn shared() -> SharedHub {
        Rc::new(RefCell::new(CaptureHub::new()))
    }

    /// Register a capture interface; returns its id.
    pub fn add_iface(&mut self, name: &str) -> u32 {
        self.ifaces.push(name.to_owned());
        (self.ifaces.len() - 1) as u32
    }

    /// Register the four standard vantages for one path (uplink and
    /// downlink, each seen at both the client and the server). Returns the
    /// ids in the order `(up@client, up@server, down@server, down@client)`.
    pub fn add_path(&mut self, path: u8) -> (u32, u32, u32, u32) {
        let mk = |dir, vantage| IfaceRole { path, dir, vantage }.name();
        (
            self.add_iface(&mk(LinkDir::Up, Vantage::Client)),
            self.add_iface(&mk(LinkDir::Up, Vantage::Server)),
            self.add_iface(&mk(LinkDir::Down, Vantage::Server)),
            self.add_iface(&mk(LinkDir::Down, Vantage::Client)),
        )
    }

    /// Registered interface names, in id order.
    pub fn ifaces(&self) -> &[String] {
        &self.ifaces
    }

    /// All records, in observation order.
    pub fn records(&self) -> &[CapturedRecord] {
        &self.records
    }

    /// Serialize to pcapng. Records are stably sorted by timestamp: each
    /// tap's observations are monotone, but egress taps stamp future
    /// arrival times, so cross-interface interleavings need the sort. Drop
    /// records go to a dedicated `drops` interface with an `opt_comment`
    /// naming the reason and the original interface.
    pub fn to_pcapng(&self) -> Vec<u8> {
        let mut w = PcapWriter::new();
        for name in &self.ifaces {
            w.add_interface(name);
        }
        let has_drops = self
            .records
            .iter()
            .any(|r| matches!(r.kind, RecordKind::Dropped(_)));
        let drops_iface = if has_drops { Some(w.add_interface(DROPS_IFACE)) } else { None };
        let mut order: Vec<usize> = (0..self.records.len()).collect();
        order.sort_by_key(|&i| self.records[i].at);
        for i in order {
            let r = &self.records[i];
            match r.kind {
                RecordKind::Frame(_) => w.packet(r.iface, r.at, &r.bytes, None),
                RecordKind::Dropped(reason) => {
                    let orig = self
                        .ifaces
                        .get(r.iface as usize)
                        .map(String::as_str)
                        .unwrap_or("?");
                    let comment = format!("dropped: {reason:?} on {orig}");
                    w.packet(drops_iface.expect("drops iface"), r.at, &r.bytes, Some(&comment));
                }
            }
        }
        w.into_bytes()
    }
}

impl FrameObserver for CaptureHub {
    fn frame(&mut self, at: SimTime, iface: u32, dir: TapDir, bytes: &Bytes) {
        self.records.push(CapturedRecord {
            at,
            iface,
            kind: RecordKind::Frame(dir),
            bytes: bytes.clone(),
        });
    }

    fn dropped(&mut self, at: SimTime, iface: u32, reason: DropReason, bytes: &Bytes) {
        self.records.push(CapturedRecord {
            at,
            iface,
            kind: RecordKind::Dropped(reason),
            bytes: bytes.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcapng::read_pcapng;

    #[test]
    fn iface_role_roundtrips_through_names() {
        for path in [0u8, 1, 3] {
            for dir in [LinkDir::Up, LinkDir::Down] {
                for vantage in [Vantage::Client, Vantage::Server] {
                    let role = IfaceRole { path, dir, vantage };
                    assert_eq!(IfaceRole::parse(&role.name()), Some(role));
                }
            }
        }
        assert_eq!(IfaceRole::parse(DROPS_IFACE), None);
        assert_eq!(IfaceRole::parse("path0:sideways@client"), None);
        assert_eq!(IfaceRole::parse("pathX:up@client"), None);
    }

    #[test]
    fn records_serialize_sorted_with_drop_comments() {
        let mut hub = CaptureHub::new();
        let (_uc, _us, sd, cd) = hub.add_path(0);
        // Egress tap stamps a *future* arrival: recorded out of order.
        hub.frame(SimTime::from_millis(20), cd, TapDir::Egress, &Bytes::from_static(b"late"));
        hub.frame(SimTime::from_millis(10), sd, TapDir::Ingress, &Bytes::from_static(b"early"));
        hub.dropped(
            SimTime::from_millis(15),
            sd,
            DropReason::QueueOverflow,
            &Bytes::from_static(b"gone"),
        );
        let f = read_pcapng(&hub.to_pcapng()).expect("parse");
        assert_eq!(f.interfaces.len(), 5); // 4 vantages + drops
        assert_eq!(f.interfaces[4].name, DROPS_IFACE);
        let times: Vec<SimTime> = f.packets.iter().map(|p| p.at).collect();
        assert_eq!(
            times,
            vec![SimTime::from_millis(10), SimTime::from_millis(15), SimTime::from_millis(20)]
        );
        assert_eq!(
            f.packets[1].comment.as_deref(),
            Some("dropped: QueueOverflow on path0:down@server")
        );
        assert_eq!(f.packets[1].iface, 4);
    }

    #[test]
    fn no_drops_means_no_drops_interface() {
        let mut hub = CaptureHub::new();
        let i = hub.add_iface("path0:up@client");
        hub.frame(SimTime::ZERO, i, TapDir::Ingress, &Bytes::from_static(b"x"));
        let f = read_pcapng(&hub.to_pcapng()).expect("parse");
        assert_eq!(f.interfaces.len(), 1);
    }
}

//! Minimal pcapng writer and reader.
//!
//! The writer emits exactly the block set the capture needs — one Section
//! Header Block, one Interface Description Block per tap vantage, and one
//! Enhanced Packet Block per observed frame — in the little-endian layout
//! of the pcapng specification (draft-ietf-opsawg-pcapng). Files it
//! produces open in real Wireshark/tcpdump. Because the simulator's wire
//! format is a custom IPv4-like encoding, interfaces are declared as
//! `LINKTYPE_USER0` (147): external tools can list, filter and timestamp
//! the packets but leave byte-level decoding to [`capture-dump`][crate].
//!
//! Timestamps are simulated time at nanosecond resolution (`if_tsresol` =
//! 9), so a pcapng written from a deterministic run is itself byte-stable
//! across runs.
//!
//! The reader accepts anything the writer produces plus the common
//! variations (unknown block types are skipped, unknown options ignored),
//! and rejects truncated or byte-swapped input with a typed error.

use core::fmt;

use bytes::Bytes;
use mpw_sim::SimTime;

/// pcapng link type for user-defined encapsulation (LINKTYPE_USER0).
pub const LINKTYPE_USER0: u16 = 147;

const BT_SHB: u32 = 0x0A0D_0D0A;
const BT_IDB: u32 = 0x0000_0001;
const BT_EPB: u32 = 0x0000_0006;
const BYTE_ORDER_MAGIC: u32 = 0x1A2B_3C4D;
const OPT_END: u16 = 0;
const OPT_COMMENT: u16 = 1;
const OPT_IF_NAME: u16 = 2;
const OPT_IF_TSRESOL: u16 = 9;

/// Errors from [`read_pcapng`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PcapError {
    /// Input ended in the middle of a block.
    Truncated,
    /// The first block is not a section header.
    NotASection,
    /// Big-endian sections are not supported (the writer never emits them).
    ByteSwapped,
    /// The byte-order magic is unrecognized.
    BadMagic,
    /// A block's declared length is impossible.
    BadBlockLength,
    /// An EPB references an interface id with no preceding IDB.
    UnknownInterface(u32),
}

impl fmt::Display for PcapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcapError::Truncated => write!(f, "truncated pcapng"),
            PcapError::NotASection => write!(f, "file does not start with a section header"),
            PcapError::ByteSwapped => write!(f, "big-endian pcapng not supported"),
            PcapError::BadMagic => write!(f, "bad byte-order magic"),
            PcapError::BadBlockLength => write!(f, "impossible block length"),
            PcapError::UnknownInterface(i) => write!(f, "packet references unknown interface {i}"),
        }
    }
}

impl std::error::Error for PcapError {}

/// Streaming pcapng writer. Interfaces must be added before any packet
/// that references them (the blocks are emitted in call order).
#[derive(Debug)]
pub struct PcapWriter {
    buf: Vec<u8>,
    n_ifaces: u32,
}

impl PcapWriter {
    /// Start a new section.
    pub fn new() -> Self {
        let mut w = PcapWriter {
            buf: Vec::with_capacity(4096),
            n_ifaces: 0,
        };
        // SHB: magic, version 1.0, unknown section length.
        let start = w.begin_block(BT_SHB);
        put_u32(&mut w.buf, BYTE_ORDER_MAGIC);
        put_u16(&mut w.buf, 1);
        put_u16(&mut w.buf, 0);
        w.buf.extend_from_slice(&u64::MAX.to_le_bytes());
        w.end_block(start);
        w
    }

    /// Declare a capture interface; returns its id for [`Self::packet`].
    pub fn add_interface(&mut self, name: &str) -> u32 {
        let start = self.begin_block(BT_IDB);
        put_u16(&mut self.buf, LINKTYPE_USER0);
        put_u16(&mut self.buf, 0); // reserved
        put_u32(&mut self.buf, 0); // snaplen: unlimited
        put_option(&mut self.buf, OPT_IF_NAME, name.as_bytes());
        put_option(&mut self.buf, OPT_IF_TSRESOL, &[9]); // nanoseconds
        put_u16(&mut self.buf, OPT_END);
        put_u16(&mut self.buf, 0);
        self.end_block(start);
        let id = self.n_ifaces;
        self.n_ifaces += 1;
        id
    }

    /// Append one packet. `comment`, when present, is stored as the EPB's
    /// `opt_comment` (the capture uses it to label drop records).
    ///
    /// Blocks are serialized straight into the writer's output buffer with a
    /// length back-patch, so a warmed-up writer appends packets without any
    /// intermediate per-block allocation.
    pub fn packet(&mut self, iface: u32, at: SimTime, data: &[u8], comment: Option<&str>) {
        assert!(iface < self.n_ifaces, "packet on undeclared interface");
        let ts = at.as_nanos();
        let start = self.begin_block(BT_EPB);
        put_u32(&mut self.buf, iface);
        put_u32(&mut self.buf, (ts >> 32) as u32);
        put_u32(&mut self.buf, ts as u32);
        put_u32(&mut self.buf, data.len() as u32);
        put_u32(&mut self.buf, data.len() as u32);
        self.buf.extend_from_slice(data);
        pad4(&mut self.buf);
        if let Some(c) = comment {
            put_option(&mut self.buf, OPT_COMMENT, c.as_bytes());
            put_u16(&mut self.buf, OPT_END);
            put_u16(&mut self.buf, 0);
        }
        self.end_block(start);
    }

    /// Finish the section and return the file bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Open a block: write the type and a length placeholder, return the
    /// block's start offset for [`Self::end_block`].
    fn begin_block(&mut self, block_type: u32) -> usize {
        let start = self.buf.len();
        put_u32(&mut self.buf, block_type);
        put_u32(&mut self.buf, 0); // total length, patched by end_block
        start
    }

    /// Close a block: back-patch the total length and append the trailing
    /// duplicate the spec requires.
    fn end_block(&mut self, start: usize) {
        // lint: allow-panic(writer-side internal invariant, not wire-derived input)
        debug_assert!((self.buf.len() - start).is_multiple_of(4), "block body must be padded");
        let total = (self.buf.len() - start + 4) as u32;
        // lint: allow-panic(writer patches the length of a block it just opened)
        self.buf[start + 4..start + 8].copy_from_slice(&total.to_le_bytes());
        put_u32(&mut self.buf, total);
    }
}

impl Default for PcapWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// A capture interface read back from a file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PcapInterface {
    /// `if_name`, empty if absent.
    pub name: String,
    /// `if_tsresol` exponent (timestamps are in 10^-N seconds); the writer
    /// always uses 9, absent defaults to the spec's 6 (microseconds).
    pub tsresol_exp: u8,
}

/// One packet read back from a file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PcapPacket {
    /// Interface id (index into [`PcapFile::interfaces`]).
    pub iface: u32,
    /// Capture timestamp, converted back to simulated time.
    pub at: SimTime,
    /// Captured bytes — a refcounted sub-slice of the file buffer, not a
    /// per-packet copy.
    pub data: Bytes,
    /// `opt_comment`, if present (drop records carry one).
    pub comment: Option<String>,
}

/// A fully parsed capture file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PcapFile {
    /// Interfaces in declaration order.
    pub interfaces: Vec<PcapInterface>,
    /// Packets in file order.
    pub packets: Vec<PcapPacket>,
}

impl PcapFile {
    /// Index of the interface with the given name, if any.
    pub fn iface_named(&self, name: &str) -> Option<u32> {
        self.interfaces.iter().position(|i| i.name == name).map(|i| i as u32)
    }
}

/// Parse a (little-endian, single-section) pcapng file from a plain byte
/// slice. The input is copied once into a refcounted buffer which every
/// [`PcapPacket::data`] then sub-slices; callers that already hold the file
/// as [`Bytes`] should use [`read_pcapng_shared`] to skip even that copy.
pub fn read_pcapng(data: &[u8]) -> Result<PcapFile, PcapError> {
    read_pcapng_shared(&Bytes::copy_from_slice(data))
}

/// Parse a (little-endian, single-section) pcapng file without copying any
/// packet bytes: every [`PcapPacket::data`] is a refcounted sub-slice of
/// `src`.
///
/// The reader is total over arbitrary bytes: every read of the input goes
/// through [`get_u32`]/[`get_u16`]/`slice::get`, so truncated or mangled
/// files produce a typed [`PcapError`], never a panic. The `panic` lint
/// wall (`crates/check/src/lint_engine/`) enforces this.
pub fn read_pcapng_shared(src: &Bytes) -> Result<PcapFile, PcapError> {
    let data: &[u8] = src.as_ref();
    let mut out = PcapFile::default();
    let mut at = 0usize;
    let mut first = true;
    while at < data.len() {
        if data.len() - at < 12 {
            return Err(PcapError::Truncated);
        }
        let block_type = get_u32(data, at).ok_or(PcapError::Truncated)?;
        let total = get_u32(data, at + 4).ok_or(PcapError::Truncated)? as usize;
        if first {
            if block_type != BT_SHB {
                return Err(PcapError::NotASection);
            }
            first = false;
        }
        if total < 12 || !total.is_multiple_of(4) {
            return Err(PcapError::BadBlockLength);
        }
        let end = at.checked_add(total).ok_or(PcapError::BadBlockLength)?;
        if end > data.len() {
            return Err(PcapError::Truncated);
        }
        let body = data.get(at + 8..end - 4).ok_or(PcapError::Truncated)?;
        let trailer = get_u32(data, end - 4).ok_or(PcapError::Truncated)? as usize;
        if trailer != total {
            return Err(PcapError::BadBlockLength);
        }
        match block_type {
            BT_SHB => {
                let magic = get_u32(body, 0).ok_or(PcapError::Truncated)?;
                if magic == BYTE_ORDER_MAGIC.swap_bytes() {
                    return Err(PcapError::ByteSwapped);
                }
                if magic != BYTE_ORDER_MAGIC {
                    return Err(PcapError::BadMagic);
                }
            }
            BT_IDB => {
                if body.len() < 8 {
                    return Err(PcapError::Truncated);
                }
                let mut iface = PcapInterface {
                    name: String::new(),
                    tsresol_exp: 6,
                };
                let opts = body.get(8..).unwrap_or(&[]);
                for (code, val) in OptionIter::new(opts) {
                    match code {
                        OPT_IF_NAME => {
                            iface.name = String::from_utf8_lossy(val).into_owned();
                        }
                        OPT_IF_TSRESOL => {
                            if let &[exp] = val {
                                if exp & 0x80 == 0 {
                                    iface.tsresol_exp = exp;
                                }
                            }
                        }
                        _ => {}
                    }
                }
                out.interfaces.push(iface);
            }
            BT_EPB => {
                if body.len() < 20 {
                    return Err(PcapError::Truncated);
                }
                let iface = get_u32(body, 0).ok_or(PcapError::Truncated)?;
                let Some(idesc) = out.interfaces.get(iface as usize) else {
                    return Err(PcapError::UnknownInterface(iface));
                };
                let ts_hi = get_u32(body, 4).ok_or(PcapError::Truncated)?;
                let ts_lo = get_u32(body, 8).ok_or(PcapError::Truncated)?;
                let ts = (u64::from(ts_hi) << 32) | u64::from(ts_lo);
                let caplen = get_u32(body, 12).ok_or(PcapError::Truncated)? as usize;
                let packet_end = 20usize.checked_add(caplen).ok_or(PcapError::Truncated)?;
                if body.get(20..packet_end).is_none() {
                    return Err(PcapError::Truncated);
                }
                let nanos = match idesc.tsresol_exp {
                    9 => ts,
                    exp if exp < 9 => ts.saturating_mul(10u64.pow(u32::from(9 - exp))),
                    // A sub-attosecond if_tsresol (exp ≥ 29) makes the
                    // divisor exceed u64::MAX: every timestamp rounds to 0.
                    // The unchecked `10u64.pow(exp - 9)` here wrapped to 0
                    // and divided by it (fuzzer find; regression input in
                    // tests/fuzz-corpus/pcapng/).
                    exp => match 10u64.checked_pow(u32::from(exp - 9)) {
                        Some(div) => ts / div,
                        None => 0,
                    },
                };
                let mut comment = None;
                let opts_at = packet_end.next_multiple_of(4);
                if let Some(opts) = body.get(opts_at..) {
                    for (code, val) in OptionIter::new(opts) {
                        if code == OPT_COMMENT && comment.is_none() {
                            comment = Some(String::from_utf8_lossy(val).into_owned());
                        }
                    }
                }
                // The payload is `body[20..packet_end]` and `body` starts 8
                // bytes into the block, so its absolute range in `src` is
                // `at + 28 .. at + 8 + packet_end` (bounds proven by the
                // `body.get` check above).
                out.packets.push(PcapPacket {
                    iface,
                    at: SimTime::from_nanos(nanos),
                    data: src.slice(at + 28..at + 8 + packet_end),
                    comment,
                });
            }
            _ => {} // unknown block: skip
        }
        at = end;
    }
    if first {
        return Err(PcapError::Truncated);
    }
    Ok(out)
}

struct OptionIter<'a> {
    buf: &'a [u8],
}

impl<'a> OptionIter<'a> {
    fn new(buf: &'a [u8]) -> Self {
        OptionIter { buf }
    }
}

impl<'a> Iterator for OptionIter<'a> {
    type Item = (u16, &'a [u8]);
    fn next(&mut self) -> Option<(u16, &'a [u8])> {
        let code = get_u16(self.buf, 0)?;
        let len = get_u16(self.buf, 2)? as usize;
        if code == OPT_END {
            return None;
        }
        let end = 4usize.checked_add(len)?;
        let val = self.buf.get(4..end)?;
        self.buf = self
            .buf
            .get(end.next_multiple_of(4)..)
            .unwrap_or(&[]);
        Some((code, val))
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u16(data: &[u8], at: usize) -> Option<u16> {
    data.get(at..at.checked_add(2)?)
        .and_then(|s| <[u8; 2]>::try_from(s).ok())
        .map(u16::from_le_bytes)
}

fn get_u32(data: &[u8], at: usize) -> Option<u32> {
    data.get(at..at.checked_add(4)?)
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .map(u32::from_le_bytes)
}

fn put_option(out: &mut Vec<u8>, code: u16, val: &[u8]) {
    put_u16(out, code);
    put_u16(out, val.len() as u16);
    out.extend_from_slice(val);
    pad4(out);
}

fn pad4(out: &mut Vec<u8>) {
    while !out.len().is_multiple_of(4) {
        out.push(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_interfaces_packets_and_comments() {
        let mut w = PcapWriter::new();
        let i0 = w.add_interface("path0:down@client");
        let i1 = w.add_interface("drops");
        w.packet(i0, SimTime::from_millis(5), b"hello", None);
        w.packet(i1, SimTime::from_nanos(123_456_789_012), b"bye", Some("dropped: ChannelLoss"));
        let bytes = w.into_bytes();
        let f = read_pcapng(&bytes).expect("parse");
        assert_eq!(f.interfaces.len(), 2);
        assert_eq!(f.interfaces[0].name, "path0:down@client");
        assert_eq!(f.interfaces[0].tsresol_exp, 9);
        assert_eq!(f.iface_named("drops"), Some(1));
        assert_eq!(f.packets.len(), 2);
        assert_eq!(f.packets[0].at, SimTime::from_millis(5));
        assert_eq!(f.packets[0].data, *b"hello");
        assert_eq!(f.packets[0].comment, None);
        assert_eq!(f.packets[1].at, SimTime::from_nanos(123_456_789_012));
        assert_eq!(f.packets[1].comment.as_deref(), Some("dropped: ChannelLoss"));
    }

    #[test]
    fn shared_read_is_zero_copy() {
        let mut w = PcapWriter::new();
        let i0 = w.add_interface("x");
        w.packet(i0, SimTime::from_millis(1), b"payload!", None);
        let file_bytes = Bytes::from(w.into_bytes());
        let f = read_pcapng_shared(&file_bytes).expect("parse");
        let data = &f.packets[0].data;
        assert_eq!(**data, *b"payload!");
        let base = file_bytes.as_ref().as_ptr() as usize;
        let p = data.as_ref().as_ptr() as usize;
        assert!(
            p >= base && p + data.len() <= base + file_bytes.len(),
            "packet data must be a sub-slice of the file buffer"
        );
    }

    #[test]
    fn header_bytes_match_the_spec() {
        let w = PcapWriter::new();
        let bytes = w.into_bytes();
        // SHB: type, total length 28, byte-order magic, version 1.0.
        assert_eq!(&bytes[0..4], &0x0A0D_0D0Au32.to_le_bytes());
        assert_eq!(&bytes[4..8], &28u32.to_le_bytes());
        assert_eq!(&bytes[8..12], &0x1A2B_3C4Du32.to_le_bytes());
        assert_eq!(&bytes[12..14], &1u16.to_le_bytes());
        assert_eq!(&bytes[14..16], &0u16.to_le_bytes());
        assert_eq!(&bytes[24..28], &28u32.to_le_bytes());
    }

    #[test]
    fn truncated_and_swapped_inputs_are_rejected() {
        let mut w = PcapWriter::new();
        w.add_interface("x");
        w.packet(0, SimTime::ZERO, b"abcd", None);
        let bytes = w.into_bytes();
        assert_eq!(read_pcapng(&bytes[..bytes.len() - 3]), Err(PcapError::Truncated));
        assert_eq!(read_pcapng(&bytes[..6]), Err(PcapError::Truncated));
        assert_eq!(read_pcapng(b""), Err(PcapError::Truncated));
        // Flip the byte-order magic to its big-endian spelling.
        let mut swapped = bytes.clone();
        swapped[8..12].copy_from_slice(&0x1A2B_3C4Du32.to_be_bytes());
        assert_eq!(read_pcapng(&swapped), Err(PcapError::ByteSwapped));
        // A file that does not start with an SHB.
        assert_eq!(read_pcapng(&bytes[28..]), Err(PcapError::NotASection));
    }

    #[test]
    fn packet_on_undeclared_interface_is_rejected() {
        let mut w = PcapWriter::new();
        w.add_interface("only");
        w.packet(0, SimTime::ZERO, b"ok", None);
        let mut bytes = w.into_bytes();
        // Corrupt the EPB's interface id (EPB body starts 8 bytes into the
        // block; the block follows SHB(28) + IDB).
        let idb_total = get_u32(&bytes, 32).unwrap() as usize;
        let epb_body = 28 + idb_total + 8;
        bytes[epb_body..epb_body + 4].copy_from_slice(&7u32.to_le_bytes());
        assert_eq!(read_pcapng(&bytes), Err(PcapError::UnknownInterface(7)));
    }

    #[test]
    fn microsecond_resolution_is_upconverted() {
        // Hand-build an IDB with tsresol 6 and one EPB with ts=1500 µs.
        let mut w = PcapWriter::new();
        w.add_interface("u");
        w.packet(0, SimTime::ZERO, b"", None);
        let mut bytes = w.into_bytes();
        // Patch if_tsresol value 9 -> 6. The option layout in our IDB body:
        // linktype(4) + if_name option + if_tsresol option. Find the byte 9
        // following the tsresol option header.
        let idb_start = 28;
        let total = get_u32(&bytes, idb_start + 4).unwrap() as usize;
        let body = idb_start + 8..idb_start + total - 4;
        // if_tsresol has code 9, len 1; scan the body for that header.
        let mut patched = false;
        for i in body.clone().take(total - 12 - 4) {
            if bytes[i] == 9 && bytes[i + 1] == 0 && bytes[i + 2] == 1 && bytes[i + 3] == 0 {
                bytes[i + 4] = 6;
                patched = true;
                break;
            }
        }
        assert!(patched, "did not find if_tsresol option");
        // Patch the EPB timestamp low word to 1500 (µs now).
        let epb_body = idb_start + total + 8;
        bytes[epb_body + 8..epb_body + 12].copy_from_slice(&1500u32.to_le_bytes());
        let f = read_pcapng(&bytes).expect("parse");
        assert_eq!(f.interfaces[0].tsresol_exp, 6);
        assert_eq!(f.packets[0].at, SimTime::from_micros(1500));
    }

    #[test]
    fn huge_tsresol_exponent_rounds_to_zero_instead_of_panicking() {
        // An if_tsresol exponent of 81 declares 10^-81-second units; the
        // nanosecond divisor 10^72 does not fit u64 and used to wrap to 0,
        // panicking the timestamp division (mpw-fuzz pcapng target find;
        // regression input in tests/fuzz-corpus/pcapng/).
        let mut w = PcapWriter::new();
        w.add_interface("weird");
        w.packet(0, SimTime::from_nanos(u64::MAX), b"x", None);
        let mut bytes = w.into_bytes();
        let idb_start = 28;
        let total = get_u32(&bytes, idb_start + 4).unwrap() as usize;
        let mut patched = false;
        for i in idb_start + 8..idb_start + total - 8 {
            if bytes[i] == 9 && bytes[i + 1] == 0 && bytes[i + 2] == 1 && bytes[i + 3] == 0 {
                bytes[i + 4] = 81;
                patched = true;
                break;
            }
        }
        assert!(patched, "did not find if_tsresol option");
        let f = read_pcapng(&bytes).expect("parse");
        assert_eq!(f.interfaces[0].tsresol_exp, 81);
        assert_eq!(f.packets[0].at, SimTime::ZERO);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Anything the writer emits, the reader parses back exactly —
            /// interfaces, nanosecond timestamps, payload bytes, and
            /// comments. CI also runs this under miri (PROPTEST_CASES=16).
            #[test]
            fn writer_reader_roundtrip(
                n_ifaces in 1u32..4,
                pkts in proptest::collection::vec(
                    (
                        any::<u32>(),
                        any::<u64>(),
                        proptest::collection::vec(any::<u8>(), 0..64),
                        any::<bool>(),
                        proptest::collection::vec(0x20u8..0x7f, 0..12),
                    ),
                    0..12,
                ),
            ) {
                let mut w = PcapWriter::new();
                for i in 0..n_ifaces {
                    w.add_interface(&format!("path{i}:down@client"));
                }
                let mut want = Vec::new();
                for (iface_raw, nanos, data, has_comment, comment) in pkts {
                    let iface = iface_raw % n_ifaces;
                    let at = SimTime::from_nanos(nanos);
                    let comment = has_comment
                        .then(|| String::from_utf8(comment).expect("ascii"));
                    w.packet(iface, at, &data, comment.as_deref());
                    want.push(PcapPacket { iface, at, data: data.into(), comment });
                }
                let f = read_pcapng(&w.into_bytes()).expect("parse");
                prop_assert_eq!(f.interfaces.len() as u32, n_ifaces);
                for (i, iface) in f.interfaces.iter().enumerate() {
                    prop_assert_eq!(iface.tsresol_exp, 9);
                    prop_assert_eq!(&iface.name, &format!("path{i}:down@client"));
                }
                prop_assert_eq!(f.packets, want);
            }

            /// The reader is total: arbitrary bytes never panic it.
            #[test]
            fn reader_never_panics_on_arbitrary_bytes(
                data in proptest::collection::vec(any::<u8>(), 0..256),
            ) {
                let _ = read_pcapng(&data);
            }
        }
    }
}

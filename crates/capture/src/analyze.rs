//! tcptrace-style offline analysis of a pcapng capture.
//!
//! Everything here is reconstructed *purely from the captured wire bytes* —
//! no access to stack internals — mirroring how the paper derived its
//! headline figures from tcpdump traces (§3.2):
//!
//! - **RTT samples** at the server vantage: a data segment's transmit time
//!   matched against the arrival of the ACK that exactly covers it, with
//!   Karn's rule (retransmitted ranges never produce samples). The SYN ⇄
//!   SYN-ACK exchange gives a separate handshake RTT at the client vantage.
//! - **Retransmissions** by re-sent subflow sequence ranges at the server
//!   transmit vantage (tcptrace's loss-rate numerator).
//! - **Out-of-order delay** at the client vantage from DSS mappings: how
//!   long a connection-level byte range sat in the reassembly hole buffer
//!   before becoming contiguous (§3.3).
//! - **Per-path byte shares** at the client vantage: novel connection-level
//!   payload attributed to the subflow that delivered it first.
//!
//! Subflows are grouped into MPTCP connections by their handshake options:
//! an MP_CAPABLE SYN opens a connection, an MP_JOIN SYN attaches to the
//! most recently opened one (token-to-key matching would need the stack's
//! hash; handshakes never interleave in the reproduced scenarios, and the
//! join token is kept for reporting).

use std::collections::{BTreeMap, HashMap, HashSet};

use mpw_metrics::{epoch_shares, DistSummary, EpochShare, EpochSpan};
use mpw_sim::SimTime;
use mpw_tcp::wire::{parse_any_shared, Endpoint, MptcpOption, Packet, TcpSegment};
use mpw_tcp::SeqNum;

use crate::hub::{IfaceRole, Vantage};
use crate::pcapng::{PcapFile, PcapPacket};

/// Wire-derived per-subflow statistics (download direction: server→client
/// data, like the reference in-stack metrics).
#[derive(Clone, Debug)]
pub struct WireSubflow {
    /// Path index recovered from the capture interface names.
    pub path: u8,
    /// Client endpoint.
    pub client: Endpoint,
    /// Server endpoint.
    pub server: Endpoint,
    /// Whether the wire shows a completed handshake (SYN, SYN-ACK, ACK).
    pub established: bool,
    /// MP_JOIN token, for subflows attached by join.
    pub join_token: Option<u32>,
    /// Handshake RTT (client vantage: SYN tx → SYN-ACK rx), ms.
    pub syn_rtt_ms: Option<f64>,
    /// Data segments transmitted by the server (including rexmits).
    pub data_segs: u64,
    /// Retransmitted data segments (re-sent subflow sequence ranges).
    pub rexmit_segs: u64,
    /// Payload bytes transmitted by the server, including rexmits.
    pub bytes_sent: u64,
    /// Novel connection-level payload bytes this subflow delivered first
    /// (client vantage) — the wire analogue of the stack's per-subflow
    /// delivered counter used for byte shares.
    pub delivered_bytes: u64,
    /// RTT sample distribution (ms).
    pub rtt: DistSummary,
    /// Exact RTT samples (ms), in arrival order.
    pub rtt_samples_ms: Vec<f64>,
}

/// Wire-derived per-connection statistics.
#[derive(Clone, Debug)]
pub struct WireConnection {
    /// Client key from MP_CAPABLE, if the connection negotiated MPTCP.
    pub client_key: Option<u64>,
    /// Subflows in first-seen order (index 0 is the initial subflow).
    pub subflows: Vec<WireSubflow>,
    /// Out-of-order delay distribution at the receiver (ms).
    pub ofo: DistSummary,
    /// Exact out-of-order delay samples (ms), in promotion order.
    pub ofo_samples_ms: Vec<f64>,
    /// Unique connection-level payload bytes seen arriving at the client.
    pub delivered_bytes: u64,
    /// Novel-byte delivery events `(arrival, path, bytes)` in arrival
    /// order — the raw material for scenario-labelled epoch shares.
    pub deliveries: Vec<(SimTime, u8, u64)>,
}

impl WireConnection {
    /// Fraction of delivered bytes that travelled a non-WiFi path
    /// (path index ≠ 0), the paper's cellular-share metric.
    pub fn cellular_share(&self) -> f64 {
        let total: u64 = self.subflows.iter().map(|s| s.delivered_bytes).sum();
        if total == 0 {
            return 0.0;
        }
        let cell: u64 = self
            .subflows
            .iter()
            .filter(|s| s.path != 0)
            .map(|s| s.delivered_bytes)
            .sum();
        cell as f64 / total as f64
    }

    /// Attribute this connection's novel-byte deliveries to the labelled
    /// epochs of the scenario that drove the run (the wire-level analogue
    /// of the in-stack per-epoch traffic shares). The caller converts the
    /// scenario engine's epochs into [`EpochSpan`]s — typically
    /// `Scenario::epochs(horizon_ms)` mapped through `SimTime::from_millis`.
    pub fn epoch_shares(&self, epochs: &[EpochSpan]) -> Vec<EpochShare> {
        epoch_shares(&self.deliveries, epochs)
    }
}

/// Result of analyzing one capture file.
#[derive(Clone, Debug, Default)]
pub struct WireAnalysis {
    /// Connections in first-SYN order.
    pub connections: Vec<WireConnection>,
    /// Drop records found on the dedicated drops interface.
    pub drop_records: u64,
    /// Ping (non-TCP) packets skipped.
    pub pings: u64,
    /// Packets that failed to parse (foreign or corrupt).
    pub unparsed: u64,
}

impl Default for WireConnection {
    fn default() -> Self {
        WireConnection {
            client_key: None,
            subflows: Vec::new(),
            ofo: DistSummary::new(),
            ofo_samples_ms: Vec::new(),
            delivered_bytes: 0,
            deliveries: Vec::new(),
        }
    }
}

/// Merged-interval set over u64 sequence space; `insert` returns how many
/// of the inserted bytes were novel.
#[derive(Clone, Debug, Default)]
struct Coverage {
    // start -> end, non-overlapping, non-adjacent-merged.
    spans: BTreeMap<u64, u64>,
}

impl Coverage {
    fn insert(&mut self, start: u64, end: u64) -> u64 {
        if end <= start {
            return 0;
        }
        let mut novel = end - start;
        let mut new_start = start;
        let mut new_end = end;
        // Absorb any span overlapping or adjacent to [start, end).
        let mut to_remove = Vec::new();
        for (&s, &e) in self.spans.range(..=end) {
            if e < start {
                continue;
            }
            // Overlapping coverage reduces novelty.
            let ov = e.min(end).saturating_sub(s.max(start));
            novel = novel.saturating_sub(ov);
            new_start = new_start.min(s);
            new_end = new_end.max(e);
            to_remove.push(s);
        }
        for s in to_remove {
            self.spans.remove(&s);
        }
        self.spans.insert(new_start, new_end);
        novel
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct SubflowKey {
    client: Endpoint,
    server: Endpoint,
}

/// Per-subflow analyzer state beyond what ends up in [`WireSubflow`].
#[derive(Default)]
struct SubflowState {
    conn: usize,
    /// Base for sequence unwrapping (first data seq seen at server tx).
    base_seq: Option<u32>,
    /// First-transmission times keyed by unwrapped expected ack;
    /// bool = Karn-invalidated.
    pending_ack: BTreeMap<u64, (SimTime, bool)>,
    /// Data sequence numbers already transmitted (rexmit detection).
    seen_seq: HashSet<u32>,
    /// Client-side handshake: SYN transmit time (up@client vantage).
    syn_tx: Option<SimTime>,
    /// Number of SYNs seen from the client (>1 → Karn-invalidate SYN RTT).
    syn_count: u32,
    /// Subflow-level coverage for fallback (no-DSS) delivery accounting.
    sub_coverage: Coverage,
    /// SYN-ACK seen (server answered).
    syn_ack_seen: bool,
    /// Non-SYN ACK from client seen (handshake completed).
    ack_seen: bool,
}

/// Per-connection reassembly state for out-of-order delay.
#[derive(Default)]
struct ConnState {
    /// Next expected connection-level sequence number.
    next_dseq: Option<u64>,
    /// dseq -> (end, arrival) of data waiting for a hole to fill.
    held: BTreeMap<u64, (u64, SimTime)>,
    /// Connection-level coverage (novel-byte attribution).
    coverage: Coverage,
}

/// Analyze a parsed capture. `server_port` orients flows: packets towards
/// it are client→server. Packets are processed in timestamp order (ties in
/// file order), so captures from several interleaved taps are fine.
pub fn analyze(file: &PcapFile, server_port: u16) -> WireAnalysis {
    let mut out = WireAnalysis::default();
    let roles: Vec<Option<IfaceRole>> = file
        .interfaces
        .iter()
        .map(|i| IfaceRole::parse(&i.name))
        .collect();

    // Stable sort keeps ties in file order.
    let mut order: Vec<&PcapPacket> = file.packets.iter().collect();
    order.sort_by_key(|p| p.at);

    let mut sub_index: HashMap<SubflowKey, usize> = HashMap::new();
    let mut subs: Vec<(WireSubflow, SubflowState)> = Vec::new();
    let mut conns: Vec<(WireConnection, ConnState)> = Vec::new();

    for pkt in order {
        let Some(&role) = roles.get(pkt.iface as usize) else {
            out.unparsed += 1;
            continue;
        };
        let Some(role) = role else {
            // Non-topology interface: the drops channel.
            out.drop_records += 1;
            continue;
        };
        let (ip, seg) = match parse_any_shared(&pkt.data) {
            Ok(Packet::Tcp(ip, seg)) => (ip, seg),
            Ok(Packet::Ping(..)) => {
                out.pings += 1;
                continue;
            }
            Err(_) => {
                out.unparsed += 1;
                continue;
            }
        };
        let to_server = seg.dst_port == server_port;
        let from_server = seg.src_port == server_port;
        if to_server == from_server {
            out.unparsed += 1;
            continue;
        }
        let key = if to_server {
            SubflowKey {
                client: Endpoint::new(ip.src, seg.src_port),
                server: Endpoint::new(ip.dst, seg.dst_port),
            }
        } else {
            SubflowKey {
                client: Endpoint::new(ip.dst, seg.dst_port),
                server: Endpoint::new(ip.src, seg.src_port),
            }
        };

        let si = match sub_index.get(&key) {
            Some(&si) => si,
            None => {
                let (conn, join_token, client_key) =
                    classify_new_subflow(&seg, to_server, &conns);
                let conn = match conn {
                    Some(c) => c,
                    None => {
                        conns.push((WireConnection::default(), ConnState::default()));
                        conns.len() - 1
                    }
                };
                if let Some(k) = client_key {
                    if let Some((wc, _)) = conns.get_mut(conn) {
                        wc.client_key = Some(k);
                    }
                }
                subs.push((
                    WireSubflow {
                        path: role.path,
                        client: key.client,
                        server: key.server,
                        established: false,
                        join_token,
                        syn_rtt_ms: None,
                        data_segs: 0,
                        rexmit_segs: 0,
                        bytes_sent: 0,
                        delivered_bytes: 0,
                        rtt: DistSummary::new(),
                        rtt_samples_ms: Vec::new(),
                    },
                    SubflowState {
                        conn,
                        ..SubflowState::default()
                    },
                ));
                let si = subs.len() - 1;
                sub_index.insert(key, si);
                si
            }
        };
        let Some((sub, st)) = subs.get_mut(si) else {
            continue; // unreachable: si was just inserted or looked up
        };

        use mpw_tcp::wire::tcp_flags as fl;
        let syn = seg.has(fl::SYN);
        let ack = seg.has(fl::ACK);

        match (role.vantage, to_server) {
            // ---- Client-side sniffer ----
            (Vantage::Client, true) => {
                // Client transmits (up@client).
                if syn && !ack {
                    st.syn_count += 1;
                    if st.syn_count == 1 {
                        st.syn_tx = Some(pkt.at);
                    }
                }
            }
            (Vantage::Client, false) => {
                // Client receives (down@client).
                if syn && ack {
                    if let (Some(t0), 1, None) = (st.syn_tx, st.syn_count, sub.syn_rtt_ms) {
                        sub.syn_rtt_ms =
                            Some(pkt.at.saturating_since(t0).as_secs_f64() * 1e3);
                    }
                    st.syn_ack_seen = true;
                }
                if !seg.payload.is_empty() {
                    let novel = match seg.dss().and_then(|(_, m, _)| *m) {
                        Some(mapping) => {
                            // Saturate rather than overflow on a hostile
                            // dseq near u64::MAX (fuzzer find; regression
                            // input in tests/fuzz-corpus/analyze/).
                            let start = mapping.dseq;
                            let end = start.saturating_add(seg.payload.len() as u64);
                            match conns.get_mut(st.conn) {
                                Some(entry) => {
                                    let novel = entry.1.coverage.insert(start, end);
                                    ofo_arrival(entry, start, end, pkt.at);
                                    novel
                                }
                                None => 0,
                            }
                        }
                        None => {
                            // Plain TCP (or DSS-less fallback): account in
                            // subflow sequence space.
                            let base = *st.base_seq.get_or_insert(seg.seq.0);
                            let start = unwrap_seq(base, seg.seq);
                            st.sub_coverage
                                .insert(start, start + seg.payload.len() as u64)
                        }
                    };
                    sub.delivered_bytes += novel;
                    if let Some((wc, _)) = conns.get_mut(st.conn) {
                        wc.delivered_bytes += novel;
                        if novel > 0 {
                            wc.deliveries.push((pkt.at, sub.path, novel));
                        }
                    }
                }
            }

            // ---- Server-side sniffer ----
            (Vantage::Server, false) => {
                // Server transmits (down@server).
                if syn && ack {
                    st.syn_ack_seen = true;
                }
                if !seg.payload.is_empty() {
                    sub.data_segs += 1;
                    sub.bytes_sent += seg.payload.len() as u64;
                    let base = *st.base_seq.get_or_insert(seg.seq.0);
                    let expected_ack =
                        unwrap_seq(base, seg.seq) + seg.payload.len() as u64;
                    if st.seen_seq.contains(&seg.seq.0) {
                        sub.rexmit_segs += 1;
                        if let Some(entry) = st.pending_ack.get_mut(&expected_ack) {
                            entry.1 = true; // Karn
                        }
                    } else {
                        st.seen_seq.insert(seg.seq.0);
                        st.pending_ack.insert(expected_ack, (pkt.at, false));
                    }
                }
            }
            (Vantage::Server, true) => {
                // Server receives (up@server): ACKs from the client.
                if ack && !syn {
                    st.ack_seen = true;
                }
                if ack {
                    if let Some(base) = st.base_seq {
                        let a = unwrap_seq(base, seg.ack);
                        if let Some(&(sent, invalidated)) = st.pending_ack.get(&a) {
                            if !invalidated {
                                let ms =
                                    pkt.at.saturating_since(sent).as_secs_f64() * 1e3;
                                sub.rtt.push(ms);
                                sub.rtt_samples_ms.push(ms);
                            }
                        }
                        let keep = st.pending_ack.split_off(&(a + 1));
                        st.pending_ack = keep;
                    }
                }
            }
        }
        if st.syn_ack_seen && st.ack_seen {
            sub.established = true;
        }
    }

    // Assemble output, attaching subflows to their connections in order.
    let mut result: Vec<WireConnection> = conns.into_iter().map(|(c, _)| c).collect();
    for (sub, st) in subs {
        if let Some(c) = result.get_mut(st.conn) {
            c.subflows.push(sub);
        }
    }
    out.connections = result.into_iter().filter(|c| !c.subflows.is_empty()).collect();
    out
}

/// Decide which connection a newly-seen subflow belongs to from its first
/// packet. Returns (existing connection index, join token, client key).
fn classify_new_subflow(
    seg: &TcpSegment,
    to_server: bool,
    conns: &[(WireConnection, ConnState)],
) -> (Option<usize>, Option<u32>, Option<u64>) {
    if !to_server {
        // First packet seen is server→client (partial capture): attach to
        // the latest connection rather than inventing one.
        return (conns.len().checked_sub(1), None, None);
    }
    match seg.mptcp() {
        Some(MptcpOption::Capable { key_local, .. }) => (None, None, Some(*key_local)),
        Some(MptcpOption::Join { token, .. }) => {
            // Token→key matching needs the stack's hash; handshakes never
            // interleave here, so the join attaches to the latest
            // connection (`None` would invent a fresh one).
            (conns.len().checked_sub(1), Some(*token), None)
        }
        _ => (None, None, None),
    }
}

/// Offset of `x` above the flow's base sequence number; valid while a
/// subflow carries < 2³¹ bytes, as in the reference analyzer.
fn unwrap_seq(base: u32, x: SeqNum) -> u64 {
    u64::from(x - SeqNum(base))
}

/// Feed one DSS-mapped arrival into the connection's reassembly model and
/// record promotion delays (§3.3's out-of-order delay).
fn ofo_arrival(conn: &mut (WireConnection, ConnState), start: u64, end: u64, at: SimTime) {
    let (wc, cs) = conn;
    let next = cs.next_dseq.get_or_insert(start);
    if end <= *next {
        return; // duplicate
    }
    let hold_from = start.max(*next);
    cs.held.entry(hold_from).or_insert((end, at));
    while let Some((&s, &(e, arrived))) = cs.held.first_key_value() {
        if s > *next {
            break;
        }
        cs.held.remove(&s);
        if e <= *next {
            continue;
        }
        *next = e;
        let ms = at.saturating_since(arrived).as_secs_f64() * 1e3;
        wc.ofo.push(ms);
        wc.ofo_samples_ms.push(ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::CaptureHub;
    use crate::pcapng::read_pcapng;
    use bytes::Bytes;
    use mpw_sim::tap::{FrameObserver, TapDir};
    use mpw_tcp::wire::{encode_packet, tcp_flags, DssMapping, IpHeader, TcpOption};
    use mpw_tcp::Addr;

    const SERVER_PORT: u16 = 8080;
    const CLIENT: Addr = Addr::new(10, 0, 1, 2);
    const CLIENT2: Addr = Addr::new(10, 0, 2, 2);
    const SERVER: Addr = Addr::new(192, 168, 1, 1);

    struct Rig {
        hub: CaptureHub,
        // (up@client, up@server, down@server, down@client) per path.
        ifaces: Vec<(u32, u32, u32, u32)>,
    }

    impl Rig {
        fn new(paths: u8) -> Rig {
            let mut hub = CaptureHub::new();
            let ifaces = (0..paths).map(|p| hub.add_path(p)).collect();
            Rig { hub, ifaces }
        }

        fn seg(
            &mut self,
            path: usize,
            t_ms: u64,
            to_server: bool,
            mut seg: TcpSegment,
            client_addr: Addr,
        ) {
            let (src, dst) = if to_server { (client_addr, SERVER) } else { (SERVER, client_addr) };
            let ip = IpHeader { src, dst, protocol: mpw_tcp::wire::PROTO_TCP, ttl: 64 };
            if to_server {
                seg.dst_port = SERVER_PORT;
            } else {
                seg.src_port = SERVER_PORT;
            }
            let bytes = encode_packet(&ip, &seg);
            let (uc, us, sd, cd) = self.ifaces[path];
            // One event on each vantage of the traversed direction; the
            // receiving-side copy arrives a little later.
            let (tx_iface, rx_iface) = if to_server { (uc, us) } else { (sd, cd) };
            self.hub
                .frame(SimTime::from_millis(t_ms), tx_iface, TapDir::Ingress, &bytes);
            self.hub.frame(
                SimTime::from_millis(t_ms + TRANSIT_MS),
                rx_iface,
                TapDir::Egress,
                &bytes,
            );
        }

        fn analyze(&self) -> WireAnalysis {
            let file = read_pcapng(&self.hub.to_pcapng()).expect("pcap");
            analyze(&file, SERVER_PORT)
        }
    }

    const TRANSIT_MS: u64 = 5;

    /// Server→client data segment towards the given client port.
    fn data(client_port: u16, seq: u32, len: usize, dseq: Option<u64>) -> TcpSegment {
        let mut s = TcpSegment::bare(0, client_port, SeqNum(seq), SeqNum(1), tcp_flags::ACK);
        s.payload = Bytes::from(vec![0xAB; len]);
        if let Some(d) = dseq {
            s.options = [TcpOption::Mptcp(MptcpOption::Dss {
                data_ack: None,
                mapping: Some(DssMapping { dseq: d, subflow_seq: SeqNum(seq), len: len as u16 }),
                data_fin: false,
            })]
            .into();
        }
        s
    }

    fn ack_seg(src_port: u16, ack: u32) -> TcpSegment {
        TcpSegment::bare(src_port, 0, SeqNum(1), SeqNum(ack), tcp_flags::ACK)
    }

    fn handshake(rig: &mut Rig, path: usize, t0: u64, port: u16, addr: Addr, opt: MptcpOption) {
        let mut syn = TcpSegment::bare(port, 0, SeqNum(100), SeqNum(0), tcp_flags::SYN);
        syn.options = [TcpOption::Mptcp(opt)].into();
        rig.seg(path, t0, true, syn, addr);
        let synack = TcpSegment::bare(
            0,
            port,
            SeqNum(1000),
            SeqNum(101),
            tcp_flags::SYN | tcp_flags::ACK,
        );
        rig.seg(path, t0 + 10, false, synack, addr);
        rig.seg(path, t0 + 20, true, ack_seg(port, 1001), addr);
    }

    #[test]
    fn handshake_yields_syn_rtt_and_establishment() {
        let mut rig = Rig::new(1);
        handshake(
            &mut rig,
            0,
            0,
            40_000,
            CLIENT,
            MptcpOption::Capable { key_local: 7, key_remote: None },
        );
        let a = rig.analyze();
        assert_eq!(a.connections.len(), 1);
        let c = &a.connections[0];
        assert_eq!(c.client_key, Some(7));
        assert_eq!(c.subflows.len(), 1);
        let s = &c.subflows[0];
        assert!(s.established);
        // SYN tx at 0, SYN-ACK rx at 10+5.
        assert_eq!(s.syn_rtt_ms, Some(15.0));
    }

    #[test]
    fn rtt_rexmit_and_karn_match_the_reference_rules() {
        let mut rig = Rig::new(1);
        handshake(
            &mut rig,
            0,
            0,
            40_000,
            CLIENT,
            MptcpOption::Capable { key_local: 7, key_remote: None },
        );
        // Server sends two segments; first is retransmitted later.
        rig.seg(0, 100, false, data(40_000, 1001, 100, None), CLIENT);
        rig.seg(0, 101, false, data(40_000, 1101, 100, None), CLIENT);
        rig.seg(0, 300, false, data(40_000, 1001, 100, None), CLIENT); // rexmit
        // Client acks everything; ack transmitted at 340, arrives 345.
        rig.seg(0, 340, true, ack_seg(40_000, 1201), CLIENT);
        let a = rig.analyze();
        let s = &a.connections[0].subflows[0];
        assert_eq!(s.data_segs, 3);
        assert_eq!(s.rexmit_segs, 1);
        assert_eq!(s.bytes_sent, 300);
        // Karn kills the 1001-range sample; the 1101 range was sent at 101
        // and cumulatively acked by the ack arriving at server at 345.
        assert_eq!(s.rtt_samples_ms, vec![244.0]);
    }

    #[test]
    fn ofo_delay_reconstructed_from_dss() {
        let mut rig = Rig::new(2);
        handshake(
            &mut rig,
            0,
            0,
            40_000,
            CLIENT,
            MptcpOption::Capable { key_local: 7, key_remote: None },
        );
        handshake(
            &mut rig,
            1,
            30,
            40_001,
            CLIENT2,
            MptcpOption::Join { token: 9, nonce: 1, backup: false },
        );
        // In-order on path0, then a hole filled 60 ms later via path1.
        rig.seg(0, 100, false, data(40_000, 1001, 100, Some(0)), CLIENT);
        rig.seg(1, 110, false, data(40_001, 2001, 100, Some(200)), CLIENT2); // hole at 100
        rig.seg(0, 170, false, data(40_000, 1101, 100, Some(100)), CLIENT); // fills it
        let a = rig.analyze();
        assert_eq!(a.connections.len(), 1, "join grouped into the capable conn");
        let c = &a.connections[0];
        assert_eq!(c.subflows.len(), 2);
        assert_eq!(c.subflows[1].join_token, Some(9));
        // Delays: [0,100) immediate 0 ms; [100,200) fills on arrival 0 ms;
        // [200,300) waited from 115 to 175 = 60 ms.
        assert_eq!(c.ofo_samples_ms, vec![0.0, 0.0, 60.0]);
        assert_eq!(c.delivered_bytes, 300);
        // Byte shares: 200 B via path0, 100 B via path1.
        assert_eq!(c.subflows[0].delivered_bytes, 200);
        assert_eq!(c.subflows[1].delivered_bytes, 100);
        assert!((c.cellular_share() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn epoch_shares_label_wire_deliveries() {
        let mut rig = Rig::new(2);
        handshake(
            &mut rig,
            0,
            0,
            40_000,
            CLIENT,
            MptcpOption::Capable { key_local: 7, key_remote: None },
        );
        handshake(
            &mut rig,
            1,
            30,
            40_001,
            CLIENT2,
            MptcpOption::Join { token: 9, nonce: 1, backup: false },
        );
        // Client-side arrivals: path0 at 105 and 175, path1 at 115.
        rig.seg(0, 100, false, data(40_000, 1001, 100, Some(0)), CLIENT);
        rig.seg(1, 110, false, data(40_001, 2001, 100, Some(200)), CLIENT2);
        rig.seg(0, 170, false, data(40_000, 1101, 100, Some(100)), CLIENT);
        let a = rig.analyze();
        let c = &a.connections[0];
        assert_eq!(c.deliveries.len(), 3);
        let spans = [
            EpochSpan {
                label: "start".into(),
                start: SimTime::ZERO,
                end: SimTime::from_millis(150),
            },
            EpochSpan {
                label: "fade".into(),
                start: SimTime::from_millis(150),
                end: SimTime::from_millis(1000),
            },
        ];
        let shares = c.epoch_shares(&spans);
        assert_eq!(shares.len(), 2);
        assert_eq!(shares[0].label, "start");
        assert_eq!(shares[0].total, 200);
        assert!((shares[0].non_primary_share() - 0.5).abs() < 1e-9);
        assert_eq!(shares[1].total, 100);
        assert_eq!(shares[1].non_primary_share(), 0.0);
    }

    #[test]
    fn duplicate_delivery_is_not_double_counted() {
        let mut rig = Rig::new(1);
        handshake(
            &mut rig,
            0,
            0,
            40_000,
            CLIENT,
            MptcpOption::Capable { key_local: 7, key_remote: None },
        );
        rig.seg(0, 100, false, data(40_000, 1001, 100, Some(0)), CLIENT);
        rig.seg(0, 150, false, data(40_000, 1001, 100, Some(0)), CLIENT); // spurious rexmit
        let a = rig.analyze();
        let c = &a.connections[0];
        assert_eq!(c.delivered_bytes, 100);
        assert_eq!(c.subflows[0].delivered_bytes, 100);
        assert_eq!(c.subflows[0].rexmit_segs, 1);
    }

    #[test]
    fn plain_tcp_without_dss_uses_subflow_sequence_space() {
        let mut rig = Rig::new(1);
        handshake(&mut rig, 0, 0, 40_000, CLIENT, MptcpOption::Prio { backup: false });
        rig.seg(0, 100, false, data(40_000, 1001, 100, None), CLIENT);
        rig.seg(0, 110, false, data(40_000, 1101, 50, None), CLIENT);
        let a = rig.analyze();
        let c = &a.connections[0];
        assert_eq!(c.client_key, None);
        assert_eq!(c.subflows[0].delivered_bytes, 150);
        assert_eq!(c.delivered_bytes, 150);
        assert!(c.ofo_samples_ms.is_empty());
    }

    /// Regression for a fuzzer find: a DSS mapping with dseq near u64::MAX
    /// used to overflow `start + payload.len()` when computing connection
    /// coverage (debug panic on adversarial captures). Minimized reproducer
    /// in tests/fuzz-corpus/analyze/.
    #[test]
    fn hostile_dseq_near_u64_max_does_not_panic() {
        let mut rig = Rig::new(1);
        handshake(
            &mut rig,
            0,
            0,
            40_000,
            CLIENT,
            MptcpOption::Capable { key_local: 7, key_remote: None },
        );
        rig.seg(0, 100, false, data(40_000, 1001, 100, Some(u64::MAX)), CLIENT);
        rig.seg(0, 110, false, data(40_000, 1101, 100, Some(u64::MAX - 40)), CLIENT);
        let a = rig.analyze();
        // The nonsense mappings contribute at most the saturated range.
        assert!(a.connections[0].delivered_bytes <= 40);
    }

    #[test]
    fn coverage_counts_novel_bytes_once() {
        let mut c = Coverage::default();
        assert_eq!(c.insert(0, 100), 100);
        assert_eq!(c.insert(50, 150), 50);
        assert_eq!(c.insert(0, 150), 0);
        assert_eq!(c.insert(200, 300), 100);
        assert_eq!(c.insert(140, 210), 50);
        assert_eq!(c.insert(0, 300), 0);
    }
}

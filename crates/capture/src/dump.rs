//! tcpdump-style rendering of captured packets (the `capture-dump` CLI's
//! engine, kept in the library so tests can cover the formatting).

use core::fmt::Write as _;

use mpw_tcp::wire::{parse_any, MptcpOption, Packet, TcpOption};

use crate::pcapng::PcapFile;

/// Render one packet as a tcpdump-like one-liner.
///
/// `18.123456789 path0:down@client 192.168.1.1:8080 > 10.0.1.2:40000:
/// Flags [P.], seq 7001, ack 101, win 512, length 1400
/// [dss dack 9000 map 5600:7001 len 1400]`
pub fn format_packet(iface: &str, at_nanos: u64, data: &[u8], comment: Option<&str>) -> String {
    let mut out = String::new();
    let secs = at_nanos / 1_000_000_000;
    let frac = at_nanos % 1_000_000_000;
    let _ = write!(out, "{secs}.{frac:09} {iface} ");
    match parse_any(data) {
        Ok(Packet::Tcp(ip, seg)) => {
            let _ = write!(
                out,
                "{}:{} > {}:{}: Flags {}, seq {}, ack {}, win {}, length {}",
                ip.src,
                seg.src_port,
                ip.dst,
                seg.dst_port,
                mpw_sim::trace::flags::tcpdump_str(seg.flags),
                seg.seq.0,
                seg.ack.0,
                seg.window,
                seg.payload.len(),
            );
            for opt in &seg.options {
                if let TcpOption::Mptcp(m) = opt {
                    let _ = write!(out, " {}", format_mptcp(m));
                }
            }
        }
        Ok(Packet::Ping(ip, ping)) => {
            let _ = write!(
                out,
                "{} > {}: PING {} token {:#x}",
                ip.src,
                ip.dst,
                if ping.reply { "reply" } else { "request" },
                ping.token,
            );
        }
        Err(e) => {
            let _ = write!(out, "unparsable ({e}), {} bytes", data.len());
        }
    }
    if let Some(c) = comment {
        let _ = write!(out, " -- {c}");
    }
    out
}

fn format_mptcp(m: &MptcpOption) -> String {
    match m {
        MptcpOption::Capable { key_local, key_remote } => match key_remote {
            Some(kr) => format!("[mp_capable key {key_local:#x} peer {kr:#x}]"),
            None => format!("[mp_capable key {key_local:#x}]"),
        },
        MptcpOption::Join { token, nonce, backup } => {
            let b = if *backup { " backup" } else { "" };
            format!("[mp_join token {token:#x} nonce {nonce:#x}{b}]")
        }
        MptcpOption::Dss { data_ack, mapping, data_fin } => {
            let mut s = String::from("[dss");
            if let Some(a) = data_ack {
                let _ = write!(s, " dack {a}");
            }
            if let Some(m) = mapping {
                let _ = write!(s, " map {}:{} len {}", m.dseq, m.subflow_seq.0, m.len);
            }
            if *data_fin {
                s.push_str(" fin");
            }
            s.push(']');
            s
        }
        MptcpOption::AddAddr { addr_id, addr, port } => {
            format!("[add_addr id {addr_id} {addr}:{port}]")
        }
        MptcpOption::Prio { backup } => {
            format!("[mp_prio {}]", if *backup { "backup" } else { "regular" })
        }
    }
}

/// Render a whole capture file, one line per packet, in file order.
pub fn dump(file: &PcapFile) -> String {
    let mut out = String::new();
    for p in &file.packets {
        let iface = file
            .interfaces
            .get(p.iface as usize)
            .map(|i| i.name.as_str())
            .unwrap_or("?");
        out.push_str(&format_packet(iface, p.at.as_nanos(), &p.data, p.comment.as_deref()));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mpw_tcp::wire::{encode_packet, tcp_flags, DssMapping, IpHeader, TcpSegment, PROTO_TCP};
    use mpw_tcp::{Addr, SeqNum};

    #[test]
    fn tcp_line_contains_endpoints_flags_and_mptcp_options() {
        let ip = IpHeader {
            src: Addr::new(192, 168, 1, 1),
            dst: Addr::new(10, 0, 1, 2),
            protocol: PROTO_TCP,
            ttl: 64,
        };
        let mut seg = TcpSegment::bare(
            8080,
            40_000,
            SeqNum(7001),
            SeqNum(101),
            tcp_flags::ACK | tcp_flags::PSH,
        );
        seg.window = 512;
        seg.payload = Bytes::from(vec![0u8; 1400]);
        seg.options = [mpw_tcp::wire::TcpOption::Mptcp(MptcpOption::Dss {
            data_ack: Some(9000),
            mapping: Some(DssMapping { dseq: 5600, subflow_seq: SeqNum(7001), len: 1400 }),
            data_fin: false,
        })]
        .into();
        let bytes = encode_packet(&ip, &seg);
        let line = format_packet("path0:down@client", 18_123_456_789, &bytes, None);
        assert_eq!(
            line,
            "18.123456789 path0:down@client 192.168.1.1:8080 > 10.0.1.2:40000: \
             Flags [P.], seq 7001, ack 101, win 512, length 1400 \
             [dss dack 9000 map 5600:7001 len 1400]"
        );
    }

    #[test]
    fn handshake_options_render() {
        assert_eq!(
            format_mptcp(&MptcpOption::Capable { key_local: 0xab, key_remote: None }),
            "[mp_capable key 0xab]"
        );
        assert_eq!(
            format_mptcp(&MptcpOption::Join { token: 0x10, nonce: 0x20, backup: true }),
            "[mp_join token 0x10 nonce 0x20 backup]"
        );
        assert_eq!(
            format_mptcp(&MptcpOption::AddAddr {
                addr_id: 2,
                addr: Addr::new(192, 168, 2, 1),
                port: 8080
            }),
            "[add_addr id 2 192.168.2.1:8080]"
        );
    }

    #[test]
    fn unparsable_and_commented_packets_degrade_gracefully() {
        let line = format_packet("drops", 1_000_000_000, b"junk", Some("dropped: ChannelLoss"));
        assert!(line.starts_with("1.000000000 drops unparsable"));
        assert!(line.ends_with("-- dropped: ChannelLoss"));
    }
}

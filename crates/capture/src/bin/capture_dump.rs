//! Print a pcapng capture in tcpdump-like one-line-per-segment format,
//! with MPTCP option decoding.
//!
//! ```text
//! capture-dump <file.pcapng> [--summary]
//! ```

use std::io::Write;

use mpw_capture::{analyze, dump, read_pcapng};

fn usage() -> ! {
    eprintln!("usage: capture-dump <file.pcapng> [--summary]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut summary = false;
    for a in &args {
        match a.as_str() {
            "--summary" => summary = true,
            "-h" | "--help" => usage(),
            _ if path.is_none() => path = Some(a.clone()),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    let data = match std::fs::read(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("capture-dump: {path}: {e}");
            std::process::exit(1);
        }
    };
    let file = match read_pcapng(&data) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("capture-dump: {path}: {e}");
            std::process::exit(1);
        }
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = out.write_all(dump::dump(&file).as_bytes());
    if summary {
        // Port 8080 is the testbed's server port; flows towards it are
        // oriented client→server.
        let a = analyze(&file, 8080);
        let _ = writeln!(out, "---");
        let _ = writeln!(
            out,
            "{} interfaces, {} packets, {} drop records, {} pings, {} unparsed",
            file.interfaces.len(),
            file.packets.len(),
            a.drop_records,
            a.pings,
            a.unparsed
        );
        for (ci, c) in a.connections.iter().enumerate() {
            let _ = writeln!(
                out,
                "conn {ci}: {} subflows, {} bytes delivered, cellular share {:.3}, \
                 {} ofo samples (mean {:.1} ms)",
                c.subflows.len(),
                c.delivered_bytes,
                c.cellular_share(),
                c.ofo.count(),
                if c.ofo.count() > 0 { c.ofo.mean() } else { 0.0 },
            );
            for (si, s) in c.subflows.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  subflow {si} path{} {} <-> {}: {} data segs, {} rexmit, \
                     {} B sent, {} B delivered, {} rtt samples (mean {:.1} ms)",
                    s.path,
                    s.client,
                    s.server,
                    s.data_segs,
                    s.rexmit_segs,
                    s.bytes_sent,
                    s.delivered_bytes,
                    s.rtt.count(),
                    if s.rtt.count() > 0 { s.rtt.mean() } else { 0.0 },
                );
            }
        }
    }
}

//! # mpw-capture — wire capture and black-box trace analysis
//!
//! The paper's methodology was tcpdump + tcptrace (§3.2): every headline
//! figure was derived from *wire* captures, not kernel counters. This crate
//! gives the simulation the same black-box measurement layer:
//!
//! - [`hub::CaptureHub`] implements [`mpw_sim::tap::FrameObserver`] and can
//!   be attached to any number of `mpw_link` tap points. It records the
//!   fully-encoded wire bytes with simulated-time timestamps and serializes
//!   them to [pcapng](pcapng) files real Wireshark/tcpdump can open
//!   (one capture interface per path and vantage, plus a dedicated channel
//!   for link-discarded frames).
//! - [`analyze`](analyze::analyze) replays a pcapng through
//!   `mpw_tcp::wire::parse_packet` and reconstructs — purely from the bytes —
//!   per-subflow RTT samples, retransmission counts, DSS-level out-of-order
//!   delay, and per-path byte shares, so the in-stack metrics can be
//!   cross-checked the way the paper's figures were produced.
//! - the `capture-dump` binary prints a capture in tcpdump-like one-liners,
//!   including MPTCP option decoding.
//!
//! Capture is strictly observation-only: taps never draw randomness or
//! schedule events, so a run with capture enabled is event-for-event (and
//! metric-for-metric) identical to the same seed without it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod dump;
pub mod hub;
pub mod pcapng;

pub use analyze::{analyze, WireAnalysis, WireConnection, WireSubflow};
pub use hub::{CaptureHub, CapturedRecord, IfaceRole, LinkDir, RecordKind, SharedHub, Vantage, DROPS_IFACE};
pub use pcapng::{
    read_pcapng, read_pcapng_shared, PcapError, PcapFile, PcapInterface, PcapPacket, PcapWriter,
};

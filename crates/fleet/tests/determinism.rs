//! Fleet determinism wall: the same spec must produce byte-identical
//! reports on replay, under any worker count, and under any shard
//! grouping — the acceptance gate ISSUE 10 ties the campaign layer to.

use mpw_fleet::{run_campaign, run_fleet, Arrival, FleetCampaign, FleetSpec, FleetWorkload, PathMix};
use mpw_metrics::to_json;

fn spec(n: u32, seed: u64) -> FleetSpec {
    let mut s = FleetSpec::smoke(n, seed);
    s.workload = FleetWorkload::Download { size: 24 << 10 };
    s.horizon_ms = 40_000;
    s
}

#[test]
fn replay_is_byte_identical_including_records() {
    let s = spec(16, 21);
    let a = run_fleet(&s);
    let b = run_fleet(&s);
    assert_eq!(to_json(&a.report), to_json(&b.report));
    assert_eq!(a.records.len(), b.records.len());
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(to_json(x), to_json(y));
    }
}

#[test]
fn different_seed_changes_the_report() {
    let a = run_fleet(&spec(16, 21));
    let b = run_fleet(&spec(16, 22));
    assert_ne!(
        to_json(&a.report),
        to_json(&b.report),
        "two seeds collapsing to one report would mean the seed is ignored"
    );
}

#[test]
fn campaign_bytes_survive_any_worker_count_and_shard_split() {
    let base = spec(8, 5);
    let reference = run_campaign(&FleetCampaign {
        base: base.clone(),
        replications: 4,
        workers: 1,
        shards: 1,
    });
    for (workers, shards) in [(2, 1), (4, 2), (3, 4), (0, 3)] {
        let got = run_campaign(&FleetCampaign {
            base: base.clone(),
            replications: 4,
            workers,
            shards,
        });
        assert_eq!(
            to_json(&reference.0),
            to_json(&got.0),
            "workers={workers} shards={shards} changed the merged report"
        );
        for (a, b) in reference.1.iter().zip(&got.1) {
            assert_eq!(to_json(a), to_json(b));
        }
    }
}

#[test]
fn arrival_processes_are_seed_pure() {
    for arrival in [
        Arrival::Staggered { gap_ms: 15 },
        Arrival::Poisson { mean_gap_ms: 40 },
        Arrival::Closed { think_mean_ms: 800 },
    ] {
        let mut s = spec(6, 9);
        s.arrival = arrival;
        s.horizon_ms = 20_000;
        let a = run_fleet(&s);
        let b = run_fleet(&s);
        assert_eq!(to_json(&a.report), to_json(&b.report), "{arrival:?}");
    }
}

#[test]
fn all_multipath_fleet_splits_bytes_across_both_networks() {
    let mut s = spec(5, 31);
    s.mix = PathMix::all_multipath();
    s.workload = FleetWorkload::Download { size: 512 << 10 };
    s.horizon_ms = 120_000;
    let run = run_fleet(&s);
    assert_eq!(run.report.flows_completed, 5);
    assert!(run.report.wifi_bytes > 0);
    assert!(run.report.cell_bytes > 0);
    assert_eq!(run.report.bytes, run.report.wifi_bytes + run.report.cell_bytes);
    let share = run.report.cellular_share();
    assert!(share > 0.0 && share < 1.0, "share = {share}");
}

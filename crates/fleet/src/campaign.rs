//! Monte-Carlo fleet campaigns: M seed-derived replications of one
//! [`FleetSpec`], run across a worker pool, aggregated by exact merge.
//!
//! The determinism contract: each replication is an independent world whose
//! seed is a pure function of the campaign seed and the replication index,
//! and [`FleetReport::merge`] is an integer-exact associative/commutative
//! fold. Worker count and shard grouping are therefore pure implementation
//! detail — any configuration produces byte-identical JSON.

use std::sync::atomic::{AtomicUsize, Ordering};

use mpw_metrics::FleetReport;

use crate::engine::run_fleet;
use crate::spec::FleetSpec;

/// Derive the world seed for replication `r` from the campaign seed —
/// the same splitmix-style derivation the handover campaign uses.
pub fn replication_seed(seed: u64, r: u64) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(r)
}

/// A campaign description: `replications` independent worlds built from
/// `base` (same spec, derived seeds), run on `workers` threads, aggregated
/// through `shards` intermediate partial reports.
#[derive(Clone, Debug)]
pub struct FleetCampaign {
    /// Spec every replication shares (its `seed` is the campaign seed).
    pub base: FleetSpec,
    /// Number of replications.
    pub replications: u32,
    /// Worker threads (0 = one per core).
    pub workers: usize,
    /// Number of contiguous shard groups merged into partials before the
    /// final fold (1 = merge replications directly).
    pub shards: usize,
}

/// Run every replication and return (merged report, per-replication
/// reports in replication order).
pub fn run_campaign(campaign: &FleetCampaign) -> (FleetReport, Vec<FleetReport>) {
    let n = campaign.replications as usize;
    let reports = run_replications(campaign, n);

    // Shard merge: contiguous replication ranges fold into partials, the
    // partials fold in order. Exactness of `merge` makes the grouping
    // invisible in the output.
    let shards = campaign.shards.clamp(1, n.max(1));
    let bucket = campaign.base.goodput_bucket_ms;
    let mut merged = FleetReport::new(bucket);
    let per_shard = n.div_ceil(shards.max(1)).max(1);
    for chunk in reports.chunks(per_shard) {
        let mut partial = FleetReport::new(bucket);
        for r in chunk {
            partial.merge(r);
        }
        merged.merge(&partial);
    }
    (merged, reports)
}

fn run_one(campaign: &FleetCampaign, r: usize) -> FleetReport {
    let mut spec = campaign.base.clone();
    spec.seed = replication_seed(campaign.base.seed, r as u64);
    run_fleet(&spec).report
}

fn run_replications(campaign: &FleetCampaign, n: usize) -> Vec<FleetReport> {
    let workers = if campaign.workers == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        campaign.workers
    }
    .clamp(1, n.max(1));
    if workers == 1 {
        return (0..n).map(|r| run_one(campaign, r)).collect();
    }
    let mut slots: Vec<Option<FleetReport>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let next = AtomicUsize::new(0);
    let done = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let r = next.fetch_add(1, Ordering::Relaxed);
                        if r >= n {
                            break;
                        }
                        local.push((r, run_one(campaign, r)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("fleet worker panicked"))
            .collect::<Vec<_>>()
    });
    for (r, report) in done {
        slots[r] = Some(report);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every replication produces a report"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpw_metrics::to_json;

    fn small_campaign(workers: usize, shards: usize) -> FleetCampaign {
        let mut base = crate::FleetSpec::smoke(4, 42);
        base.workload = crate::FleetWorkload::Download { size: 16 << 10 };
        base.horizon_ms = 30_000;
        FleetCampaign {
            base,
            replications: 3,
            workers,
            shards,
        }
    }

    #[test]
    fn workers_and_shards_do_not_change_bytes() {
        let (serial, reps_serial) = run_campaign(&small_campaign(1, 1));
        let (pooled, reps_pooled) = run_campaign(&small_campaign(4, 3));
        assert_eq!(reps_serial.len(), 3);
        for (a, b) in reps_serial.iter().zip(&reps_pooled) {
            assert_eq!(to_json(a), to_json(b));
        }
        assert_eq!(to_json(&serial), to_json(&pooled));
    }

    #[test]
    fn replication_seeds_differ() {
        let a = replication_seed(7, 0);
        let b = replication_seed(7, 1);
        let c = replication_seed(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}

//! # mpw-fleet — many-flow, multi-host workload engine
//!
//! The paper measures one MPTCP download at a time; the wireless paths it
//! measures over are in reality shared by many concurrent users. This crate
//! is the scale substrate that closes that gap (DESIGN.md §5.14): it
//! populates a single deterministic world with N client hosts — WiFi-only,
//! LTE-only, and multipath, drawn from seeded mix weights — that all
//! multiplex two *shared* drop-tail access links against one server, so
//! bufferbloat and loss emerge from aggregate load instead of per-flow
//! configuration.
//!
//! Three layers:
//!
//! - [`FleetSpec`] — the declarative description: population size and path
//!   mix, the access networks (`mpw-link` presets), an arrival process
//!   (staggered, open-loop Poisson-by-inversion, or closed-loop with
//!   exponential think times — all pure functions of the seed), the
//!   per-client workload (paper download sizes or the Table-7 streaming
//!   pattern), and an optional `mpw-scenario` mobility script applied to
//!   the shared WiFi path.
//! - [`run_fleet`] — builds the world and drives it with a sampling tick,
//!   harvesting one [`FlowRecord`](mpw_metrics::FlowRecord) per flow and
//!   folding them into a [`FleetReport`](mpw_metrics::FleetReport).
//! - [`FleetCampaign`] / [`run_campaign`] — Monte-Carlo replications across
//!   a worker pool. Aggregation is integer-exact (see `mpw_metrics::fleet`),
//!   so any worker count and any shard grouping produce byte-identical
//!   reports — the CI gate compares JSON bytes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod engine;
pub mod spec;

pub use campaign::{replication_seed, run_campaign, FleetCampaign};
pub use engine::{run_fleet, run_fleet_windowed, FleetRun};
pub use spec::{Arrival, ClientClass, FleetSpec, FleetWifi, FleetWorkload, PathMix};

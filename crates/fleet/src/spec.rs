//! The declarative fleet description: who the clients are, when they
//! arrive, and what they do.

use mpw_http::StreamingProfile;
use mpw_link::{Carrier, DayPeriod};
use mpw_scenario::Scenario;
use mpw_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Path technology of one client — the population axes of the contention
/// study (WiFi-only and LTE-only single-path users vs 2-path MPTCP users).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClientClass {
    /// Plain TCP over the shared WiFi access network.
    WifiOnly,
    /// Plain TCP over the shared cellular access network.
    LteOnly,
    /// 2-path MPTCP across both shared networks.
    Multipath,
}

impl ClientClass {
    /// Stable label used in reports ("wifi" / "lte" / "mp2").
    pub fn label(self) -> &'static str {
        match self {
            ClientClass::WifiOnly => "wifi",
            ClientClass::LteOnly => "lte",
            ClientClass::Multipath => "mp2",
        }
    }
}

/// Seeded class-mix weights. Each client's class is one bounded draw from
/// the fleet's `fleet.mix` RNG stream, so the population is a pure function
/// of the seed (and stable under changes elsewhere in the build).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathMix {
    /// Relative weight of WiFi-only clients.
    pub wifi_only: u32,
    /// Relative weight of LTE-only clients.
    pub lte_only: u32,
    /// Relative weight of multipath clients.
    pub multipath: u32,
}

impl PathMix {
    /// Everyone runs 2-path MPTCP.
    pub fn all_multipath() -> Self {
        PathMix {
            wifi_only: 0,
            lte_only: 0,
            multipath: 1,
        }
    }

    /// The default mixed population: mostly single-path WiFi users, a
    /// smaller LTE share, a multipath minority.
    pub fn mixed() -> Self {
        PathMix {
            wifi_only: 5,
            lte_only: 3,
            multipath: 2,
        }
    }

    /// Draw one class (weights of zero never win; an all-zero mix falls
    /// back to multipath).
    pub fn draw(&self, rng: &mut SimRng) -> ClientClass {
        let total = u64::from(self.wifi_only) + u64::from(self.lte_only) + u64::from(self.multipath);
        if total == 0 {
            return ClientClass::Multipath;
        }
        let x = rng.range_u64(0, total);
        if x < u64::from(self.wifi_only) {
            ClientClass::WifiOnly
        } else if x < u64::from(self.wifi_only) + u64::from(self.lte_only) {
            ClientClass::LteOnly
        } else {
            ClientClass::Multipath
        }
    }
}

/// Which WiFi network the fleet shares (mirrors the experiment vocabulary;
/// duplicated here because `mpw-experiments` depends on this crate, not
/// the other way around).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FleetWifi {
    /// Residential backhaul; background load follows the day period.
    Home,
    /// Coffee-shop hotspot with the given number of customers.
    Hotspot(u32),
}

/// When each client's first flow opens. Every variant is a pure function
/// of the seed: the whole arrival schedule is computed up front from named
/// RNG streams, never from execution order.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Arrival {
    /// Client `i` starts at `i * gap_ms` (a deterministic ramp).
    Staggered {
        /// Gap between consecutive arrivals.
        gap_ms: u64,
    },
    /// Open-loop Poisson process: exponential inter-arrival times with the
    /// given mean, drawn by inversion from the `fleet.arrivals` stream.
    Poisson {
        /// Mean inter-arrival gap (ms).
        mean_gap_ms: u64,
    },
    /// Closed loop: every client starts after an exponential think time
    /// and opens a fresh flow one think time after each completion, until
    /// the horizon. Think draws come from the per-client
    /// `fleet.think.<i>` substream.
    Closed {
        /// Mean think time (ms).
        think_mean_ms: u64,
    },
}

/// What each client does per flow.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FleetWorkload {
    /// One HTTP download of `size` bytes (the paper's size ladder).
    Download {
        /// Object size in bytes.
        size: u64,
    },
    /// The §6 streaming session (prefetch + periodic blocks).
    Streaming {
        /// Block schedule (Table 7 profiles or the miniature test one).
        profile: StreamingProfile,
    },
}

/// The full declarative fleet description. `run_fleet` turns one of these
/// into a populated world; equality of specs (plus seed) implies byte
/// equality of reports.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Population size.
    pub n_clients: u32,
    /// Root world seed.
    pub seed: u64,
    /// Class-mix weights.
    pub mix: PathMix,
    /// Shared WiFi access network.
    pub wifi: FleetWifi,
    /// Shared cellular access network.
    pub carrier: Carrier,
    /// Day period (drives WiFi background load).
    pub period: DayPeriod,
    /// Arrival process.
    pub arrival: Arrival,
    /// Per-client workload.
    pub workload: FleetWorkload,
    /// Hard stop (sim ms); flows still open at the horizon are harvested
    /// as incomplete.
    pub horizon_ms: u64,
    /// Goodput-timeline bucket width and engine sampling tick (ms).
    pub goodput_bucket_ms: u64,
    /// Optional mobility script applied to the shared WiFi path (all
    /// clients fade together — the whole coffee shop walks out at once).
    pub mobility: Option<Scenario>,
}

impl FleetSpec {
    /// A small mixed-population smoke spec: `n` clients, short downloads,
    /// staggered arrivals — the shape the CI fleet smoke runs.
    pub fn smoke(n: u32, seed: u64) -> FleetSpec {
        FleetSpec {
            n_clients: n,
            seed,
            mix: PathMix::mixed(),
            wifi: FleetWifi::Home,
            carrier: Carrier::Att,
            period: DayPeriod::Evening,
            arrival: Arrival::Staggered { gap_ms: 20 },
            workload: FleetWorkload::Download { size: 64 << 10 },
            horizon_ms: 60_000,
            goodput_bucket_ms: 250,
            mobility: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_draw_is_seed_deterministic_and_weight_respecting() {
        let mix = PathMix {
            wifi_only: 1,
            lte_only: 0,
            multipath: 1,
        };
        let draw = |seed| {
            let mut rng = SimRng::seeded(seed);
            (0..200).map(|_| mix.draw(&mut rng)).collect::<Vec<_>>()
        };
        let a = draw(7);
        assert_eq!(a, draw(7));
        assert_ne!(a, draw(8));
        assert!(!a.contains(&ClientClass::LteOnly));
        assert!(a.contains(&ClientClass::WifiOnly));
        assert!(a.contains(&ClientClass::Multipath));
    }

    #[test]
    fn zero_mix_falls_back_to_multipath() {
        let mix = PathMix {
            wifi_only: 0,
            lte_only: 0,
            multipath: 0,
        };
        let mut rng = SimRng::seeded(1);
        assert_eq!(mix.draw(&mut rng), ClientClass::Multipath);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = FleetSpec::smoke(50, 3);
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: FleetSpec = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.n_clients, 50);
        assert_eq!(back.seed, 3);
        assert_eq!(back.mix, spec.mix);
        assert_eq!(back.workload, spec.workload);
    }
}

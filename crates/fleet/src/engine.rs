//! Building and driving one fleet world.
//!
//! Topology: one single-homed server behind two *shared* access networks
//! (WiFi and cellular), each a duplex `mpw-link` pair. Every client sends
//! into the shared uplink agent — so the drop-tail queue sees the sum of
//! their load — and the shared downlink's egress is an [`mpw_sim::Switch`]
//! fanning frames back out by destination IP ([`mpw_tcp::peek_ip_dst`]).
//! Queueing delay, bufferbloat, and loss are therefore emergent properties
//! of the population, exactly the effect the contention artifacts sweep.

use mpw_http::{HttpServer, StreamingClient, Wget};
use mpw_link::{build_shared_access, wifi_home, wifi_hotspot, BuiltPath, PathSpec};
use mpw_metrics::{FleetReport, FlowRecord};
use mpw_mptcp::{Host, MptcpConfig, OpenRequest, Transport, TransportSpec};
use mpw_scenario::{compile, PathBinding, ScenarioDriver};
use mpw_sim::trace::TraceLevel;
use mpw_sim::{Agent, AgentId, Ctx, Event, Frame, SimDuration, SimRng, SimTime, Switch, World};
use std::any::Any;
use mpw_tcp::{peek_ip_dst, Addr, CcConfig, Endpoint, TcpConfig};

use crate::spec::{Arrival, ClientClass, FleetSpec, FleetWifi, FleetWorkload};

/// Server address/port for fleet worlds (one single-homed server; clients
/// join their second subflow against the same address, which the join
/// logic supports).
const SERVER_ADDR: Addr = Addr::new(192, 168, 1, 1);
const SERVER_PORT: u16 = 8080;

/// Destination-IP classifier handed to both access switches.
fn classify_dst(frame: &Frame) -> Option<u64> {
    peek_ip_dst(&frame.bytes).map(|a| u64::from(a.0))
}

/// WiFi-side address of client `i` (10.0.x.y).
fn wifi_addr(i: u32) -> Addr {
    Addr::new(10, 0, (i >> 8) as u8, (i & 0xff) as u8)
}

/// Cellular-side address of client `i` (10.1.x.y).
fn cell_addr(i: u32) -> Addr {
    Addr::new(10, 1, (i >> 8) as u8, (i & 0xff) as u8)
}

/// No-op agent the drive loop schedules a timer on at every tick boundary,
/// so `run_until(stop)` always advances the clock to `stop` even when the
/// event heap would otherwise drain early (`run_until` returns `Idle`
/// without touching `now`).
struct Ticker;

impl Agent for Ticker {
    fn handle(&mut self, _ev: Event, _ctx: &mut Ctx<'_>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct ClientState {
    agent: AgentId,
    class: ClientClass,
    /// Flows opened so far (slot indices are 0..opens on this host).
    opens: u32,
    /// Closed-loop think-time RNG (None for open-loop arrivals).
    think: Option<SimRng>,
    /// Whether a queued open is waiting to activate (closed loop).
    open_pending: bool,
    /// Closed loop only: the next think time would cross the horizon, so
    /// this client opens no further flows.
    done: bool,
}

/// A built, running fleet world plus its harvest state.
pub struct FleetRun {
    /// The simulation world (exposed for artifact-level inspection).
    pub world: World,
    /// Aggregate report (records already folded in).
    pub report: FleetReport,
    /// Per-flow records in deterministic (client, flow) order.
    pub records: Vec<FlowRecord>,
    /// Shared-path agent ids, for taps and assertions.
    pub wifi_path: BuiltPath,
    /// Cellular shared path.
    pub cell_path: BuiltPath,
    /// Server host agent id.
    pub server: AgentId,
}

fn wifi_spec(spec: &FleetSpec) -> PathSpec {
    match spec.wifi {
        FleetWifi::Home => wifi_home(spec.period.wifi_load()),
        FleetWifi::Hotspot(n) => wifi_hotspot(n),
    }
}

fn client_tcp() -> TcpConfig {
    // Fleets run with exact per-sample recording off: the constant-memory
    // summaries are enough for aggregate reports, and N×samples would
    // dominate memory at thousands of flows.
    TcpConfig {
        record_rtt_samples: false,
        ..TcpConfig::default()
    }
}

fn transport_for(class: ClientClass) -> TransportSpec {
    match class {
        ClientClass::WifiOnly | ClientClass::LteOnly => TransportSpec::Plain {
            tcp: client_tcp(),
            cc: CcConfig::default(),
            if_index: 0,
        },
        ClientClass::Multipath => TransportSpec::Mptcp(MptcpConfig {
            tcp: client_tcp(),
            max_subflows: 2,
            record_ofo_samples: false,
            ..MptcpConfig::default()
        }),
    }
}

fn make_app(workload: &FleetWorkload) -> Box<dyn mpw_mptcp::App> {
    match workload {
        FleetWorkload::Download { size } => Box::new(Wget::new(*size, false)),
        FleetWorkload::Streaming { profile } => Box::new(StreamingClient::new(*profile)),
    }
}

/// First-arrival schedule: a pure function of the spec and seed.
fn arrival_schedule(spec: &FleetSpec, world: &World) -> Vec<SimTime> {
    match spec.arrival {
        Arrival::Staggered { gap_ms } => (0..spec.n_clients)
            .map(|i| SimTime::from_millis(u64::from(i) * gap_ms))
            .collect(),
        Arrival::Poisson { mean_gap_ms } => {
            let mut rng = world.rng().stream("fleet.arrivals");
            let mut t = 0.0f64;
            (0..spec.n_clients)
                .map(|_| {
                    t += rng.exponential(mean_gap_ms as f64);
                    SimTime::from_nanos((t * 1e6) as u64)
                })
                .collect()
        }
        Arrival::Closed { think_mean_ms } => (0..spec.n_clients)
            .map(|i| {
                let mut rng = world.rng().substream("fleet.think", u64::from(i));
                SimTime::from_nanos((rng.exponential(think_mean_ms as f64) * 1e6) as u64)
            })
            .collect(),
    }
}

/// Queue one flow open on a client host at `at`.
fn queue_flow(world: &mut World, client: AgentId, class: ClientClass, spec: &FleetSpec, at: SimTime) {
    let host = world.agent_mut::<Host>(client).expect("client host");
    host.queue_open(OpenRequest {
        at,
        spec: transport_for(class),
        remote: Endpoint::new(SERVER_ADDR, SERVER_PORT),
        app: make_app(&spec.workload),
        warmup_pings: 0,
        warmup_if: 0,
    });
    world.schedule(at, client, Event::Timer { token: Host::open_token() });
}

/// Whether slot `slot` on `host` finished its workload, and when.
fn flow_finished(host: &Host, slot: usize, workload: &FleetWorkload) -> Option<SimTime> {
    match workload {
        FleetWorkload::Download { .. } => host
            .app::<Wget>(slot)
            .and_then(|w| w.result.finished_at),
        FleetWorkload::Streaming { .. } => {
            host.app::<StreamingClient>(slot).and_then(|s| s.finished_at)
        }
    }
}

/// Build the world described by `spec`, run it to the horizon (or until
/// every open-loop flow completes), and harvest the aggregate report.
pub fn run_fleet(spec: &FleetSpec) -> FleetRun {
    run_fleet_windowed(spec, None, &mut |_| {})
}

/// [`run_fleet`] with an observation window for the allocation gate: the
/// mark closure fires with `0` at the first sampling tick at or after
/// `window.0` and with `1` at the first tick at or after `window.1`, from
/// outside the event loop — the bench snapshots its heap-op counter there.
pub fn run_fleet_windowed(
    spec: &FleetSpec,
    window: Option<(SimTime, SimTime)>,
    mark: &mut dyn FnMut(u8),
) -> FleetRun {
    let mut world = World::new(spec.seed, TraceLevel::Off);

    // --- server -----------------------------------------------------------
    let s_rng = world.rng().stream("fleet.server");
    let server = world.add_agent(Box::new(Host::new(vec![SERVER_ADDR], 1 << 16, false, s_rng)));

    // --- shared access networks ------------------------------------------
    let wifi_sw = world.add_agent(Box::new(Switch::new(classify_dst)));
    let cell_sw = world.add_agent(Box::new(Switch::new(classify_dst)));
    let wifi_path = build_shared_access(
        &mut world,
        &wifi_spec(spec),
        (wifi_sw, 0),
        (server, 0),
        "fleet.wifi",
    );
    let cell_path = build_shared_access(
        &mut world,
        &spec.carrier.preset(),
        (cell_sw, 0),
        (server, 0),
        "fleet.cell",
    );

    // --- population -------------------------------------------------------
    let mut mix_rng = world.rng().stream("fleet.mix");
    let mut clients = Vec::with_capacity(spec.n_clients as usize);
    for i in 0..spec.n_clients {
        let class = spec.mix.draw(&mut mix_rng);
        let addrs = match class {
            ClientClass::WifiOnly => vec![wifi_addr(i)],
            ClientClass::LteOnly => vec![cell_addr(i)],
            ClientClass::Multipath => vec![wifi_addr(i), cell_addr(i)],
        };
        let rng = world.rng().substream("fleet.client", u64::from(i));
        // 256 conn ids per client keeps ids unique across the fleet even
        // under closed-loop churn.
        let agent = world.add_agent(Box::new(Host::new(addrs, i * 256, true, rng)));
        {
            let host = world.agent_mut::<Host>(agent).expect("client host");
            match class {
                ClientClass::WifiOnly => host.set_iface_link(0, wifi_path.uplink),
                ClientClass::LteOnly => host.set_iface_link(0, cell_path.uplink),
                ClientClass::Multipath => {
                    host.set_iface_link(0, wifi_path.uplink);
                    host.set_iface_link(1, cell_path.uplink);
                }
            }
        }
        // Downstream fan-out and server-side routing for each address.
        if class != ClientClass::LteOnly {
            world
                .agent_mut::<Switch>(wifi_sw)
                .expect("wifi switch")
                .add_route(u64::from(wifi_addr(i).0), (agent, 0));
            world
                .agent_mut::<Host>(server)
                .expect("server host")
                .add_route(wifi_addr(i), wifi_path.downlink);
        }
        if class != ClientClass::WifiOnly {
            world
                .agent_mut::<Switch>(cell_sw)
                .expect("cell switch")
                .add_route(u64::from(cell_addr(i).0), (agent, 0));
            world
                .agent_mut::<Host>(server)
                .expect("server host")
                .add_route(cell_addr(i), cell_path.downlink);
        }
        let think = match spec.arrival {
            Arrival::Closed { .. } => {
                Some(world.rng().substream("fleet.think", u64::from(i)))
            }
            _ => None,
        };
        clients.push(ClientState {
            agent,
            class,
            opens: 0,
            think,
            open_pending: false,
            done: false,
        });
    }
    {
        let host = world.agent_mut::<Host>(server).expect("server host");
        host.set_iface_link(0, wifi_path.downlink);
        host.listen(
            SERVER_PORT,
            MptcpConfig {
                tcp: client_tcp(),
                max_subflows: 8,
                record_ofo_samples: false,
                ..MptcpConfig::default()
            },
            (client_tcp(), CcConfig::default()),
            Box::new(|_conn_id| Box::new(HttpServer::new())),
        );
    }

    // --- first arrivals ---------------------------------------------------
    let arrivals = arrival_schedule(spec, &world);
    let horizon = SimTime::from_millis(spec.horizon_ms);
    for (i, &at) in arrivals.iter().enumerate() {
        if at >= horizon {
            continue;
        }
        let c = &mut clients[i];
        queue_flow(&mut world, c.agent, c.class, spec, at);
        c.opens = 1;
        c.open_pending = true;
    }

    // --- mobility ---------------------------------------------------------
    let mut driver = spec
        .mobility
        .as_ref()
        .map(|s| ScenarioDriver::from_timeline(compile(s).expect("fleet scenario compiles")));
    let bindings = [PathBinding {
        uplink: wifi_path.uplink,
        downlink: wifi_path.downlink,
    }];

    // --- drive ------------------------------------------------------------
    let closed = matches!(spec.arrival, Arrival::Closed { .. });
    let think_mean_ms = match spec.arrival {
        Arrival::Closed { think_mean_ms } => think_mean_ms as f64,
        _ => 0.0,
    };
    let ticker = world.add_agent(Box::new(Ticker));
    let tick = SimDuration::from_millis(spec.goodput_bucket_ms.max(1));
    let mut report = FleetReport::new(spec.goodput_bucket_ms);
    report.clients = u64::from(spec.n_clients);
    let mut delivered_cum: u64 = 0;
    let mut marked = [false; 2];
    loop {
        let now = world.now();
        let mut stop = (now + tick).min(horizon);
        if let Some(d) = &driver {
            if let Some(at) = d.next_at() {
                stop = stop.min(at);
            }
        }
        // Guarantee the clock reaches `stop` even if the heap drains.
        world.schedule(stop, ticker, Event::Timer { token: 0 });
        world.run_until(stop);
        let now = world.now();
        if let Some((start, end)) = window {
            if !marked[0] && now >= start {
                marked[0] = true;
                mark(0);
            }
            if marked[0] && !marked[1] && now >= end {
                marked[1] = true;
                mark(1);
            }
        }
        if let Some(d) = &mut driver {
            d.apply_due(&mut world, &bindings, now)
                .expect("fleet scenario paths are bound");
        }

        // Aggregate goodput sample: fleet-wide delivered-byte delta.
        let mut total: u64 = 0;
        let mut all_done = true;
        for c in &clients {
            let host = world.agent::<Host>(c.agent).expect("client host");
            for slot in 0..host.slot_count() {
                if let Some(t) = host.transport(slot) {
                    total += t.delivered_offset();
                }
            }
            if host.slot_count() < c.opens as usize
                || (0..host.slot_count())
                    .any(|s| flow_finished(host, s, &spec.workload).is_none())
            {
                all_done = false;
            }
        }
        if total > delivered_cum {
            report.absorb_goodput(now.as_nanos() / 1_000_000, total - delivered_cum);
            delivered_cum = total;
        }

        // Closed loop: one think time after a client's latest flow
        // finishes, open the next one.
        if closed {
            for c in &mut clients {
                if c.done {
                    continue;
                }
                let host = world.agent::<Host>(c.agent).expect("client host");
                let opened_all = host.slot_count() >= c.opens as usize;
                let latest_done = c.opens > 0
                    && opened_all
                    && flow_finished(host, c.opens as usize - 1, &spec.workload).is_some();
                if latest_done && c.open_pending {
                    c.open_pending = false;
                }
                if latest_done && !c.open_pending {
                    // One think-time draw per completed flow. Think clocks
                    // start at the sampling tick where the completion is
                    // observed (≤ one bucket after the true finish time).
                    let think = c.think.as_mut().expect("closed loop has think RNG");
                    let gap = SimDuration::from_nanos(
                        (think.exponential(think_mean_ms) * 1e6) as u64,
                    );
                    let at = now + gap;
                    if at < horizon {
                        queue_flow(&mut world, c.agent, c.class, spec, at);
                        c.opens += 1;
                        c.open_pending = true;
                    } else {
                        // Horizon would cut the flow: this client is done.
                        c.done = true;
                    }
                }
                all_done = false;
            }
        }

        if now >= horizon || (!closed && all_done) {
            break;
        }
    }

    // --- harvest ----------------------------------------------------------
    let mut records = Vec::new();
    for c in &clients {
        let host = world.agent::<Host>(c.agent).expect("client host");
        for slot in 0..host.slot_count() {
            records.push(harvest_flow(host, c, slot, spec));
        }
    }
    for r in &records {
        report.absorb(r);
    }
    // `absorb` counted flows; clients was set up front.
    FleetRun {
        world,
        report,
        records,
        wifi_path,
        cell_path,
        server,
    }
}

fn harvest_flow(host: &Host, c: &ClientState, slot: usize, spec: &FleetSpec) -> FlowRecord {
    let transport = host.transport(slot).expect("live slot");
    let started = transport.opened_at();
    let finished = flow_finished(host, slot, &spec.workload);
    let bytes = transport.delivered_offset();
    let (mut wifi_bytes, mut cell_bytes) = (0u64, 0u64);
    match transport {
        Transport::Mp(conn) => {
            let per_sf = conn.stats().per_subflow_delivered;
            for (i, sf) in conn.subflows.iter().enumerate() {
                let b = per_sf.get(i).copied().unwrap_or(0);
                // Multipath fleet clients bind iface 0 to WiFi, 1 to cellular.
                if sf.if_index == 0 {
                    wifi_bytes += b;
                } else {
                    cell_bytes += b;
                }
            }
        }
        Transport::Sp(_) => match c.class {
            ClientClass::LteOnly => cell_bytes = bytes,
            _ => wifi_bytes = bytes,
        },
    }
    let fct_us = finished
        .map(|f| f.saturating_since(started).as_nanos() / 1_000)
        .unwrap_or(0);
    let late_blocks = host
        .app::<StreamingClient>(slot)
        .map(|s| u64::from(s.late_blocks))
        .unwrap_or(0);
    FlowRecord {
        client: (host.conn_id(slot).unwrap_or(0)) / 256,
        class: c.class.label().to_string(),
        started_ms: started.as_nanos() / 1_000_000,
        completed: finished.is_some(),
        fct_us,
        bytes,
        wifi_bytes,
        cell_bytes,
        rate_kbps: if finished.is_some() {
            (bytes * 8_000).checked_div(fct_us).unwrap_or(0)
        } else {
            0
        },
        late_blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PathMix;

    #[test]
    fn tiny_fleet_completes_downloads() {
        let mut spec = FleetSpec::smoke(6, 11);
        spec.workload = FleetWorkload::Download { size: 16 << 10 };
        spec.horizon_ms = 30_000;
        let run = run_fleet(&spec);
        assert_eq!(run.report.clients, 6);
        assert_eq!(run.report.flows_started, 6);
        assert_eq!(
            run.report.flows_completed, 6,
            "all small downloads should finish well before the horizon: {:?}",
            run.records
        );
        assert!(run.report.bytes >= 6 * (16 << 10));
        // The fan-out switches saw traffic and dropped nothing on the floor.
        let wifi_sw_forwarded: u64 = run.report.wifi_bytes;
        assert!(wifi_sw_forwarded > 0);
    }

    #[test]
    fn n1_multipath_uses_both_paths() {
        let mut spec = FleetSpec::smoke(1, 5);
        spec.mix = PathMix::all_multipath();
        spec.workload = FleetWorkload::Download { size: 2 << 20 };
        spec.horizon_ms = 120_000;
        let run = run_fleet(&spec);
        assert_eq!(run.report.flows_completed, 1);
        assert!(run.report.wifi_bytes > 0, "wifi carried nothing");
        assert!(run.report.cell_bytes > 0, "cellular carried nothing");
        assert_eq!(
            run.report.bytes,
            run.report.wifi_bytes + run.report.cell_bytes
        );
    }

    #[test]
    fn replay_is_byte_identical() {
        let spec = FleetSpec::smoke(12, 3);
        let a = run_fleet(&spec);
        let b = run_fleet(&spec);
        assert_eq!(
            mpw_metrics::to_json(&a.report),
            mpw_metrics::to_json(&b.report)
        );
    }

    #[test]
    fn closed_loop_reopens_flows() {
        let mut spec = FleetSpec::smoke(3, 9);
        spec.workload = FleetWorkload::Download { size: 8 << 10 };
        spec.arrival = Arrival::Closed { think_mean_ms: 500 };
        spec.horizon_ms = 20_000;
        let run = run_fleet(&spec);
        assert!(
            run.report.flows_started > 3,
            "closed loop should open repeat flows, got {}",
            run.report.flows_started
        );
    }
}
